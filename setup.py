"""Legacy setup shim: enables `pip install -e .` where the offline
environment lacks the `wheel` package needed for PEP 517 editable builds."""
from setuptools import setup

setup()
