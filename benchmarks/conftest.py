"""Shared fixtures and scale knobs for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper and
prints the corresponding rows/series. Absolute numbers differ from the
paper (synthetic corpus, CPU-scale models — see DESIGN.md); the *shape*
assertions encode what must hold: who wins, by roughly what factor, and
where the crossovers fall.

Scale knobs (environment):

* ``PHOOK_N_CONTRACTS`` — unique contracts in the corpus (default 240),
* ``PHOOK_FOLDS`` / ``PHOOK_RUNS`` — evaluation protocol (default 2 / 1;
  paper: 10 / 3),
* ``PHOOK_SEED`` — master seed,
* ``PHOOK_FULL`` — set to 1 to include the expensive GPT-2/T5 rows in the
  statistics benchmarks.
"""

import os

import pytest

from repro.datagen.corpus import CorpusConfig, build_corpus
from repro.datagen.dataset import Dataset


def env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default


N_CONTRACTS = env_int("PHOOK_N_CONTRACTS", 240)
N_FOLDS = env_int("PHOOK_FOLDS", 3)
N_RUNS = env_int("PHOOK_RUNS", 1)
SEED = env_int("PHOOK_SEED", 7)
FULL = bool(int(os.environ.get("PHOOK_FULL", "0")))

#: Models used by the statistics benches (Table III / Fig. 4). The paper
#: analyzes 13 models (16 minus ESCORT and the β variants); the default
#: here keeps the cheaper ten so the benches stay CPU-friendly —
#: PHOOK_FULL=1 restores the full paper set.
STATS_MODELS = (
    "Random Forest", "k-NN", "SVM", "Logistic Regression",
    "XGBoost", "LightGBM", "CatBoost",
    "ECA+EfficientNet", "ViT+Freq", "SCSGuard",
) if not FULL else (
    "Random Forest", "k-NN", "SVM", "Logistic Regression",
    "XGBoost", "LightGBM", "CatBoost",
    "ECA+EfficientNet", "ViT+R2D2", "ViT+Freq",
    "SCSGuard", "GPT-2α", "T5α",
)


@pytest.fixture(scope="session")
def corpus():
    """The main-study corpus (paper: 3,500 + 3,500 unique bytecodes)."""
    return build_corpus(
        CorpusConfig(
            n_phishing=N_CONTRACTS // 2,
            n_benign=N_CONTRACTS // 2,
            seed=SEED,
        )
    )


@pytest.fixture(scope="session")
def dataset(corpus):
    return Dataset.from_corpus(corpus, seed=SEED)


@pytest.fixture(scope="session")
def temporal_corpus():
    """The §IV-G second dataset: benign deployments match the phishing
    temporal distribution. A flat deployment profile is used so the
    Oct–Jan training window holds enough samples at reduced scale (the
    paper's second dataset has ~290 unique training contracts there)."""
    return build_corpus(
        CorpusConfig(
            n_phishing=N_CONTRACTS // 2,
            n_benign=N_CONTRACTS // 2,
            seed=SEED + 1,
            benign_temporal_match=True,
            phishing_profile="uniform",
        )
    )


@pytest.fixture(scope="session")
def temporal_dataset(temporal_corpus):
    return Dataset.from_corpus(temporal_corpus, seed=SEED + 1)


def run_once(benchmark, fn):
    """Record one timed execution of ``fn`` (training is too slow for
    statistical rounds) and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
