"""Scan-path throughput: the serve layer vs the seed per-address loop.

Not a paper artifact — this is the ROADMAP's "serve heavy traffic" check.
Three ways to answer the same batch of scan queries:

* **seed loop** — `classify_address(reuse_model=False)`: retrain the model
  for every address, exactly what the seed facade did,
* **cold service** — one `ScanService` fit + `scan_many` over a batch the
  cache has never seen,
* **warm service** — the same batch again, served from the
  content-addressed prediction cache.

Prints one machine-readable JSON summary line (`SCAN_THROUGHPUT {...}`)
with contracts/sec per mode. Shape assertions: the warm batched path must
beat the seed loop by ≥ 5×, and cached vs uncached predictions must be
bit-identical.
"""

import json
import time

import numpy as np

from benchmarks.conftest import SEED, run_once
from repro.core.pipeline import PhishingHook, PipelineConfig

#: Addresses in the scan batch (duplicates included — deployed bytecode is
#: heavily duplicated in the wild, §III).
BATCH_SIZE = 96

#: Addresses timed under the seed retrain-per-scan loop (kept small: each
#: one trains a fresh Random Forest).
SEED_LOOP_SIZE = 6


def _scan_addresses(corpus, count):
    records = corpus.records
    return [records[i % len(records)].address for i in range(count)]


def test_scan_throughput(benchmark, corpus):
    hook = PhishingHook(
        corpus, PipelineConfig(run_post_hoc=False, seed=SEED)
    )
    train = hook.build_dataset(hook.gather())
    addresses = _scan_addresses(corpus, BATCH_SIZE)

    def run():
        summary = {}

        # Seed behavior: retrain per scan.
        loop_addresses = addresses[:SEED_LOOP_SIZE]
        started = time.perf_counter()
        loop_verdicts = [
            hook.classify_address(
                a, "Random Forest", train_dataset=train, reuse_model=False
            )
            for a in loop_addresses
        ]
        loop_seconds = time.perf_counter() - started
        summary["seed_loop"] = {
            "contracts": len(loop_addresses),
            "seconds": loop_seconds,
            "contracts_per_sec": len(loop_addresses) / loop_seconds,
        }

        # Batched service, cold cache (fit timed separately).
        service = hook.scan_service("Random Forest", train_dataset=train)
        started = time.perf_counter()
        cold = service.scan_many(addresses)
        cold_seconds = time.perf_counter() - started
        summary["cold_service"] = {
            "contracts": len(addresses),
            "seconds": cold_seconds,
            "contracts_per_sec": len(addresses) / cold_seconds,
        }

        # Same batch again: pure cache service.
        started = time.perf_counter()
        warm = service.scan_many(addresses)
        warm_seconds = time.perf_counter() - started
        summary["warm_service"] = {
            "contracts": len(addresses),
            "seconds": warm_seconds,
            "contracts_per_sec": len(addresses) / warm_seconds,
        }
        summary["cache"] = service.stats()
        return summary, loop_verdicts, cold, warm

    summary, loop_verdicts, cold, warm = run_once(benchmark, run)

    # Cached and uncached predictions are bit-identical.
    assert [r.probability for r in cold] == [r.probability for r in warm]
    assert all(r.from_cache for r in warm)
    # The service answers match the per-address facade exactly (same seed,
    # same training set, same model class).
    for (verdict, probability), result in zip(loop_verdicts, cold):
        assert probability == result.probability
        assert verdict == result.is_phishing

    rate = {mode: summary[mode]["contracts_per_sec"]
            for mode in ("seed_loop", "cold_service", "warm_service")}
    summary["speedup_warm_vs_seed_loop"] = (
        rate["warm_service"] / rate["seed_loop"]
    )
    summary["speedup_cold_vs_seed_loop"] = (
        rate["cold_service"] / rate["seed_loop"]
    )
    print("\nSCAN_THROUGHPUT " + json.dumps(summary, sort_keys=True))
    print(f"seed loop   {rate['seed_loop']:10.1f} contracts/s")
    print(f"cold cache  {rate['cold_service']:10.1f} contracts/s")
    print(f"warm cache  {rate['warm_service']:10.1f} contracts/s")

    # Acceptance: warm batched scan ≥ 5× the seed per-address loop.
    assert summary["speedup_warm_vs_seed_loop"] >= 5.0


def test_feature_cache_amortizes_campaign_decodes(benchmark, corpus):
    """One decode per unique bytecode per campaign, not per model × fold."""
    from repro.serve.cache import FeatureCache

    hook = PhishingHook(
        corpus,
        PipelineConfig(
            model_names=("Random Forest", "k-NN", "Logistic Regression"),
            n_folds=2,
            run_post_hoc=False,
            seed=SEED,
        ),
    )

    outcome = run_once(benchmark, hook.run)
    assert len(outcome.evaluation.trials) == 6

    stats = hook.feature_cache.stats
    ids_hits, ids_misses = stats.by_namespace["ids"]
    unique = len({bytes(b) for b in outcome.dataset.bytecodes})
    # Every decode past the first per unique bytecode is a cache hit.
    assert ids_misses <= unique
    assert ids_hits > ids_misses
    print(f"\ncampaign decodes: {ids_misses} misses / {ids_hits} hits "
          f"({unique} unique bytecodes)")
