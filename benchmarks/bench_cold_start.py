"""Serving cold start: artifact load vs in-process retrain.

The artifact layer's reason to exist, measured: a serving process that
used to *retrain* its model on spin-up (`phishinghook scan`,
`StreamScanner` cold starts, every MEM trial) now loads persisted bytes.
Three claims are asserted:

* **speedup** — ``load_artifact`` is ≥ 10× faster than refitting the
  same configuration on the same data (usually orders of magnitude),
* **bit-identity** — the loaded model's ``predict_proba`` equals the
  trained model's exactly, through the flat-compiled serving path,
* **serve-ready** — a ``ScanService.from_artifact`` answers its first
  batch without any training (``fit_seconds == 0``).

Prints one machine-readable JSON summary line (``COLD_START {...}``).

Scale knobs (environment):

* ``PHOOK_BENCH_COLD_TREES`` — forest size (default 120, the Table II
  configuration),
* ``PHOOK_BENCH_SMOKE`` — CI smoke mode: smaller forest, same asserts
  (the 10× floor holds even at smoke scale — loading is milliseconds).
"""

import json
import os
import time

import numpy as np

from benchmarks.conftest import env_int, run_once
from repro.artifacts import load_artifact, save_artifact
from repro.ml.flat import precompile
from repro.models.hsc import HSCDetector
from repro.serve.service import ScanService

SMOKE = bool(int(os.environ.get("PHOOK_BENCH_SMOKE", "0")))
N_TREES = env_int("PHOOK_BENCH_COLD_TREES", 24 if SMOKE else 120)
MIN_SPEEDUP = 10.0


def test_cold_start(benchmark, dataset, tmp_path):
    def run():
        # Offline training (what every cold start used to pay).
        started = time.perf_counter()
        model = HSCDetector(variant="Random Forest", seed=0)
        model.set_params(clf__n_estimators=N_TREES)
        model.fit(dataset.bytecodes, dataset.labels)
        precompile(model)
        train_seconds = time.perf_counter() - started

        info = save_artifact(
            model, tmp_path / "forest.npz", model_name="Random Forest",
            dataset_fingerprint=dataset.fingerprint(),
        )

        # Serving cold start: one artifact read.
        started = time.perf_counter()
        loaded, __ = load_artifact(info.path)
        load_seconds = time.perf_counter() - started

        batch = dataset.bytecodes[: min(64, len(dataset))]
        bit_identical = bool(
            np.array_equal(
                loaded.predict_proba(batch), model.predict_proba(batch)
            )
        )

        service = ScanService.from_artifact(info.path)
        results = service.scan_bytecodes(batch)
        serve_ready = (
            service.fit_seconds == 0.0
            and len(results) == len(batch)
            and service.stats()["flat_compiled"] >= 1
        )

        return {
            "contracts": len(dataset),
            "trees": N_TREES,
            "train_seconds": train_seconds,
            "load_seconds": load_seconds,
            "speedup": train_seconds / load_seconds,
            "artifact_bytes": info.path.stat().st_size,
            "bit_identical": bit_identical,
            "serve_ready": bool(serve_ready),
            "smoke": SMOKE,
        }

    summary = run_once(benchmark, run)
    print(f"\nCOLD_START {json.dumps(summary)}")

    assert summary["bit_identical"], (
        "loaded model diverged from the trained model"
    )
    assert summary["serve_ready"], (
        "ScanService.from_artifact trained instead of loading"
    )
    assert summary["speedup"] >= MIN_SPEEDUP, (
        f"artifact load speedup {summary['speedup']:.1f}x below the "
        f"{MIN_SPEEDUP:.0f}x floor"
    )
