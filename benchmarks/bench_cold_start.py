"""Serving cold start: artifact load vs in-process retrain.

The artifact layer's reason to exist, measured: a serving process that
used to *retrain* its model on spin-up (`phishinghook scan`,
`StreamScanner` cold starts, every MEM trial) now loads persisted bytes.
Three claims are asserted:

* **speedup** — ``load_artifact`` is ≥ 10× faster than refitting the
  same configuration on the same data (usually orders of magnitude),
* **bit-identity** — the loaded model's ``predict_proba`` equals the
  trained model's exactly, through the flat-compiled serving path,
* **serve-ready** — a ``ScanService.from_artifact`` answers its first
  batch without any training (``fit_seconds == 0``),
* **mmap** — a stored-layout artifact mapped with ``mmap_mode="r"``
  loads ≥ 2× faster than the full read+verify of the same file, with
  identical predictions (pages fault in on first touch; verification
  is deferred per array).

Prints one machine-readable JSON summary line (``COLD_START {...}``).

Scale knobs (environment):

* ``PHOOK_BENCH_COLD_TREES`` — forest size (default 120, the Table II
  configuration),
* ``PHOOK_BENCH_SMOKE`` — CI smoke mode: smaller forest, same asserts
  (the 10× floor holds even at smoke scale — loading is milliseconds).
"""

import json
import os
import time

import numpy as np

from benchmarks.conftest import env_int, run_once
from repro.artifacts import load_artifact, save_artifact
from repro.ml.flat import precompile
from repro.models.hsc import HSCDetector
from repro.serve.service import ScanService

SMOKE = bool(int(os.environ.get("PHOOK_BENCH_SMOKE", "0")))
N_TREES = env_int("PHOOK_BENCH_COLD_TREES", 24 if SMOKE else 120)
MIN_SPEEDUP = 10.0
#: Stored-layout mmap load vs full read+verify of the same file. The
#: map defers both the copy and the per-array hashing to first touch,
#: so even smoke-scale artifacts clear 2x.
MIN_MMAP_SPEEDUP = 1.0 if SMOKE else 2.0


#: Serving-scale synthetic forest for the mmap measurement: enough node
#: bytes (a few MB) that load time is data-dominated, like a production
#: artifact, instead of zip-parse-dominated like the corpus model.
MMAP_SAMPLES = 500 if SMOKE else 4000
MMAP_TREES = 24 if SMOKE else 120


def _mmap_cold_start(tmp_path):
    """(copy_seconds, mmap_seconds, identical) on a serving-scale forest.

    Median of three alternating loads with a warm page cache — both
    paths read the same cached file, so the ratio isolates what mmap
    skips (per-array hashing and heap copies), not disk speed.
    """
    from repro.ml.forest import RandomForestClassifier

    rng = np.random.default_rng(0)
    X = rng.normal(size=(MMAP_SAMPLES, 24))
    y = (X[:, 0] + 0.5 * X[:, 3] > 0).astype(int)
    forest = RandomForestClassifier(
        n_estimators=MMAP_TREES, random_state=0
    ).fit(X, y)
    path = tmp_path / "serving-forest.npz"
    save_artifact(forest, path, model_name="Random Forest",
                  compression="stored")
    load_artifact(path)  # warm the page cache

    copies, maps = [], []
    probe = X[:64]
    mmap_identical = True
    for _ in range(3):
        started = time.perf_counter()
        copied, __ = load_artifact(path)
        copies.append(time.perf_counter() - started)

        started = time.perf_counter()
        mapped, __ = load_artifact(path, mmap_mode="r")
        maps.append(time.perf_counter() - started)

        mmap_identical = mmap_identical and bool(np.array_equal(
            mapped.predict_proba(probe), copied.predict_proba(probe)
        ))
    return (
        float(np.median(copies)), float(np.median(maps)), mmap_identical
    )


def test_cold_start(benchmark, dataset, tmp_path):
    def run():
        # Offline training (what every cold start used to pay).
        started = time.perf_counter()
        model = HSCDetector(variant="Random Forest", seed=0)
        model.set_params(clf__n_estimators=N_TREES)
        model.fit(dataset.bytecodes, dataset.labels)
        precompile(model)
        train_seconds = time.perf_counter() - started

        info = save_artifact(
            model, tmp_path / "forest.npz", model_name="Random Forest",
            dataset_fingerprint=dataset.fingerprint(),
        )

        # Serving cold start: one artifact read.
        started = time.perf_counter()
        loaded, __ = load_artifact(info.path)
        load_seconds = time.perf_counter() - started

        batch = dataset.bytecodes[: min(64, len(dataset))]
        bit_identical = bool(
            np.array_equal(
                loaded.predict_proba(batch), model.predict_proba(batch)
            )
        )

        # Zero-copy cold start: stored layout, node arrays mapped off
        # the spool instead of read + hashed + copied into fresh heap
        # pages. The win is data-dominated, so it is measured on a
        # serving-scale forest (megabytes of node arrays), not the tiny
        # corpus model above.
        copy_seconds, mmap_seconds, mmap_identical = _mmap_cold_start(
            tmp_path
        )

        service = ScanService.from_artifact(info.path)
        results = service.scan_bytecodes(batch)
        serve_ready = (
            service.fit_seconds == 0.0
            and len(results) == len(batch)
            and service.stats()["flat_compiled"] >= 1
        )

        return {
            "contracts": len(dataset),
            "trees": N_TREES,
            "train_seconds": train_seconds,
            "load_seconds": load_seconds,
            "speedup": train_seconds / load_seconds,
            "copy_load_seconds": copy_seconds,
            "mmap_load_seconds": mmap_seconds,
            "mmap": copy_seconds / mmap_seconds,
            "mmap_identical": mmap_identical,
            "artifact_bytes": info.path.stat().st_size,
            "bit_identical": bit_identical,
            "serve_ready": bool(serve_ready),
            "smoke": SMOKE,
        }

    summary = run_once(benchmark, run)
    print(f"\nCOLD_START {json.dumps(summary)}")

    assert summary["bit_identical"], (
        "loaded model diverged from the trained model"
    )
    assert summary["serve_ready"], (
        "ScanService.from_artifact trained instead of loading"
    )
    assert summary["speedup"] >= MIN_SPEEDUP, (
        f"artifact load speedup {summary['speedup']:.1f}x below the "
        f"{MIN_SPEEDUP:.0f}x floor"
    )
    assert summary["mmap_identical"], (
        "mmap-loaded model diverged from the trained model"
    )
    assert summary["mmap"] >= MIN_MMAP_SPEEDUP, (
        f"mmap load speedup {summary['mmap']:.1f}x below the "
        f"{MIN_MMAP_SPEEDUP:.0f}x floor"
    )
