"""Table III — Kruskal–Wallis tests over the per-trial metrics.

Paper shape: over 13 models × 30 trials, the null hypothesis (all models
share a median) is firmly rejected for all four metrics, with
Holm-adjusted p ≪ 0.05.

The statistics benches run their own evaluation with more trials per
model than the Table II headline run (statistical power needs
observations), over the cheaper model subset — set ``PHOOK_FULL=1`` for
the paper's full 13-model set.
"""

from repro.core.mem import ModelEvaluationModule
from repro.core.pam import METRICS, PostHocAnalysisModule

from benchmarks.conftest import SEED, STATS_MODELS, run_once

_CACHE: dict = {}


def evaluate_for_stats(dataset):
    """3-fold × 2-run evaluation of the statistics model subset."""
    if "result" not in _CACHE:
        mem = ModelEvaluationModule(n_folds=3, n_runs=2, seed=SEED)
        _CACHE["result"] = mem.evaluate(dataset, list(STATS_MODELS))
    return _CACHE["result"]


def test_table3_kruskal_wallis(benchmark, dataset):
    evaluation = run_once(benchmark, lambda: evaluate_for_stats(dataset))
    pam = PostHocAnalysisModule()  # excludes ESCORT, GPT-2β, T5β as §IV-E
    report = pam.analyze(evaluation)

    trials = len(evaluation.for_model(STATS_MODELS[0]))
    print(f"\nTable III — Kruskal–Wallis per metric "
          f"({len(STATS_MODELS)} models × {trials} trials, Holm-adjusted)")
    print(report.table3())
    print(f"normality violations (Shapiro–Wilk): "
          f"{report.normality_violations}/{len(report.normality)} "
          f"(paper: 20/52)")

    for metric in METRICS:
        assert report.kruskal_adjusted_p[metric] < 0.05, (
            f"{metric}: expected significant model differences"
        )
