"""Fig. 6 — critical difference diagram over the scalability results.

Paper shape: Random Forest occupies the best (rightmost) rank for all four
metrics; a thick line connects classifiers the Wilcoxon test cannot
separate (with only 3 splits × few observations, p_adj stays high — the
paper reports p_adj = 0.75 throughout, i.e. no significant pairs).
"""

from repro.analysis.cdd import critical_difference
from repro.core.pam import METRICS

from benchmarks.bench_fig5_scalability import (
    SCALABILITY_MODELS,
    SPLIT_RATIOS,
    evaluate_scalability,
)
from benchmarks.conftest import run_once


def test_fig6_critical_difference(benchmark, dataset):
    results = evaluate_scalability(dataset)

    def build_diagrams():
        diagrams = {}
        for metric in METRICS:
            scores = {
                model: [
                    float(results[ratio].metric_values(model, metric).mean())
                    for ratio in SPLIT_RATIOS
                ]
                for model in SCALABILITY_MODELS
            }
            diagrams[metric] = critical_difference(scores)
        return diagrams

    diagrams = run_once(benchmark, build_diagrams)

    print("\nFig. 6 — critical difference diagrams")
    rf_best = 0
    for metric in METRICS:
        diagram = diagrams[metric]
        print(f"[{metric}]")
        print(diagram.render())
        if diagram.ordered()[0] == "Random Forest":
            rf_best += 1
        for pair in diagram.pairwise:
            delta = diagram.effect_sizes[(pair.group_a, pair.group_b)]
            print(f"  δ({pair.group_a} vs {pair.group_b}) = {delta:+.3f} "
                  f"p_adj={pair.p_adjusted:.2f}")

    # Random Forest ranks best on at least 3 of the 4 metrics.
    assert rf_best >= 3
    # With 3 blocks the Wilcoxon pairs cannot reach significance —
    # exactly the paper's p_adj = 0.75 observation.
    for metric in METRICS:
        assert all(
            not pair.significant() for pair in diagrams[metric].pairwise
        )
