"""Fleet scaling: multi-process serving throughput vs a single worker.

Not a paper artifact — this is the ROADMAP's "scale past one process"
check. The same scan workload is pushed through a real fleet (forked
worker processes, HTTP transport, shared-memory feature ring) at one
and at four workers, by concurrent client threads:

* **1 worker** — every batch funnels through one process: the serving
  floor,
* **4 workers** — address-sharded dispatch across four processes.

Prints one machine-readable JSON summary line (``FLEET {...}``) with
events/sec per fleet size, the 4-vs-1 scaling ratio, parallel
efficiency (scaling / 4), the client-observed p99 batch latency, and
``shared_cache_hit`` — the shared feature table's hit rate when the
same workload repeats against a cached fleet (must stay ≈ 1.0, with
zero leaked pin leases).

Shape assertions: the fleet's alert set must equal the single-process
reference **bit for bit at both sizes** (sharding and shm handoff may
not change a single verdict), and throughput must scale. The paper-
grade floor — ≥ 0.7× linear at 4 workers — needs 4 free cores; on
smaller machines (``PHOOK_BENCH_SMOKE=1`` or ``os.cpu_count() < 4``)
it relaxes to "adding workers must not collapse throughput" while the
correctness assertions stay strict.
"""

import json
import os
import threading
import time

import numpy as np

from benchmarks.conftest import SEED
from repro.models.hsc import HSCDetector

SMOKE = bool(int(os.environ.get("PHOOK_BENCH_SMOKE", "0")))

#: Scan batches pushed through each fleet size, and addresses per batch.
N_BATCHES = 6 if SMOKE else 16
BATCH_SIZE = 24
#: Concurrent client threads (the coordinator is thread-safe; load must
#: arrive in parallel or a 4-worker fleet idles three workers).
CLIENTS = 4

#: Paper-grade scaling gate (needs >= 4 free cores): throughput at 4
#: workers must reach 0.7 x linear. The smoke fallback only guards
#: against collapse — fleet overhead must not halve throughput.
EFFICIENCY_FLOOR = 0.7
SMOKE_SCALING_FLOOR = 0.4

_CAN_GATE_SCALING = not SMOKE and (os.cpu_count() or 1) >= 4


def _workload(corpus):
    """(addresses, codes) batches with realistic bytecode duplication."""
    records = [r for r in corpus.records if r.bytecode]
    batches = []
    for b in range(N_BATCHES):
        rows = [
            records[(b * BATCH_SIZE + i) % len(records)]
            for i in range(BATCH_SIZE)
        ]
        batches.append((
            [r.address for r in rows], [r.bytecode for r in rows],
        ))
    return batches


def _drive(manager, batches):
    """Push every batch from CLIENTS threads; returns (seconds, p99)."""
    queue = list(enumerate(batches))
    lock = threading.Lock()
    latencies = []
    errors = []

    def client():
        while True:
            with lock:
                if not queue:
                    return
                _, (addresses, codes) = queue.pop()
            started = time.perf_counter()
            try:
                manager.scan(addresses, codes)
            except Exception as error:  # pragma: no cover - diagnostics
                with lock:
                    errors.append(error)
                return
            elapsed = time.perf_counter() - started
            with lock:
                latencies.append(elapsed)

    threads = [threading.Thread(target=client) for _ in range(CLIENTS)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - started
    assert not errors, f"fleet scan failed under load: {errors[0]}"
    return seconds, float(np.percentile(np.sort(latencies), 99))


def test_fleet_scaling(corpus, dataset, tmp_path_factory):
    from repro.artifacts import ModelStore
    from repro.net import FleetManager
    from repro.serve.service import ScanService
    from repro.stream import MemorySink

    detector = HSCDetector(variant="Random Forest", seed=SEED)
    detector.set_params(clf__n_estimators=16)
    detector.fit(dataset.bytecodes, dataset.labels)
    store_root = tmp_path_factory.mktemp("fleet-bench-store")
    ModelStore.from_url(str(store_root)).put(
        detector, model_name="Random Forest", tags=("production",)
    )

    batches = _workload(corpus)
    events = sum(len(addresses) for addresses, _ in batches)

    # Single-process reference: the ground truth alert set.
    reference = ScanService.from_artifact(
        "production", store=ModelStore.from_url(str(store_root))
    )
    expected_alerts = set()
    for addresses, codes in batches:
        for result in reference.scan_bytecodes(codes, addresses=addresses):
            if result.is_phishing:
                expected_alerts.add(result.address)

    summary = {"events": events, "batches": len(batches),
               "clients": CLIENTS}
    throughput = {}
    for workers in (1, 4):
        sink = MemorySink()
        with FleetManager(
            workers=workers,
            store_url=str(store_root),
            model_ref="production",
            overflow="block",
            sinks=(sink,),
        ) as manager:
            seconds, p99 = _drive(manager, batches)
            status = manager.status()
        fleet_alerts = {alert.address for alert in sink.alerts}
        assert fleet_alerts == expected_alerts, (
            f"{workers}-worker fleet alert set diverged from the "
            f"single-process reference "
            f"(missing {sorted(expected_alerts - fleet_alerts)[:3]}, "
            f"extra {sorted(fleet_alerts - expected_alerts)[:3]})"
        )
        assert status["counters"]["scanned"] == events
        throughput[workers] = events / seconds
        summary[f"throughput_{workers}"] = round(events / seconds, 2)
        summary[f"p99_seconds_{workers}"] = round(p99, 4)

    # Host-wide shared feature cache: drive the same workload twice
    # through a cached fleet. The second pass must resolve (nearly)
    # every unique bytecode from the shared table — the hit rate is the
    # tracked metric — and every pin lease must come back.
    sink = MemorySink()
    with FleetManager(
        workers=2,
        store_url=str(store_root),
        model_ref="production",
        overflow="block",
        shared_cache=True,
        mmap=True,
        sinks=(sink,),
    ) as manager:
        _drive(manager, batches)
        first = manager.status()["shared_cache"]
        _drive(manager, batches)
        status = manager.status()
        second = status["shared_cache"]
    hits = second["hits"] - first["hits"]
    misses = second["misses"] - first["misses"]
    shared_hit = hits / max(1, hits + misses)
    fleet_alerts = {alert.address for alert in sink.alerts}
    assert fleet_alerts == expected_alerts, (
        "shared-cache fleet alert set diverged from the reference"
    )
    assert second["pinned_slots"] == 0, (
        f"{second['pinned_slots']} shared-cache slot lease(s) leaked"
    )
    summary["shared_cache_hit"] = round(shared_hit, 4)

    scaling = throughput[4] / throughput[1]
    efficiency = scaling / 4.0
    summary["scaling"] = round(scaling, 4)
    summary["efficiency"] = round(efficiency, 4)
    summary["p99_seconds"] = summary["p99_seconds_4"]
    summary["cores"] = os.cpu_count() or 1
    summary["gated"] = _CAN_GATE_SCALING
    print(f"\nFLEET {json.dumps(summary, sort_keys=True)}")
    print(f"1 worker:  {throughput[1]:8.1f} events/s  "
          f"p99 {summary['p99_seconds_1'] * 1e3:.1f}ms")
    print(f"4 workers: {throughput[4]:8.1f} events/s  "
          f"p99 {summary['p99_seconds_4'] * 1e3:.1f}ms  "
          f"scaling {scaling:.2f}x  efficiency {efficiency:.2f}")

    if _CAN_GATE_SCALING:
        assert efficiency >= EFFICIENCY_FLOOR, (
            f"4-worker fleet reached {efficiency:.2f}x linear "
            f"(< {EFFICIENCY_FLOOR}); sharded dispatch is not scaling"
        )
    else:
        assert scaling >= SMOKE_SCALING_FLOOR, (
            f"4-worker throughput collapsed to {scaling:.2f}x of one "
            f"worker on a {os.cpu_count()}-core machine"
        )
    assert shared_hit >= 0.95, (
        f"repeat-workload shared-cache hit rate {shared_hit:.2f} < 0.95: "
        "the host-wide table is not retaining bytecodes across batches"
    )
