"""Continuous-learning loop: warm-start economics + closed-loop latency.

The loop subsystem's two quantitative promises (:mod:`repro.loop`,
docs/operations.md):

* **warm-start speedup** — growing the production forest by ``GROW``
  trees on the drift window (``fit_more``: frozen vocabulary, fitted
  trees kept) must cost a small fraction of refitting an equal-sized
  forest from scratch, at *equal* holdout quality. This is the whole
  reason the loop can retrain on every confirmed drift instead of on a
  nightly schedule: the incremental step is ≥ ``MIN_SPEEDUP``× cheaper
  than the cold one while landing within ``MAX_PARITY_GAP`` holdout
  accuracy of it.
* **drift-to-promotion latency** — replaying a drifted campaign through
  a live loop (detect → subprocess retrain → shadow → promote) completes
  the full cycle in bounded wall-clock, with serving never stalled for
  longer than one micro-batch flush.

Prints one machine-readable JSON summary line (``LOOP {...}``).

Scale knobs (environment):

* ``PHOOK_BENCH_LOOP_TREES`` — production forest size (default 120),
* ``PHOOK_BENCH_LOOP_GROW`` — trees grown per retrain (default 20),
* ``PHOOK_BENCH_SMOKE`` — CI smoke mode: the wall-clock speedup floor is
  relaxed (tiny runs are timer-noise dominated) but holdout parity and
  every loop-correctness assertion stay strict.
"""

import json
import os
import time

from benchmarks.conftest import SEED, env_int, run_once
from repro.artifacts import ModelStore
from repro.datagen.corpus import CorpusConfig, build_corpus
from repro.loop import DriftMonitor, LoopOrchestrator, read_history
from repro.loop.retrain import _holdout_split, retrain_candidate
from repro.models.hsc import HSCDetector
from repro.rollout import MetricParityPolicy
from repro.serve.cache import FeatureCache
from repro.serve.service import ScanService
from repro.stream import StreamScanner
from repro.stream.replay import TimelineReplayer

SMOKE = bool(int(os.environ.get("PHOOK_BENCH_SMOKE", "0")))
N_TREES = env_int("PHOOK_BENCH_LOOP_TREES", 120)
GROW = env_int("PHOOK_BENCH_LOOP_GROW", 20)
MIN_SPEEDUP = 1.5 if SMOKE else 3.0
MAX_PARITY_GAP = 0.05
HOLDOUT = 0.25


def _window_corpora():
    """A stationary base campaign and a phishing-heavy drift window.

    Both use the flat deployment profile: the bench induces drift by
    shifting the scam-family *mix*, not by riding the Fig. 2 monthly
    clumping (which would make even the stationary half self-drift).
    """
    base = build_corpus(CorpusConfig(
        n_phishing=120, n_benign=120, seed=SEED,
        phishing_profile="uniform",
    ))
    drifted = build_corpus(CorpusConfig(
        n_phishing=300, n_benign=60, seed=SEED + 1,
        phishing_profile="uniform",
    ))
    return base, drifted


def _fit_production(records, n_estimators, seed):
    model = HSCDetector(variant="Random Forest", seed=seed)
    model.set_params(clf__n_estimators=n_estimators)
    model.fit([r.bytecode for r in records], [r.label for r in records])
    return model


def test_loop(benchmark, tmp_path):
    def run():
        base, drifted = _window_corpora()
        base_records = [r for r in base.records if r.bytecode]
        drift_records = [r for r in drifted.records if r.bytecode]

        # ---------------------------------------------------------- #
        # Phase 1 — warm-start economics.
        #
        # The retrain window is what the live loop would hold: a slice
        # of recent (drifted) traffic. Warm = production grows GROW
        # trees on it (the loop's actual code path, candidate artifact
        # registration included); cold = an equal-sized forest fitted
        # from scratch on the same window. Both are scored on the same
        # deterministic holdout slice.
        # ---------------------------------------------------------- #
        store = ModelStore(tmp_path / "store")
        production = _fit_production(base_records, N_TREES, seed=SEED)
        store.put(production, model_name="Random Forest",
                  tags=("production",))

        window = sorted(
            drift_records, key=lambda r: (r.timestamp, r.address)
        )[:256]
        window_codes = [r.bytecode for r in window]
        window_labels = [r.label for r in window]

        warm_report = retrain_candidate(
            store=store,
            bytecodes=window_codes,
            labels=window_labels,
            grow=GROW,
            holdout=HOLDOUT,
            seed=SEED,
        )
        warm_seconds = warm_report["seconds"]
        warm_accuracy = warm_report["metrics"]["holdout_accuracy"]

        train_idx, hold_idx = _holdout_split(
            len(window_codes), HOLDOUT, SEED
        )
        cold = HSCDetector(variant="Random Forest", seed=SEED)
        cold.set_params(clf__n_estimators=N_TREES + GROW)
        started = time.perf_counter()
        cold.fit([window_codes[i] for i in train_idx],
                 [window_labels[i] for i in train_idx])
        cold_seconds = time.perf_counter() - started
        hold_codes = [window_codes[i] for i in hold_idx]
        hold_labels = [window_labels[i] for i in hold_idx]
        cold_accuracy = float(
            ((cold.predict_proba(hold_codes)[:, 1] >= 0.5).astype(int)
             == hold_labels).mean()
        )

        # ---------------------------------------------------------- #
        # Phase 2 — the closed loop, wall-clock end to end.
        #
        # The deterministic recipe the loop tests pin down, timed: a
        # stationary replay arms the monitor, then the drifted campaign
        # triggers exactly one detect → subprocess retrain → shadow →
        # promote cycle. The latency metric is the drifted replay's
        # wall time — it contains the whole cycle.
        # ---------------------------------------------------------- #
        loop_store = ModelStore(tmp_path / "loop-store")
        serving = _fit_production(base_records, 40, seed=1)
        loop_store.put(serving, model_name="Random Forest",
                       tags=("production",))
        cache = FeatureCache(max_entries=8192)
        service = ScanService.from_artifact(
            "production", store=loop_store, cache=cache, threshold=0.5
        )
        scanner = StreamScanner(
            service, shards=2, max_batch=16, max_queue=256,
            policy="block", auto_flush=True,
        )
        labels = {r.address: r.label for r in base_records}
        labels.update({r.address: r.label for r in drift_records})
        loop = LoopOrchestrator(
            scanner, loop_store,
            label_of=labels.get,
            monitor=DriftMonitor(window=160, blocks=8, alpha=0.05,
                                 min_effect=0.2, confirm_checks=2),
            check_every=32,
            grow=GROW,
            holdout=HOLDOUT,
            seed=3,
            policy=MetricParityPolicy(
                min_events=60, promote_agreement=0.90,
                abort_agreement=0.40, max_mean_divergence=0.25,
            ),
            retrain_mode="subprocess",
            store_url=str(tmp_path / "loop-store"),
            wait_for_retrain=True,
        )
        replayer = TimelineReplayer(scanner)
        replayer.replay_chain(base.chain)
        drift_started = time.perf_counter()
        replayer.replay_chain(drifted.chain)
        drift_to_promotion = time.perf_counter() - drift_started
        loop.detach()
        scanner.close()

        history = read_history(loop_store)
        kinds = [entry["event"] for entry in history]
        tags = loop_store.tags()

        return {
            "trees": N_TREES,
            "grow": GROW,
            "window_events": len(window_codes),
            "warm_seconds": warm_seconds,
            "cold_seconds": cold_seconds,
            "warm_speedup": cold_seconds / warm_seconds,
            "warm_accuracy": warm_accuracy,
            "cold_accuracy": cold_accuracy,
            "parity_gap": abs(warm_accuracy - cold_accuracy),
            "loop_events": loop.events_seen,
            "drifts": loop.drifts,
            "promotions": loop.promotions,
            "aborts": loop.aborts,
            "history_events": kinds,
            "promotion_latency": drift_to_promotion,
            "production_is_candidate": tags.get("production")
                                       == tags.get("candidate"),
            "smoke": SMOKE,
        }

    summary = run_once(benchmark, run)
    print(f"\nLOOP {json.dumps(summary)}")

    assert summary["warm_speedup"] >= MIN_SPEEDUP, (
        f"warm-start retrain is only {summary['warm_speedup']:.2f}x "
        f"faster than a cold refit (floor {MIN_SPEEDUP:.1f}x)"
    )
    assert summary["parity_gap"] <= MAX_PARITY_GAP, (
        f"warm-started holdout accuracy diverges from cold refit by "
        f"{summary['parity_gap']:.3f} (band {MAX_PARITY_GAP})"
    )
    assert summary["drifts"] == 1, (
        f"drifted campaign confirmed {summary['drifts']} drifts "
        "(expected exactly 1)"
    )
    assert summary["promotions"] == 1 and summary["aborts"] == 0, (
        "the cycle did not end in exactly one promotion"
    )
    assert summary["history_events"] == ["drift", "retrain", "promote"], (
        f"history recorded {summary['history_events']}"
    )
    assert summary["production_is_candidate"], (
        "promotion did not repoint the production tag at the candidate"
    )
