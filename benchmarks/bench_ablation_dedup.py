"""Ablation — the dataset-construction dedup step (§III).

The paper de-duplicates bit-identical bytecodes before evaluation
(17,455 obtained → 3,458 unique). This ablation quantifies why the step is
load-bearing: minimal-proxy clones dominate the raw crawl, and proxy
bytecodes are opcode-identical regardless of what they point at — benign
and phishing proxies share the same features. A dataset built without
dedup is therefore mostly unclassifiable duplicates and accuracy collapses
toward chance; after dedup each behaviour is counted once and the real
signal dominates.
"""

import numpy as np

from repro.datagen.dataset import Dataset
from repro.datagen.mutation import is_minimal_proxy
from repro.ml.metrics import accuracy_score
from repro.models.hsc import HSCDetector

from benchmarks.conftest import SEED, run_once


def _dataset_without_dedup(corpus, seed: int) -> Dataset:
    """Balanced dataset built from *all* records (clones included)."""
    rng = np.random.default_rng(seed)
    phishing = [r for r in corpus.records if r.label == 1]
    benign = [r for r in corpus.records if r.label == 0]
    count = min(len(phishing), len(benign))
    phishing = list(rng.permutation(np.array(phishing, dtype=object)))[:count]
    benign = list(rng.permutation(np.array(benign, dtype=object)))[:count]
    chosen = phishing + benign
    order = rng.permutation(len(chosen))
    chosen = [chosen[i] for i in order]
    return Dataset(
        bytecodes=[r.bytecode for r in chosen],
        labels=np.array([r.label for r in chosen]),
        months=np.array([r.month for r in chosen]),
        families=[r.family for r in chosen],
        addresses=[r.address for r in chosen],
    )


def _cv_accuracy(dataset: Dataset, seed: int) -> float:
    scores = []
    for train_idx, test_idx in dataset.stratified_kfold(3, seed=seed):
        train, test = dataset.subset(train_idx), dataset.subset(test_idx)
        model = HSCDetector(variant="Random Forest", seed=seed)
        model.set_params(clf__n_estimators=60)
        model.fit(train.bytecodes, train.labels)
        scores.append(accuracy_score(test.labels, model.predict(test.bytecodes)))
    return float(np.mean(scores))


def test_ablation_dedup_removes_clone_domination(benchmark, corpus, dataset):
    def run():
        leaky = _dataset_without_dedup(corpus, SEED)
        proxy_share = float(np.mean([
            is_minimal_proxy(code) for code in leaky.bytecodes
        ]))
        return _cv_accuracy(leaky, SEED), _cv_accuracy(dataset, SEED), proxy_share

    raw_accuracy, dedup_accuracy, proxy_share = run_once(benchmark, run)

    duplicates = len(corpus.records) - len(corpus.unique_records())
    print("\nAblation — dedup of minimal-proxy clones")
    print(f"duplicate deployments removed by dedup: {duplicates}")
    print(f"proxy share of the raw (no-dedup) dataset: {proxy_share:.0%}")
    print(f"accuracy WITHOUT dedup (clone-dominated): {raw_accuracy:.3f}")
    print(f"accuracy WITH dedup (paper protocol):     {dedup_accuracy:.3f}")

    # The raw crawl is dominated by proxy clones …
    assert proxy_share > 0.5
    # … which are opcode-indistinguishable across classes, collapsing the
    # measured accuracy; dedup restores the real signal.
    assert dedup_accuracy > raw_accuracy + 0.10
    assert dedup_accuracy > 0.75
