"""Extension — do control-flow features add signal over histograms?

Beyond the paper: the HSC pipeline is retrained with CFG-derived
structural features (block counts, complexity, dispatcher fan-out, dead
code, terminator mix) appended to the opcode histogram. The experiment
reports both configurations; structure must at minimum not hurt, and the
structural-only model must itself be far better than chance — control
flow carries real class signal.
"""

import numpy as np

from repro.features.histogram import OpcodeHistogramExtractor
from repro.features.structural import StructuralFeatureExtractor
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import accuracy_score

from benchmarks.conftest import SEED, run_once


def _cv_accuracy(dataset, make_features, seed: int) -> float:
    scores = []
    for train_idx, test_idx in dataset.stratified_kfold(3, seed=seed):
        train, test = dataset.subset(train_idx), dataset.subset(test_idx)
        X_train, X_test = make_features(train.bytecodes, test.bytecodes)
        model = RandomForestClassifier(n_estimators=80, random_state=seed)
        model.fit(X_train, train.labels)
        scores.append(accuracy_score(test.labels, model.predict(X_test)))
    return float(np.mean(scores))


def test_ext_structural_features(benchmark, dataset):
    structural = StructuralFeatureExtractor()

    def histogram_only(train_codes, test_codes):
        extractor = OpcodeHistogramExtractor().fit(train_codes)
        return extractor.transform(train_codes), extractor.transform(test_codes)

    def structural_only(train_codes, test_codes):
        return structural.transform(train_codes), structural.transform(test_codes)

    def combined(train_codes, test_codes):
        h_train, h_test = histogram_only(train_codes, test_codes)
        s_train, s_test = structural_only(train_codes, test_codes)
        return (
            np.hstack([h_train, s_train]),
            np.hstack([h_test, s_test]),
        )

    def run():
        return {
            "histogram": _cv_accuracy(dataset, histogram_only, SEED),
            "structural": _cv_accuracy(dataset, structural_only, SEED),
            "combined": _cv_accuracy(dataset, combined, SEED),
        }

    results = run_once(benchmark, run)

    print("\nExtension — structural (CFG) features")
    for name, value in results.items():
        print(f"{name:12s} accuracy = {value:.3f}")

    # Control-flow alone carries real signal.
    assert results["structural"] > 0.65
    # Adding structure does not hurt the histogram pipeline.
    assert results["combined"] >= results["histogram"] - 0.03
