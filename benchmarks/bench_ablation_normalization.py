"""Ablation — the paper's "no normalization" histogram design choice.

§IV-B specifies that the opcode histogram "is directly served as input
(i.e., without normalized nor standardized steps)". This ablation checks
what that choice costs and buys: Random Forest accuracy on raw counts vs
L1-normalized frequencies, both clean and under the benign-mimicry
padding attack (see ``repro.robustness``).

Expected: clean accuracy is nearly identical (trees are monotone-
invariant per feature, and contract length itself carries a little
signal), but the robustness profiles differ — padding inflates raw
counts without bound while frequencies saturate, so the attack surface
moves rather than disappears.
"""

import numpy as np

from repro.features.histogram import OpcodeHistogramExtractor
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import recall_score
from repro.robustness.attacks import (
    mimicry_padding,
    opcode_byte_distribution,
)
from repro.robustness.evaluate import attack_corpus

from benchmarks.conftest import SEED, run_once


def _features(extractor, codes, normalize: bool) -> np.ndarray:
    matrix = extractor.transform(codes)
    if normalize:
        totals = matrix.sum(axis=1, keepdims=True)
        totals[totals == 0] = 1.0
        matrix = matrix / totals
    return matrix


def test_ablation_histogram_normalization(benchmark, dataset):
    train, test = dataset.train_test_split(0.3, seed=SEED)
    labels = np.asarray(test.labels)
    benign_codes = [
        code for code, label in zip(train.bytecodes, train.labels)
        if label == 0
    ]
    distribution = opcode_byte_distribution(benign_codes)

    def attack(bytecode, rng, strength):
        return mimicry_padding(
            bytecode, rng, int(strength * len(bytecode)), distribution
        )

    def run():
        extractor = OpcodeHistogramExtractor().fit(train.bytecodes)
        results = {}
        for normalize in (False, True):
            model = RandomForestClassifier(n_estimators=80, random_state=SEED)
            model.fit(
                _features(extractor, train.bytecodes, normalize),
                np.asarray(train.labels),
            )
            recalls = {}
            for strength in (0.0, 1.0, 2.0):
                rng = np.random.default_rng(SEED)
                attacked = attack_corpus(
                    test.bytecodes, test.labels, attack, rng, strength
                )
                predictions = model.predict(
                    _features(extractor, attacked, normalize)
                )
                recalls[strength] = recall_score(labels, predictions)
            results["normalized" if normalize else "raw"] = recalls
        return results

    results = run_once(benchmark, run)

    print("\nAblation — histogram normalization under mimicry padding")
    print(f"{'features':12s} {'clean':>7s} {'1.0x':>7s} {'2.0x':>7s}")
    for name, recalls in results.items():
        print(f"{name:12s} {recalls[0.0]:7.3f} {recalls[1.0]:7.3f} "
              f"{recalls[2.0]:7.3f}")

    # Clean performance is comparable: the paper's no-normalization choice
    # is not load-bearing for accuracy.
    assert abs(results["raw"][0.0] - results["normalized"][0.0]) < 0.12
    # Both representations remain attackable — mimicry padding moves the
    # histogram towards benign in either geometry. At least one padding
    # strength must cut recall for each representation.
    for recalls in results.values():
        assert min(recalls[1.0], recalls[2.0]) < recalls[0.0]
