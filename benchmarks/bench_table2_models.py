"""Table II — Accuracy/F1/Precision/Recall for all 16 models.

Paper shape: HSCs best (avg ≈91.5% accuracy; Random Forest best overall at
93.63%), LMs second (≈88.8%; SCSGuard best LM), VMs third (≈83.8%), and
ESCORT near chance (55.91%) — vulnerability features do not transfer to a
social-engineering task.
"""

import numpy as np

from repro.core.mem import ModelEvaluationModule
from repro.core.registry import MODEL_NAMES, category_of

from benchmarks.conftest import N_FOLDS, N_RUNS, SEED, run_once

#: Keep a Table II evaluation result shared with the statistics benches.
_CACHE: dict = {}


def evaluate_table2(dataset):
    """Run (or reuse) the full 16-model evaluation."""
    if "result" not in _CACHE:
        mem = ModelEvaluationModule(n_folds=N_FOLDS, n_runs=N_RUNS, seed=SEED)
        _CACHE["result"] = mem.evaluate(dataset, list(MODEL_NAMES))
    return _CACHE["result"]


def test_table2_model_comparison(benchmark, dataset):
    result = run_once(benchmark, lambda: evaluate_table2(dataset))

    print("\nTable II — averaged performance metrics "
          f"({N_FOLDS}-fold × {N_RUNS} runs, n={len(dataset)})")
    print(result.table())

    category_accuracy = {
        category: result.category_mean(category, "accuracy")
        for category in ("HSC", "VM", "LM", "VDM")
    }
    print("category means:", {
        k: f"{v:.3f}" for k, v in category_accuracy.items()
    })

    # --- Shape assertions (paper ordering) --------------------------- #
    # Every mainstream category clearly beats the vulnerability detector.
    assert category_accuracy["HSC"] > category_accuracy["VDM"] + 0.10
    assert category_accuracy["LM"] > category_accuracy["VDM"] + 0.05
    assert category_accuracy["VM"] > category_accuracy["VDM"] + 0.05
    # HSCs lead the field.
    assert category_accuracy["HSC"] >= category_accuracy["VM"]
    # Random Forest is a top model: within 3 points of the best of the 13
    # models the paper's post-hoc analysis keeps (§IV-E drops ESCORT and
    # the β variants); at the reduced default scale the β sliding-window
    # variants are high-variance and can fluke above their α siblings.
    post_hoc_models = [
        name for name in MODEL_NAMES
        if name != "ESCORT" and not name.endswith("β")
    ]
    best_accuracy = max(
        result.mean_metrics(name).accuracy for name in post_hoc_models
    )
    rf_accuracy = result.mean_metrics("Random Forest").accuracy
    assert rf_accuracy >= best_accuracy - 0.03
    # Everything except ESCORT performs usefully. Deep vision models
    # trained from random init are data-starved at the reduced default
    # corpus (the paper's own Fig. 5 point: VMs need data to shine), so
    # their floor is "clearly above chance" rather than the 0.62 the
    # shallow pipelines must clear.
    for name in MODEL_NAMES:
        if name == "ESCORT":
            continue
        floor = 0.55 if category_of(name) == "VM" else 0.62
        assert result.mean_metrics(name).accuracy > floor, name
    # ESCORT is the worst model.
    escort_accuracy = result.mean_metrics("ESCORT").accuracy
    assert all(
        result.mean_metrics(name).accuracy >= escort_accuracy - 0.02
        for name in MODEL_NAMES
    )
