"""Substrate micro-benchmarks: disassembler and interpreter throughput.

Not a paper artifact — these keep the EVM substrate honest. The BDM must
disassemble thousands of contracts per dataset build and the corpus
validator executes every generated contract, so regressions here slow
every experiment.
"""

import numpy as np

from repro.evm.disassembler import disassemble
from repro.evm.machine import EVM, ExecutionContext, Halt


def _corpus_codes(corpus, count=64):
    return [r.bytecode for r in corpus.unique_records()[:count]]


def test_disassembler_throughput(benchmark, corpus):
    codes = _corpus_codes(corpus)
    total_bytes = sum(len(c) for c in codes)

    def run():
        return sum(len(disassemble(code)) for code in codes)

    instructions = benchmark(run)
    print(f"\ndisassembled {len(codes)} contracts, {total_bytes} bytes, "
          f"{instructions} instructions per round")
    assert instructions > 0


def test_interpreter_throughput(benchmark, corpus):
    records = [r for r in corpus.unique_records() if r.kind == "base"][:32]

    def run():
        clean = 0
        for record in records:
            context = ExecutionContext(
                timestamp=record.timestamp,
                calldata=record.example_calldata,
            )
            result = EVM().execute(record.bytecode, context)
            clean += result.halt in (Halt.STOP, Halt.RETURN)
        return clean

    clean = benchmark(run)
    print(f"\nexecuted {len(records)} contracts, {clean} clean halts")
    assert clean == len(records)


def test_histogram_extraction_throughput(benchmark, corpus):
    from repro.features.histogram import OpcodeHistogramExtractor

    codes = _corpus_codes(corpus, count=128)
    extractor = OpcodeHistogramExtractor().fit(codes)

    def run():
        return extractor.transform(codes)

    matrix = benchmark(run)
    assert matrix.shape[0] == len(codes)
    assert np.all(matrix.sum(axis=1) > 0)
