"""Fig. 7 — training and inference time per data split.

Paper shape: SCSGuard's (LM) training and inference times dominate by
orders of magnitude and grow with data size, while Random Forest (HSC) and
ECA+EfficientNet (VM) stay low and stable. Absolute seconds differ (GPU vs
CPU, scaled models); the ordering LM ≫ VM > HSC must hold.
"""

from benchmarks.bench_fig5_scalability import (
    SCALABILITY_MODELS,
    SPLIT_RATIOS,
    evaluate_scalability,
)
from benchmarks.conftest import run_once


def test_fig7_time_metrics(benchmark, dataset):
    results = run_once(benchmark, lambda: evaluate_scalability(dataset))

    train_times: dict[str, list[float]] = {}
    inference_times: dict[str, list[float]] = {}
    for model in SCALABILITY_MODELS:
        train_times[model] = []
        inference_times[model] = []
        for ratio in SPLIT_RATIOS:
            train, inference = results[ratio].mean_times(model)
            train_times[model].append(train)
            inference_times[model].append(inference)

    print("\nFig. 7 — training time (s) per split")
    print(f"{'Model':18s}" + "".join(f" {r:>8.2f}" for r in SPLIT_RATIOS))
    for model in SCALABILITY_MODELS:
        print(f"{model:18s}"
              + "".join(f" {t:8.3f}" for t in train_times[model]))
    print("Fig. 7 — inference time (s) per split")
    for model in SCALABILITY_MODELS:
        print(f"{model:18s}"
              + "".join(f" {t:8.3f}" for t in inference_times[model]))

    # LM training dominates the HSC at full data.
    assert train_times["SCSGuard"][-1] > 3 * train_times["Random Forest"][-1]
    # LM inference dominates the HSC's.
    assert (
        inference_times["SCSGuard"][-1]
        > inference_times["Random Forest"][-1]
    )
    # LM cost grows with the data split.
    assert train_times["SCSGuard"][-1] > train_times["SCSGuard"][0]
