"""Cold-start resident memory: mmap artifact loads vs full copies.

Not a paper artifact — the memory half of the zero-copy cold-start
claim (`bench_cold_start.py` measures the wall-clock half). A serving
process that loads an artifact with ``mmap_mode="r"`` maps the stored
node arrays instead of copying them into its heap; pages fault in only
as inference touches them, and the OS page cache shares them between
every worker on the host. The claim measured here:

* **rss** — the RSS growth of a fresh subprocess that loads a
  serving-scale artifact and answers one batch is strictly smaller
  under mmap than under the copying load, by at least 2× around the
  load itself. Smoke mode only asserts bit-identity: a tiny artifact's
  node arrays are smaller than the memmap objects that map them, so
  RSS deltas at that scale measure allocator noise, not the claim.

Each measurement runs in its own subprocess (interpreter + numpy RSS
is noise at this scale; the *delta* around the load isolates the
artifact's contribution), reading ``VmRSS`` from ``/proc/self/status``
— no third-party process library needed.

Prints one machine-readable JSON summary line (``MEMORY {...}``).

Scale knobs (environment):

* ``PHOOK_BENCH_MEMORY_SAMPLES`` / ``PHOOK_BENCH_MEMORY_TREES`` —
  synthetic forest scale (default 4000 × 120, a few MB of node
  arrays),
* ``PHOOK_BENCH_SMOKE`` — CI smoke mode: small forest, direction-only
  assert.
"""

import json
import os
import pathlib
import subprocess
import sys

import numpy as np

from benchmarks.conftest import env_int, run_once
from repro.artifacts import save_artifact
from repro.ml.forest import RandomForestClassifier

SMOKE = bool(int(os.environ.get("PHOOK_BENCH_SMOKE", "0")))
N_SAMPLES = env_int("PHOOK_BENCH_MEMORY_SAMPLES", 500 if SMOKE else 4000)
N_TREES = env_int("PHOOK_BENCH_MEMORY_TREES", 24 if SMOKE else 120)
#: Copy-load RSS growth over mmap-load RSS growth, gated at full scale
#: only — smoke-scale artifacts are smaller than allocator noise.
MIN_RSS_RATIO = 2.0

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"

#: Runs in a fresh interpreter: RSS before load, load + one batch,
#: RSS after. ``argv``: artifact path, "mmap"|"copy", probe rows file.
_CHILD = """
import json, sys
import numpy as np
from repro.artifacts import load_artifact

def rss_kb():
    with open("/proc/self/status") as status:
        for line in status:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    raise RuntimeError("no VmRSS in /proc/self/status")

path, mode, probe_path = sys.argv[1:4]
probe = np.load(probe_path)
before = rss_kb()
model, __ = load_artifact(path, mmap_mode="r" if mode == "mmap" else None)
loaded = rss_kb()
proba = model.predict_proba(probe)
after = rss_kb()
print(json.dumps({
    "before_kb": before,
    "loaded_kb": loaded,
    "after_kb": after,
    "load_delta_kb": loaded - before,
    "serve_delta_kb": after - before,
    "proba_head": proba[:4].tolist(),
}))
"""


def _measure(path, mode, probe_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)] + [p for p in env.get("PYTHONPATH", "").split(
            os.pathsep) if p]
    )
    result = subprocess.run(
        [sys.executable, "-c", _CHILD, str(path), mode, str(probe_path)],
        capture_output=True, text=True, env=env, timeout=120,
    )
    assert result.returncode == 0, (
        f"{mode} load subprocess failed:\n{result.stderr}"
    )
    return json.loads(result.stdout)


def test_cold_start_rss(benchmark, tmp_path):
    rng = np.random.default_rng(0)
    X = rng.normal(size=(N_SAMPLES, 24))
    y = (X[:, 0] + 0.5 * X[:, 3] > 0).astype(int)
    forest = RandomForestClassifier(
        n_estimators=N_TREES, random_state=0
    ).fit(X, y)
    path = tmp_path / "serving-forest.npz"
    info = save_artifact(forest, path, model_name="Random Forest",
                         compression="stored")
    probe_path = tmp_path / "probe.npy"
    np.save(probe_path, X[:64])

    def run():
        copy = _measure(info.path, "copy", probe_path)
        mapped = _measure(info.path, "mmap", probe_path)
        return {
            "artifact_bytes": info.path.stat().st_size,
            "trees": N_TREES,
            # The load delta is the cold-start claim: mmap defers the
            # node-array copy entirely. The serve delta adds the first
            # batch's working set (descent tables), identical for both
            # paths, so it is reported but not gated as a ratio.
            "copy_load_kb": copy["load_delta_kb"],
            "mmap_load_kb": mapped["load_delta_kb"],
            "copy_serve_kb": copy["serve_delta_kb"],
            "mmap_serve_kb": mapped["serve_delta_kb"],
            "rss_saving_kb": (
                copy["serve_delta_kb"] - mapped["serve_delta_kb"]
            ),
            "rss_ratio": (
                copy["load_delta_kb"] / max(1, mapped["load_delta_kb"])
            ),
            "identical": copy["proba_head"] == mapped["proba_head"],
            "smoke": SMOKE,
        }

    summary = run_once(benchmark, run)
    print(f"\nMEMORY {json.dumps(summary)}")

    assert summary["identical"], (
        "mmap-loaded subprocess served different probabilities"
    )
    if not SMOKE:
        assert summary["rss_saving_kb"] > 0, (
            f"mmap serving grew RSS by {summary['mmap_serve_kb']}KB, "
            f"not less than the copying load's "
            f"{summary['copy_serve_kb']}KB"
        )
        assert summary["rss_ratio"] >= MIN_RSS_RATIO, (
            f"copy/mmap load RSS-growth ratio {summary['rss_ratio']:.2f} "
            f"below the {MIN_RSS_RATIO:.0f}x floor"
        )
