"""Fig. 4 — Dunn's pairwise comparisons with Holm correction.

Paper shape: ~65% of model pairs differ significantly on Accuracy/F1/
Precision (61.5% on Recall); pairs *within* a category differ far less
often (33–41%) than pairs *across* categories (76–80%).
"""

from repro.core.pam import METRICS, PostHocAnalysisModule

from benchmarks.bench_table3_kruskal import evaluate_for_stats
from benchmarks.conftest import run_once


def test_fig4_dunn_pairwise(benchmark, dataset):
    evaluation = evaluate_for_stats(dataset)
    pam = PostHocAnalysisModule()
    report = run_once(benchmark, lambda: pam.analyze(evaluation))

    print("\nFig. 4 — significant Dunn pairs per metric")
    print(f"{'Metric':10s} {'All':>6s} {'Same-cat':>9s} {'Cross-cat':>10s}")
    for metric in METRICS:
        overall = report.significant_pair_fraction(metric)
        same = report.pair_fraction_by_category(metric, same_category=True)
        cross = report.pair_fraction_by_category(metric, same_category=False)
        print(f"{metric:10s} {overall:6.1%} {same:9.1%} {cross:10.1%}")

    # Shape: differences across categories dominate differences within.
    cross_acc = report.pair_fraction_by_category("accuracy", False)
    same_acc = report.pair_fraction_by_category("accuracy", True)
    assert cross_acc > same_acc
    # A non-trivial share of pairs differs overall.
    assert report.significant_pair_fraction("accuracy") > 0.1
