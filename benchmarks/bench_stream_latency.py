"""Streaming detection: event pipeline vs the seed poll loop.

Not a paper artifact — this is the ROADMAP's "keep up with the chain
head" check for the `repro.stream` subsystem. The same historical
campaign (every deployment on the corpus chain, clones included) is
scored three ways:

* **seed poll loop** — the seed `LiveDetector.poll` behavior, inlined:
  walk all accounts, score each with a per-contract `predict_proba`
  call, and (as the seed did) find each alert's creation transaction by
  scanning the transaction list,
* **stream cold** — `TimelineReplayer` → `StreamScanner` (micro-batches,
  sharded workers) with an empty prediction cache,
* **stream warm** — the same replay again through fresh scanner state but
  a warm content-addressed cache (steady-state monitoring).

Prints one machine-readable JSON summary line (`STREAM_LATENCY {...}`)
with events/sec and p50/p95/p99 per-event scan latency per mode. Shape
assertions: all three modes flag the identical alert set with identical
probabilities, and warm streaming throughput must be ≥ 5× the seed loop.
"""

import json
import time

from benchmarks.conftest import SEED, run_once
from repro.serve.service import ScanService
from repro.stream import StreamScanner, TimelineReplayer

#: Alert threshold shared by every mode.
THRESHOLD = 0.5

#: Sharded workers in the streaming modes.
SHARDS = 4

#: Micro-batch flush threshold.
MAX_BATCH = 32


def seed_poll_loop(chain, model, threshold=THRESHOLD):
    """The seed `LiveDetector.poll`, reproduced: per-contract scoring and
    an O(transactions) linear scan to locate each alert's transaction."""
    alerts = []
    latencies = []
    for account in chain.accounts():
        if not account.code:
            continue
        started = time.perf_counter()
        probability = float(model.predict_proba([account.code])[0, 1])
        latencies.append(time.perf_counter() - started)
        if probability >= threshold:
            transaction = next(
                (
                    t for t in chain.transactions()
                    if t.contract_address == account.address
                ),
                None,
            )
            alerts.append(
                (account.address, probability,
                 transaction.block_number if transaction else 0)
            )
    return alerts, latencies


def percentiles(latencies):
    import numpy as np

    p50, p95, p99 = np.percentile(latencies, [50, 95, 99])
    return {"p50": float(p50), "p95": float(p95), "p99": float(p99)}


def stream_pass(service, chain):
    scanner = StreamScanner(
        service.sharded(1)[0],
        shards=SHARDS,
        max_batch=MAX_BATCH,
        max_queue=max(MAX_BATCH * 4, 256),
        threshold=THRESHOLD,
    )
    report = TimelineReplayer(scanner).replay_chain(chain)
    return report


def test_stream_latency(benchmark, corpus, dataset):
    service = ScanService(
        "Random Forest", train_dataset=dataset, seed=SEED,
        threshold=THRESHOLD,
    )
    model = service.model  # fit once; shared by every mode

    def run():
        summary = {"campaign_events": len(corpus.chain)}

        started = time.perf_counter()
        seed_alerts, seed_latencies = seed_poll_loop(corpus.chain, model)
        seed_seconds = time.perf_counter() - started
        summary["seed_poll_loop"] = {
            "events": len(seed_latencies),
            "seconds": seed_seconds,
            "events_per_sec": len(seed_latencies) / seed_seconds,
            "latency_seconds": percentiles(seed_latencies),
        }

        cold = stream_pass(service, corpus.chain)
        summary["stream_cold"] = {
            "events": cold.events,
            "seconds": cold.duration_seconds,
            "events_per_sec": cold.events_per_second,
            "batches": cold.batches,
            "latency_seconds": cold.latency_seconds,
        }

        warm = stream_pass(service, corpus.chain)
        summary["stream_warm"] = {
            "events": warm.events,
            "seconds": warm.duration_seconds,
            "events_per_sec": warm.events_per_second,
            "batches": warm.batches,
            "latency_seconds": warm.latency_seconds,
        }
        summary["cache"] = service.stats()
        return summary, seed_alerts, cold, warm

    summary, seed_alerts, cold, warm = run_once(benchmark, run)

    # Identical alert sets — addresses, probabilities and block numbers —
    # across the seed loop and both streaming passes.
    seed_set = {(a, p, b) for a, p, b in seed_alerts}
    cold_set = {
        (a.address, a.probability, a.block_number) for a in cold.alerts
    }
    warm_set = {
        (a.address, a.probability, a.block_number) for a in warm.alerts
    }
    assert cold_set == seed_set
    assert warm_set == seed_set
    assert all(alert.from_cache for alert in warm.alerts)

    rate = {
        mode: summary[mode]["events_per_sec"]
        for mode in ("seed_poll_loop", "stream_cold", "stream_warm")
    }
    summary["speedup_warm_vs_seed_poll"] = (
        rate["stream_warm"] / rate["seed_poll_loop"]
    )
    summary["speedup_cold_vs_seed_poll"] = (
        rate["stream_cold"] / rate["seed_poll_loop"]
    )
    print("\nSTREAM_LATENCY " + json.dumps(summary, sort_keys=True))
    for mode in ("seed_poll_loop", "stream_cold", "stream_warm"):
        latency = summary[mode]["latency_seconds"]
        print(f"{mode:15s} {rate[mode]:10.1f} events/s   "
              f"p50 {latency['p50'] * 1e3:7.3f}ms  "
              f"p95 {latency['p95'] * 1e3:7.3f}ms  "
              f"p99 {latency['p99'] * 1e3:7.3f}ms")

    # Acceptance: warm-cache streaming ≥ 5× the seed poll loop.
    assert summary["speedup_warm_vs_seed_poll"] >= 5.0
