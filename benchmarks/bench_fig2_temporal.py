"""Fig. 2 — phishing contracts per month (obtained vs unique).

Paper shape: 13 months (Oct 2023 – Oct 2024), a pronounced mid-study bulge,
and a ≈5× obtained-to-unique duplication driven by minimal-proxy clones
(17,455 obtained → 3,458 unique at paper scale).
"""

import numpy as np

from repro.chain.timeline import MONTHS
from repro.datagen.corpus import PHISHING_MONTHLY_PROFILE, CorpusConfig, build_corpus

from benchmarks.conftest import N_CONTRACTS, SEED, run_once


def test_fig2_temporal_distribution(benchmark):
    corpus = run_once(
        benchmark,
        lambda: build_corpus(
            CorpusConfig(
                n_phishing=N_CONTRACTS // 2,
                n_benign=N_CONTRACTS // 2,
                seed=SEED,
            )
        ),
    )
    obtained = corpus.monthly_counts(label=1)
    unique = corpus.monthly_counts(label=1, unique=True)

    print("\nFig. 2 — phishing contracts per month")
    print(f"{'Month':8s} {'Obtained':>9s} {'Unique':>7s}")
    for label, got, uniq in zip(MONTHS, obtained, unique):
        print(f"{label:8s} {got:9d} {uniq:7d}")
    ratio = obtained.sum() / unique.sum()
    print(f"{'total':8s} {obtained.sum():9d} {unique.sum():7d}   "
          f"(obtained/unique = {ratio:.2f}; paper: 17455/3458 = 5.05)")

    # Shape assertions. A proxied base adds two unique bytecodes at once,
    # so the builder may overshoot the target by one.
    assert N_CONTRACTS // 2 <= unique.sum() <= N_CONTRACTS // 2 + 1
    assert ratio > 2.0, "proxy duplication should be substantial"
    # The mid-study bulge: months 4-9 dominate the first two months.
    assert obtained[4:10].sum() > 5 * max(obtained[:2].sum(), 1)
    # Monthly profile correlates with the paper's curve. Unique counts
    # track it tightly; obtained counts are burstier (a single proxied
    # base adds a clone burst to one month), so the bar is lower there.
    profile = np.asarray(PHISHING_MONTHLY_PROFILE, dtype=float)
    unique_correlation = np.corrcoef(unique, profile)[0, 1]
    obtained_correlation = np.corrcoef(obtained, profile)[0, 1]
    print(f"correlation with paper profile: unique={unique_correlation:.3f} "
          f"obtained={obtained_correlation:.3f}")
    assert unique_correlation > 0.8
    assert obtained_correlation > 0.5
