"""Fig. 8 — time-resistance: train Oct 2023 – Jan 2024, test 9 months.

Paper shape: all three best-per-category models stay usable over the nine
test months with only mild decay (evolving attack patterns); Random Forest
is the most stable (AUT 0.89), then SCSGuard (0.84), then
ECA+EfficientNet (0.79, more fluctuation).
"""

from repro.analysis.timeeval import time_decay_evaluation
from repro.core.registry import create_model

from benchmarks.conftest import SEED, run_once

MODELS = ("Random Forest", "ECA+EfficientNet", "SCSGuard")


def test_fig8_time_resistance(benchmark, temporal_dataset):
    results = run_once(
        benchmark,
        lambda: time_decay_evaluation(
            temporal_dataset,
            create_model,
            list(MODELS),
            train_months=(0, 1, 2, 3),
            seed=SEED,
        ),
    )
    by_model = {r.model: r for r in results}

    print("\nFig. 8 — F1 over the test months (train: 2023-10..2024-01)")
    months = by_model["Random Forest"].months
    print(f"{'Model':18s}" + "".join(f" m{m:<4d}" for m in months) + "  AUT")
    for model in MODELS:
        series = by_model[model].series("f1")
        print(f"{model:18s}"
              + "".join(f" {v:5.2f}" for v in series)
              + f"  {by_model[model].aut_f1:.2f}")

    # Shape assertions. Floors are per model: the VM trains from scratch
    # on the small Oct–Jan window and sits lower than the paper's
    # pretrained variant (EXPERIMENTS.md).
    floors = {"Random Forest": 0.70, "SCSGuard": 0.55,
              "ECA+EfficientNet": 0.42}
    rf_aut = by_model["Random Forest"].aut_f1
    for model in MODELS:
        aut = by_model[model].aut_f1
        assert aut > floors[model], f"{model}: AUT {aut:.2f} too low"
        # Random Forest is the most stable model.
        assert rf_aut >= aut - 0.02, f"RF should lead, {model} has {aut:.2f}"
    # Mild decay, not collapse: last-month F1 stays within 0.35 of the
    # first test month for the HSC.
    rf_series = by_model["Random Forest"].series("f1")
    assert rf_series[-1] > rf_series[0] - 0.35
