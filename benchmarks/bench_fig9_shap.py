"""Fig. 9 — SHAP values of the best classifier (HSC / Random Forest).

Paper shape: the 20 most influential opcodes include call-plumbing opcodes
(RETURNDATASIZE, GAS, STATICCALL, …); low GAS usage pushes predictions
toward phishing. Attributions satisfy local accuracy by construction.
"""

import numpy as np

from repro.analysis.shap_values import top_influential_features, tree_shap_values
from repro.features.histogram import OpcodeHistogramExtractor
from repro.ml.forest import RandomForestClassifier

from benchmarks.conftest import SEED, run_once


def test_fig9_shap_values(benchmark, dataset):
    folds = dataset.stratified_kfold(3, seed=SEED)
    train_idx, test_idx = folds[0]
    train, test = dataset.subset(train_idx), dataset.subset(test_idx)

    extractor = OpcodeHistogramExtractor().fit(train.bytecodes)
    X_train = extractor.transform(train.bytecodes)
    X_test = extractor.transform(test.bytecodes)
    forest = RandomForestClassifier(
        n_estimators=40, max_depth=8, random_state=SEED
    ).fit(X_train, train.labels)

    explain = min(len(X_test), 120)

    def compute():
        return tree_shap_values(forest, X_test[:explain])

    values, base = run_once(benchmark, compute)
    names = extractor.feature_names
    top = top_influential_features(values, names, k=20)

    print(f"\nFig. 9 — top-20 opcodes by mean |SHAP| "
          f"(test fold, {explain} samples, base={base:.3f})")
    importance = np.abs(values).mean(axis=0)
    order = np.argsort(importance)[::-1][:20]
    for rank, index in enumerate(order, 1):
        mean_signed = values[:, index].mean()
        print(f"{rank:2d}. {names[index]:16s} mean|φ|={importance[index]:.4f} "
              f"mean φ={mean_signed:+.4f}")

    # Local accuracy: base + Σφ = P(phishing).
    reconstruction = base + values.sum(axis=1)
    predictions = forest.predict_proba(X_test[:explain])[:, 1]
    np.testing.assert_allclose(reconstruction, predictions, atol=1e-9)

    # Call-plumbing opcodes appear among the influential features, as in
    # the paper's figure.
    call_related = {
        "CALL", "STATICCALL", "DELEGATECALL", "GAS",
        "RETURNDATASIZE", "RETURNDATACOPY", "SELFBALANCE",
    }
    assert call_related & set(top), f"no call-related opcode in top-20: {top}"
    # The attributions are non-degenerate.
    assert importance[order[0]] > 0.001
