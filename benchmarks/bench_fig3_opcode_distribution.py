"""Fig. 3 — per-opcode usage distribution, benign vs phishing.

Paper shape: across the 20 most influential opcodes, phishing contracts use
opcodes at rates similar to benign ones — no single opcode's frequency
separates the classes (hence the need for learned classifiers).
"""

import numpy as np

from repro.core.bdm import BytecodeDisassemblerModule

from benchmarks.conftest import run_once

#: The 20 opcodes Fig. 3 plots (its x-axis, from the Fig. 9 ranking).
FIG3_OPCODES = (
    "RETURNDATASIZE", "RETURNDATACOPY", "GAS", "OR", "ADDRESS",
    "STATICCALL", "LT", "SHL", "LOG3", "RETURN", "PUSH1", "SWAP3",
    "REVERT", "MLOAD", "CALLDATALOAD", "POP", "ISZERO", "SELFBALANCE",
    "MSTORE", "AND",
)


def test_fig3_opcode_usage_overlap(benchmark, dataset):
    bdm = BytecodeDisassemblerModule()

    def compute():
        benign_codes = [
            code for code, label in zip(dataset.bytecodes, dataset.labels)
            if label == 0
        ]
        phishing_codes = [
            code for code, label in zip(dataset.bytecodes, dataset.labels)
            if label == 1
        ]
        return (
            bdm.opcode_usage(benign_codes),
            bdm.opcode_usage(phishing_codes),
        )

    benign_usage, phishing_usage = run_once(benchmark, compute)

    print("\nFig. 3 — median opcode usage per contract (benign vs phishing)")
    print(f"{'Opcode':16s} {'Benign':>7s} {'Phishing':>9s}")
    overlapping = 0
    plotted = 0
    for opcode in FIG3_OPCODES:
        benign_counts = np.asarray(benign_usage.get(opcode, [0]))
        phishing_counts = np.asarray(phishing_usage.get(opcode, [0]))
        benign_median = float(np.median(benign_counts))
        phishing_median = float(np.median(phishing_counts))
        print(f"{opcode:16s} {benign_median:7.1f} {phishing_median:9.1f}")
        plotted += 1
        # "Similar rate": distribution supports overlap — the upper
        # quartile of one class exceeds the lower quartile of the other.
        if (
            np.quantile(phishing_counts, 0.75) >= np.quantile(benign_counts, 0.25)
            and np.quantile(benign_counts, 0.75) >= np.quantile(phishing_counts, 0.25)
        ):
            overlapping += 1

    fraction = overlapping / plotted
    print(f"opcodes with overlapping IQRs: {overlapping}/{plotted} "
          f"({fraction:.0%})")
    # Paper take-away: single-opcode frequency is unreliable as a filter.
    assert fraction >= 0.7
