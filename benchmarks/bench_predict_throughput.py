"""Ensemble predict throughput: flat inference engine vs per-row traversal.

Not a paper artifact — this is the ROADMAP's "as fast as the hardware
allows" check for the model layer. Three claims are measured and asserted:

* **flat vs reference** — `RandomForestClassifier.predict_proba` (stacked
  node arrays + level-synchronous descent) against the seed per-row,
  per-tree Python traversal: ≥ 10× throughput, **bit-identical**
  probabilities,
* **float32 kernel** — the compact float32 descent (depth-sorted trees,
  flat linear-index gathers) over the float64 flat path: ≥ 1.5×, with
  **zero label flips** and divergence within the accuracy gate,
* **GBDT path** — the stacked booster `decision_function` is bit-identical
  to the sequential per-tree reference,
* **parallel fit** — `n_jobs=2` training reproduces the serial forest
  exactly (same master seed → same trees, array for array).

Prints one machine-readable JSON summary line (`PREDICT_THROUGHPUT {...}`)
with rows/sec per mode.

Scale knobs (environment):

* ``PHOOK_BENCH_PREDICT_ROWS`` — predict-batch rows (default 4000),
* ``PHOOK_BENCH_PREDICT_TREES`` — forest size (default 60),
* ``PHOOK_BENCH_SMOKE`` — set to 1 in CI smoke runs: keeps every
  bit-identity assertion but drops the 10× wall-clock floor to 1× (tiny
  configs measure overhead, not throughput).
"""

import json
import os
import time

import numpy as np

from benchmarks.conftest import env_int, run_once
from repro.ml.flat import reference_apply
from repro.ml.forest import RandomForestClassifier
from repro.ml.gbdt import XGBoostClassifier
from repro.ml.tree import apply_per_row

PREDICT_ROWS = env_int("PHOOK_BENCH_PREDICT_ROWS", 4000)
N_TREES = env_int("PHOOK_BENCH_PREDICT_TREES", 60)
SMOKE = bool(int(os.environ.get("PHOOK_BENCH_SMOKE", "0")))

N_TRAIN = 600
N_FEATURES = 24
MIN_SPEEDUP = 1.0 if SMOKE else 10.0
#: Compact float32 kernel over the float64 flat path. Tiny smoke
#: forests measure overhead, not bandwidth — gate only at full scale.
MIN_F32_SPEEDUP = 0.5 if SMOKE else 1.5


def _problem(seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(N_TRAIN, N_FEATURES))
    y = (X[:, 0] + 0.5 * X[:, 3] + 0.4 * rng.normal(size=N_TRAIN) > 0).astype(int)
    batch = rng.normal(size=(PREDICT_ROWS, N_FEATURES))
    return X, y, batch


def _seed_predict_proba(forest, X):
    """The seed path: per-row traversal of every tree, sequential sum."""
    probabilities = np.zeros((len(X), 2))
    for tree in forest.trees_:
        probabilities += tree.value_[apply_per_row(tree, X)]
    return probabilities / len(forest.trees_)


def test_predict_throughput(benchmark):
    X, y, batch = _problem()
    forest = RandomForestClassifier(n_estimators=N_TREES, random_state=0).fit(X, y)
    forest.compile_flat()  # pay compilation outside the timed region

    def run():
        started = time.perf_counter()
        reference = _seed_predict_proba(forest, batch)
        reference_seconds = time.perf_counter() - started

        started = time.perf_counter()
        flat = forest.predict_proba(batch)
        flat_seconds = time.perf_counter() - started

        # Compact float32 kernel, installed through the accuracy gate
        # against the same flat ensemble; revert afterwards so the
        # float64 numbers above stay the kernel-free reference.
        flat_ensemble = forest.compile_flat()
        report = flat_ensemble.use_kernel("float32", X_eval=batch)
        f32_installed = report.active == "float32"
        started = time.perf_counter()
        f32 = forest.predict_proba(batch)
        f32_seconds = time.perf_counter() - started
        f32_flips = int(np.count_nonzero(
            (flat[:, -1] >= 0.5) != (f32[:, -1] >= 0.5)
        ))
        flat_ensemble.use_kernel("float64")

        # Parallel fit must reproduce the serial forest exactly.
        serial = RandomForestClassifier(n_estimators=8, random_state=3).fit(X, y)
        parallel = RandomForestClassifier(
            n_estimators=8, random_state=3, n_jobs=2
        ).fit(X, y)
        parallel_identical = all(
            np.array_equal(a.children_left_, b.children_left_)
            and np.array_equal(a.threshold_, b.threshold_)
            and np.array_equal(a.value_, b.value_)
            for a, b in zip(serial.trees_, parallel.trees_)
        ) and np.array_equal(
            serial.predict_proba(batch), parallel.predict_proba(batch)
        )

        # GBDT: stacked-booster descent vs sequential per-tree reference.
        booster = XGBoostClassifier(n_estimators=10, max_depth=3).fit(X, y)
        raw = np.full(len(batch), booster.base_score_)
        for tree in booster.trees_:
            leaves = reference_apply(
                batch, tree.lefts, tree.rights, tree.features, tree.thresholds
            )
            raw += booster.learning_rate * tree.weights[leaves]
        gbdt_identical = np.array_equal(booster.decision_function(batch), raw)

        return {
            "rows": PREDICT_ROWS,
            "trees": N_TREES,
            "reference_rows_per_second": PREDICT_ROWS / reference_seconds,
            "flat_rows_per_second": PREDICT_ROWS / flat_seconds,
            "speedup": reference_seconds / flat_seconds,
            "f32_rows_per_second": PREDICT_ROWS / f32_seconds,
            "f32": flat_seconds / f32_seconds,
            "f32_installed": f32_installed,
            "f32_divergence": report.max_divergence,
            "f32_label_flips": f32_flips,
            "bit_identical": bool(np.array_equal(reference, flat)),
            "parallel_fit_identical": bool(parallel_identical),
            "gbdt_identical": bool(gbdt_identical),
            "smoke": SMOKE,
        }

    summary = run_once(benchmark, run)
    print(f"\nPREDICT_THROUGHPUT {json.dumps(summary)}")

    assert summary["bit_identical"], (
        "flat engine diverged from the per-row reference traversal"
    )
    assert summary["parallel_fit_identical"], (
        "parallel forest fit is not bit-identical to the serial fit"
    )
    assert summary["gbdt_identical"], (
        "stacked GBDT descent diverged from the per-tree reference"
    )
    assert summary["speedup"] >= MIN_SPEEDUP, (
        f"flat predict speedup {summary['speedup']:.1f}× "
        f"below the {MIN_SPEEDUP:.0f}× floor"
    )
    assert summary["f32_installed"], (
        "float32 kernel failed its accuracy gate: "
        f"divergence {summary['f32_divergence']:.3g}"
    )
    assert summary["f32_label_flips"] == 0, (
        f"float32 kernel flipped {summary['f32_label_flips']} labels"
    )
    assert summary["f32"] >= MIN_F32_SPEEDUP, (
        f"float32 kernel speedup {summary['f32']:.2f}× over float64 "
        f"below the {MIN_F32_SPEEDUP:.1f}× floor"
    )
