"""Extension — probability calibration for the deployment scenario (§V).

The live-deployment story consumes phishing *probabilities* (a wallet may
warn at p≈0.6 and block at p≈0.95), which requires calibrated scores. The
bench measures the Random Forest's reliability (ECE/Brier) on held-out
data, repairs it with temperature scaling fitted on a calibration split,
and reports the threshold-free quality of the scores (ROC AUC and the
highest-recall operating point at ≥95% precision).
"""

import numpy as np

from repro.analysis.calibration import (
    TemperatureScaler,
    brier_score,
    expected_calibration_error,
)
from repro.ml.curves import operating_point_at_precision, roc_auc_score
from repro.models.hsc import HSCDetector

from benchmarks.conftest import SEED, run_once


def test_ext_calibration(benchmark, dataset):
    train, test = dataset.train_test_split(0.4, seed=SEED)
    labels = np.asarray(test.labels)

    def run():
        detector = HSCDetector(variant="Random Forest", seed=SEED)
        detector.set_params(clf__n_estimators=80)
        detector.fit(train.bytecodes, train.labels)
        probabilities = detector.predict_proba(test.bytecodes)[:, 1]

        half = labels.size // 2
        scaler = TemperatureScaler().fit(probabilities[:half], labels[:half])
        held_probs = probabilities[half:]
        held_labels = labels[half:]
        return {
            "temperature": scaler.temperature_,
            "ece_raw": expected_calibration_error(held_labels, held_probs),
            "ece_scaled": expected_calibration_error(
                held_labels, scaler.transform(held_probs)
            ),
            "brier_raw": brier_score(held_labels, held_probs),
            "auc": roc_auc_score(labels, probabilities),
            "operating_point": operating_point_at_precision(
                labels, probabilities, min_precision=0.95
            ),
        }

    results = run_once(benchmark, run)

    print("\nExtension — probability calibration (Random Forest)")
    print(f"temperature     = {results['temperature']:.3f}")
    print(f"ECE raw/scaled  = {results['ece_raw']:.4f} / "
          f"{results['ece_scaled']:.4f}")
    print(f"Brier raw       = {results['brier_raw']:.4f}")
    print(f"ROC AUC         = {results['auc']:.4f}")
    point = results["operating_point"]
    if point is not None:
        print("highest recall at >=95% precision: "
              f"recall={point.recall:.3f} @ threshold={point.threshold:.3f}")

    # The scores must rank well (far above chance) ...
    assert results["auc"] > 0.85
    # ... and be reasonably calibrated out of the box for a bagged forest,
    # with temperature scaling not making things catastrophically worse
    # (it can add noise on a small calibration split).
    assert results["ece_raw"] < 0.30
    assert results["ece_scaled"] < results["ece_raw"] + 0.10
    # A >=95%-precision operating point exists for a strong model.
    assert point is not None
