"""Fig. 5 — scalability: best model per category at 1/3, 2/3, full data.

Paper shape: Random Forest is the most accurate at every split and remains
stable; SCSGuard (LM) and ECA+EfficientNet (VM) improve more as data grows
— complex models scale better.
"""

import numpy as np

from repro.core.mem import ModelEvaluationModule
from repro.core.registry import create_model

from benchmarks.conftest import SEED, run_once

SPLIT_RATIOS = (1 / 3, 2 / 3, 1.0)
SCALABILITY_MODELS = ("Random Forest", "ECA+EfficientNet", "SCSGuard")

_CACHE: dict = {}


def evaluate_scalability(dataset):
    """Per-split single-train/test evaluation of the three best models."""
    if "results" in _CACHE:
        return _CACHE["results"]
    mem = ModelEvaluationModule(n_folds=2, n_runs=1, seed=SEED)
    results = {}
    for ratio in SPLIT_RATIOS:
        subset = dataset.split_fraction(ratio, seed=SEED)
        train, test = subset.train_test_split(0.25, seed=SEED)
        results[ratio] = mem.evaluate_single_split(
            train, test, list(SCALABILITY_MODELS), model_factory=create_model
        )
    _CACHE["results"] = results
    return results


def test_fig5_scalability(benchmark, dataset):
    results = run_once(benchmark, lambda: evaluate_scalability(dataset))

    print("\nFig. 5 — accuracy per data split")
    print(f"{'Model':18s}" + "".join(f" {r:>6.2f}" for r in SPLIT_RATIOS))
    accuracy: dict[str, list[float]] = {}
    for model in SCALABILITY_MODELS:
        series = [
            results[ratio].mean_metrics(model).accuracy
            for ratio in SPLIT_RATIOS
        ]
        accuracy[model] = series
        print(f"{model:18s}" + "".join(f" {v:6.3f}" for v in series))

    # Random Forest is the most accurate model at every split.
    for index, ratio in enumerate(SPLIT_RATIOS):
        rf = accuracy["Random Forest"][index]
        assert all(
            rf >= accuracy[other][index] - 0.02
            for other in SCALABILITY_MODELS
        ), f"Random Forest should lead at split {ratio:.2f}"

    # Random Forest is stable: spread across splits stays small.
    rf_series = accuracy["Random Forest"]
    assert max(rf_series) - min(rf_series) < 0.15

    # Deep models benefit from more data (full ≥ one-third − noise).
    # The LM trend is robust; the VM fluctuates (as in the paper's Fig. 5,
    # where ECA+EfficientNet is the least stable curve).
    assert accuracy["SCSGuard"][2] >= accuracy["SCSGuard"][0] - 0.05
    assert accuracy["ECA+EfficientNet"][2] >= accuracy["ECA+EfficientNet"][0] - 0.2
