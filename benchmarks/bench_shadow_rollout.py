"""Shadow rollout: overhead of candidate shadow scoring + safe promotion.

The rollout subsystem's two promises, measured on the replayed campaign
stream (:mod:`repro.rollout`, docs/operations.md):

* **bounded overhead** — replaying the campaign with a candidate
  shadow-scoring every micro-batch costs ≤ ``MAX_OVERHEAD`` × the
  single-model replay. The shared :class:`FeatureCache` is what makes
  this hold: features are extracted once per unique bytecode no matter
  how many models score it, so the candidate adds roughly one
  ``predict_proba`` — not a second feature pipeline.
* **zero-drop promotion** — a parity candidate promoted mid-stream
  swaps every shard with nothing dropped and nothing mis-scored: every
  event is scored exactly once, by whichever version was production at
  that moment (never a mixture, never neither), and traffic after the
  promotion scores bit-identically to the candidate model's own
  ``predict_proba``.

Prints one machine-readable JSON summary line (``SHADOW_ROLLOUT {...}``).

Scale knobs (environment):

* ``PHOOK_N_CONTRACTS`` — corpus size (default 240),
* ``PHOOK_BENCH_SHADOW_TREES`` — forest size (default 60),
* ``PHOOK_BENCH_SMOKE`` — CI smoke mode: the wall-clock overhead factor
  is asserted loosely (tiny runs are timer-noise dominated) but every
  zero-drop / bit-identity assertion stays strict.
"""

import json
import os
import time

from benchmarks.conftest import SEED, env_int, run_once
from repro.artifacts import ModelStore
from repro.models.hsc import HSCDetector
from repro.rollout import MetricParityPolicy, ShadowRollout
from repro.stream.events import ContractEvent
from repro.stream.scanner import StreamScanner

SMOKE = bool(int(os.environ.get("PHOOK_BENCH_SMOKE", "0")))
N_TREES = env_int("PHOOK_BENCH_SHADOW_TREES", 60)
MAX_OVERHEAD = 4.0 if SMOKE else 2.0
SHARDS = 2


def _fit_forest(dataset, seed):
    model = HSCDetector(variant="Random Forest", seed=seed)
    model.set_params(clf__n_estimators=N_TREES)
    model.fit(dataset.bytecodes, dataset.labels)
    return model


def _events(chain, start=0):
    return [
        ContractEvent(
            address=f"0x{start + index:040x}", code=account.code,
            block_number=index, timestamp=account.deployed_at,
            tx_hash=f"0x{index:064x}", sequence=index,
        )
        for index, account in enumerate(chain.accounts())
    ]


def _replay(scanner, events):
    started = time.perf_counter()
    for event in events:
        scanner.on_event(event)
    scanner.flush()
    return time.perf_counter() - started


def test_shadow_rollout(benchmark, corpus, dataset, tmp_path):
    def run():
        production = _fit_forest(dataset, seed=SEED)
        candidate = _fit_forest(dataset, seed=SEED + 1)
        store = ModelStore(tmp_path / "store")
        prod_version = store.put(
            production, model_name="Random Forest", tags=("production",)
        )
        cand_version = store.put(
            candidate, model_name="Random Forest", tags=("candidate",)
        )
        events = _events(corpus.chain)
        codes = [event.code for event in events]
        by_production = production.predict_proba(codes)[:, 1]
        by_candidate = candidate.predict_proba(codes)[:, 1]

        # Baseline: single-model stream replay against a cold private
        # cache — the fair denominator is features + one predict.
        plain = StreamScanner.from_artifact(
            "production", store=store, shards=SHARDS, max_batch=16,
        )
        plain_seconds = _replay(plain, _events(corpus.chain, start=10 ** 6))
        plain_scanned = plain.stats.scanned

        # Shadow mode: same stream against its own cold cache, with the
        # candidate scoring every shard micro-batch. Because both models
        # share that cache, the numerator is features + two predicts —
        # the ≤ 2× claim is exactly "the candidate adds at most one more
        # model pass, never a second feature pipeline". The evidence
        # floor is set unreachably high so the whole replay stays in
        # shadow.
        shadowed = StreamScanner.from_artifact(
            "production", store=store, shards=SHARDS, max_batch=16,
        )
        rollout = ShadowRollout(
            shadowed, "candidate", store=store,
            policy=MetricParityPolicy(min_events=10 ** 9),
        )
        shadow_seconds = _replay(shadowed, _events(corpus.chain, start=2 * 10 ** 6))
        comparison = rollout.comparison.as_dict()
        rollout.abort("benchmark: overhead phase complete")
        assert store.tags()["production"] == prod_version  # abort touches nothing

        # Promotion safety: a fresh stream where the parity policy fires
        # mid-replay. Every event must be scored exactly once, by the
        # model that was production at that moment, with zero drops.
        promoting = StreamScanner.from_artifact(
            "production", store=store, shards=SHARDS, max_batch=16,
            threshold=0.0,  # alert on everything: full score audit
        )
        promotion = ShadowRollout(
            promoting, "candidate", store=store,
            policy=MetricParityPolicy(
                min_events=max(16, plain_scanned // 4),
                promote_agreement=0.0, abort_agreement=0.0,
                max_mean_divergence=1.0,
            ),
        )
        promote_events = _events(corpus.chain, start=3 * 10 ** 6)
        _replay(promoting, promote_events)
        scored = {
            alert.address: alert.probability for alert in promoting.alerts
        }
        consistent = all(
            scored[event.address] in (by_production[i], by_candidate[i])
            for i, event in enumerate(promote_events)
        )
        switched = sum(
            scored[event.address] == by_candidate[i]
            and by_candidate[i] != by_production[i]
            for i, event in enumerate(promote_events)
        )

        # Post-promotion traffic is bit-identical to the candidate.
        post_events = _events(corpus.chain, start=4 * 10 ** 6)
        promoting.alerts.clear()
        _replay(promoting, post_events)
        post_scored = {
            alert.address: alert.probability for alert in promoting.alerts
        }
        post_identical = all(
            post_scored[event.address] == by_candidate[i]
            for i, event in enumerate(post_events)
        )

        return {
            "contracts": len(dataset),
            "campaign_events": len(events),
            "trees": N_TREES,
            "shards": SHARDS,
            "plain_seconds": plain_seconds,
            "shadow_seconds": shadow_seconds,
            "overhead": shadow_seconds / plain_seconds,
            "agreement_rate": comparison["agreement_rate"],
            "mean_divergence": comparison["mean_divergence"],
            "shadow_latency_overhead": comparison["latency_overhead"],
            "promoted": promotion.state == "promoted",
            "promoted_version": promotion.candidate_version == cand_version,
            "promote_dropped": promoting.stats.dropped,
            "promote_scanned": promoting.stats.scanned,
            "promote_expected": len(promote_events) + len(post_events),
            "scores_consistent": bool(consistent),
            "scores_switched": int(switched),
            "post_promotion_identical": bool(post_identical),
            "smoke": SMOKE,
        }

    summary = run_once(benchmark, run)
    print(f"\nSHADOW_ROLLOUT {json.dumps(summary)}")

    assert summary["promoted"], "parity candidate was not promoted"
    assert summary["promoted_version"], "promotion picked the wrong version"
    assert summary["promote_dropped"] == 0, (
        "promotion dropped stream batches"
    )
    assert summary["promote_scanned"] == summary["promote_expected"], (
        "promotion lost or duplicated events"
    )
    assert summary["scores_consistent"], (
        "an event was scored by neither production nor candidate"
    )
    assert summary["post_promotion_identical"], (
        "post-promotion scores diverge from the candidate model"
    )
    assert summary["overhead"] <= MAX_OVERHEAD, (
        f"shadow-mode replay cost {summary['overhead']:.2f}x the "
        f"single-model replay (budget {MAX_OVERHEAD:.1f}x)"
    )
