"""Extension — active evasion and adversarial retraining.

Beyond the paper's passive time-resistance study (§IV-G): an attacker who
knows the detector reads opcode statistics pads their phishing bytecode
with unreachable bytes drawn from the *benign* byte distribution
(mimicry). Three claims are checked:

1. mimicry padding at ~1x the contract length substantially cuts the
   clean-trained Random Forest's recall on attacked phishing samples,
2. precision on (untouched) benign traffic is unaffected — this attacker
   cannot create false positives,
3. adversarial retraining (augmenting the training set with attacked
   phishing copies) recovers most of the lost recall.
"""

import numpy as np

from repro.models.hsc import HSCDetector
from repro.robustness.attacks import (
    mimicry_padding,
    opcode_byte_distribution,
)
from repro.robustness.evaluate import (
    adversarial_retraining,
    evaluate_under_attack,
)

from benchmarks.conftest import SEED, run_once

STRENGTHS = (0.0, 0.5, 1.0, 2.0)


def _rf_factory():
    detector = HSCDetector(variant="Random Forest", seed=SEED)
    detector.set_params(clf__n_estimators=80)
    return detector


def test_ext_adversarial_evasion(benchmark, dataset):
    train, test = dataset.train_test_split(0.3, seed=SEED)
    benign_codes = [
        code for code, label in zip(train.bytecodes, train.labels)
        if label == 0
    ]
    distribution = opcode_byte_distribution(benign_codes)

    def attack(bytecode, rng, strength):
        return mimicry_padding(
            bytecode, rng, int(strength * len(bytecode)), distribution
        )

    def run():
        sweep = evaluate_under_attack(
            _rf_factory(),
            train.bytecodes, train.labels,
            test.bytecodes, test.labels,
            attack,
            strengths=STRENGTHS,
            attack_name="benign-mimicry",
            seed=SEED,
        )
        retrained = adversarial_retraining(
            _rf_factory,
            train.bytecodes, train.labels,
            test.bytecodes, test.labels,
            attack,
            strength=1.0,
            seed=SEED,
        )
        return sweep, retrained

    sweep, retrained = run_once(benchmark, run)

    print("\nExtension — adversarial evasion (benign-mimicry padding)")
    print(sweep.table())
    print(
        "retraining at strength 1.0: "
        f"clean-trained recall = {retrained['clean_model'].recall:.3f}, "
        f"hardened recall = {retrained['hardened_model'].recall:.3f}"
    )

    # Claim 1: the attack works — recall drops by at least 10 points at
    # the sweet-spot strength (its index in STRENGTHS is 2).
    assert sweep.clean_recall - sweep.recalls[2] > 0.10
    # Claim 2: precision never collapses — benign traffic is untouched,
    # so false positives cannot increase (precision can only move through
    # true-positive loss).
    for metric in sweep.metrics:
        assert metric.precision >= sweep.metrics[0].precision - 0.10
    # Claim 3: hardening recovers recall.
    assert (
        retrained["hardened_model"].recall
        > retrained["clean_model"].recall + 0.05
    )
