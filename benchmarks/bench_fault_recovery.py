"""Fault recovery: time-to-recover and tail latency through a respawn.

Not a paper artifact — this is the ROADMAP's "self-healing fleet"
check. A supervised 2-worker fleet serves a continuous scan load; one
worker is SIGKILLed mid-stream and the benchmark measures:

* **recovery** — seconds from the kill until the supervisor has the
  worker respawned, re-serving and marked alive again (heartbeat
  detection + backoff + spawn cold-start, end to end),
* **p99 during respawn** — client-observed batch latency while the
  fleet is down a worker and traffic reroutes to the survivor,
  against the steady-state p99 measured first.

Prints one machine-readable JSON summary line (``FLEET {...}``) whose
``recovery`` key joins the perf ledger (lower is better, wide band:
it crosses process spawn and scheduler latency). Shape assertions are
strict at every scale: no scan may fail during the outage, the alert
set across steady/outage/recovered phases must equal the
single-process reference exactly, the worker must come back with
``respawns == 1``, and every shared-memory slot must be free at the
end (a crash mid-batch may not leak its ring lease).
"""

import itertools
import json
import os
import threading
import time

import numpy as np

from benchmarks.conftest import SEED
from repro.models.hsc import HSCDetector

SMOKE = bool(int(os.environ.get("PHOOK_BENCH_SMOKE", "0")))

#: Steady-state batches (sequential) and addresses per batch.
N_STEADY = 4 if SMOKE else 12
BATCH_SIZE = 16
#: Concurrent client threads during the outage window.
CLIENTS = 2
#: Hard ceiling on recovery: heartbeat (0.1s) + backoff (0.05s) +
#: a spawn cold-start. Generous because CI runners cold-import the
#: model stack; the ledger band is the real gate.
RECOVERY_BUDGET = 60.0


def _workload(corpus):
    records = [r for r in corpus.records if r.bytecode]
    batches = []
    for b in range(N_STEADY):
        rows = [
            records[(b * BATCH_SIZE + i) % len(records)]
            for i in range(BATCH_SIZE)
        ]
        batches.append((
            [r.address for r in rows], [r.bytecode for r in rows],
        ))
    return batches


def test_fault_recovery(corpus, dataset, tmp_path_factory):
    from repro.artifacts import ModelStore
    from repro.net import FleetManager
    from repro.serve.service import ScanService
    from repro.stream import MemorySink

    detector = HSCDetector(variant="Random Forest", seed=SEED)
    detector.set_params(clf__n_estimators=16)
    detector.fit(dataset.bytecodes, dataset.labels)
    store_root = tmp_path_factory.mktemp("fault-bench-store")
    ModelStore.from_url(str(store_root)).put(
        detector, model_name="Random Forest", tags=("production",)
    )

    batches = _workload(corpus)
    reference = ScanService.from_artifact(
        "production", store=ModelStore.from_url(str(store_root))
    )
    expected_alerts = set()
    for addresses, codes in batches:
        for result in reference.scan_bytecodes(codes, addresses=addresses):
            if result.is_phishing:
                expected_alerts.add(result.address)

    sink = MemorySink()
    with FleetManager(
        workers=2,
        store_url=str(store_root),
        model_ref="production",
        overflow="block",
        sinks=(sink,),
        supervise=True,
        heartbeat_seconds=0.1,
        respawn_backoff_seconds=0.05,
        respawn_backoff_max=0.5,
    ) as manager:
        handle = manager.coordinator.workers[0]

        # Steady state: the latency floor the outage is compared to.
        steady = []
        for addresses, codes in batches:
            started = time.perf_counter()
            manager.scan(addresses, codes)
            steady.append(time.perf_counter() - started)
        p99_steady = float(np.percentile(np.sort(steady), 99))

        # Outage window: continuous load from client threads while the
        # worker dies, traffic reroutes, and the supervisor respawns.
        stop = threading.Event()
        lock = threading.Lock()
        outage = []
        errors = []
        rotation = itertools.cycle(batches)

        def client():
            while not stop.is_set():
                with lock:
                    addresses, codes = next(rotation)
                started = time.perf_counter()
                try:
                    manager.scan(addresses, codes)
                except Exception as error:  # pragma: no cover
                    with lock:
                        errors.append(error)
                    return
                with lock:
                    outage.append(time.perf_counter() - started)

        threads = [threading.Thread(target=client) for _ in range(CLIENTS)]
        for thread in threads:
            thread.start()
        time.sleep(0.2)  # load established before the fault

        killed = time.perf_counter()
        manager.kill_worker(0)
        while not (handle.state == "alive" and handle.respawns >= 1):
            if time.perf_counter() - killed > RECOVERY_BUDGET:
                break
            time.sleep(0.01)
        recovery = time.perf_counter() - killed

        time.sleep(0.2)  # a few batches through the respawned worker
        stop.set()
        for thread in threads:
            thread.join()

        assert not errors, f"scan failed during the outage: {errors[0]}"
        assert handle.state == "alive" and handle.respawns == 1, (
            f"worker never recovered: state={handle.state} "
            f"respawns={handle.respawns}"
        )
        assert recovery <= RECOVERY_BUDGET
        p99_respawn = float(np.percentile(np.sort(outage), 99))

        status = manager.status()
        assert status["ring"]["free_slots"] == manager.slots, (
            "a crash mid-batch leaked a shared-memory ring lease"
        )
        fleet_alerts = {alert.address for alert in sink.alerts}
        assert fleet_alerts == expected_alerts, (
            f"alert set diverged across the outage "
            f"(missing {sorted(expected_alerts - fleet_alerts)[:3]}, "
            f"extra {sorted(fleet_alerts - expected_alerts)[:3]})"
        )

    summary = {
        "recovery": round(recovery, 4),
        "p99_seconds_steady": round(p99_steady, 4),
        "p99_seconds_respawn": round(p99_respawn, 4),
        "outage_batches": len(outage),
        "respawns": handle.respawns,
        "clients": CLIENTS,
        "cores": os.cpu_count() or 1,
    }
    print(f"\nFLEET {json.dumps(summary, sort_keys=True)}")
    print(f"steady p99 {p99_steady * 1e3:.1f}ms  "
          f"respawn-window p99 {p99_respawn * 1e3:.1f}ms  "
          f"recovery {recovery:.2f}s over {len(outage)} batches")
