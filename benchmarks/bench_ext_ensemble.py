"""Extension — cross-category ensembles (motivated by Take-away 2).

The paper's Dunn analysis shows models from *different* categories make
significantly different predictions far more often than models within a
category — the textbook precondition for ensembling. A soft-voting and a
stacking combiner over one champion per cheap category (HSC Random
Forest, HSC-diverse SVM, LM SCSGuard) are compared against the best
single model on held-out data.
"""

import numpy as np

from repro.ml.metrics import classification_metrics
from repro.models.ensemble import StackingDetector, VotingDetector
from repro.models.hsc import HSCDetector
from repro.models.scsguard import SCSGuardClassifier

from benchmarks.conftest import SEED, run_once


def _bases(seed: int):
    forest = HSCDetector(variant="Random Forest", seed=seed)
    forest.set_params(clf__n_estimators=80)
    return [
        forest,
        HSCDetector(variant="SVM", seed=seed),
        SCSGuardClassifier(epochs=6, seed=seed),
    ]


def test_ext_ensemble(benchmark, dataset):
    train, test = dataset.train_test_split(0.3, seed=SEED)
    labels = np.asarray(test.labels)

    def run():
        results = {}
        single = HSCDetector(variant="Random Forest", seed=SEED)
        single.set_params(clf__n_estimators=80)
        single.fit(train.bytecodes, train.labels)
        results["Random Forest"] = classification_metrics(
            labels, single.predict(test.bytecodes)
        )

        voting = VotingDetector(_bases(SEED), voting="soft")
        voting.fit(train.bytecodes, train.labels)
        results["Voting(soft)"] = classification_metrics(
            labels, voting.predict(test.bytecodes)
        )

        stacking = StackingDetector(_bases(SEED), n_folds=3, seed=SEED)
        stacking.fit(train.bytecodes, train.labels)
        results["Stacking"] = classification_metrics(
            labels, stacking.predict(test.bytecodes)
        )
        return results

    results = run_once(benchmark, run)

    print("\nExtension — cross-category ensembles")
    for name, metrics in results.items():
        print(f"{name:14s} {metrics}")

    best_single = results["Random Forest"]
    best_ensemble = max(
        results["Voting(soft)"].accuracy, results["Stacking"].accuracy
    )
    # Ensembling across categories is competitive with the single champion
    # (the paper-scale expectation is a small gain; at reduced scale we
    # assert no collapse and a sane probability pipeline).
    assert best_ensemble >= best_single.accuracy - 0.05
    for metrics in results.values():
        assert metrics.accuracy > 0.62
