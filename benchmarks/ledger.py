"""Perf ledger: committed baselines for the benchmark gate metrics.

Every gate benchmark prints one machine-readable line, ``TAG {json}``
(e.g. ``PREDICT_THROUGHPUT {"speedup": 31.2, ...}``). This module turns
those lines into a regression gate:

* ``record`` parses one or more bench logs and writes the tracked
  metrics to a baseline file (the committed ``BENCH_10.json``),
* ``check`` parses fresh logs and fails (exit 1) if any tracked metric
  regressed more than the tolerance (default 20%) against the baseline.

The tracked metrics are deliberately *machine-relative ratios*
(speedup of one code path over another measured in the same process,
shadow overhead as a multiple of primary scoring time), not absolute
wall-clock — so the committed baseline transfers across machines and
CI runners, and a regression means *the relationship between code
paths changed*, which is the thing a refactor can actually break.

Usage::

    PYTHONPATH=src:. python -m pytest -q -s benchmarks/bench_cold_start.py | tee cold.log
    python benchmarks/ledger.py record cold.log ... --out BENCH_10.json
    python benchmarks/ledger.py check  cold.log ... --baseline BENCH_10.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import re
import sys

#: ``TAG {json}`` — tag is SHOUTING_SNAKE, payload is one JSON object.
_SUMMARY_LINE = re.compile(r"^([A-Z][A-Z0-9_]+) (\{.*\})\s*$")


@dataclasses.dataclass(frozen=True)
class Metric:
    """One tracked ratio: ``tag.key``, and which direction is better."""

    tag: str        # summary line tag, e.g. "PREDICT_THROUGHPUT"
    key: str        # key inside the JSON payload, e.g. "speedup"
    direction: str  # "higher" (speedup) or "lower" (overhead)
    #: Per-metric tolerance override. Ratios spanning four orders of
    #: magnitude (train-per-scan vs warm-cache-hit) jitter far beyond
    #: the default band run to run; a regression there means the ratio
    #: *collapsed*, not that it moved 20%.
    tolerance: float | None = None

    @property
    def name(self) -> str:
        return f"{self.tag}.{self.key}"


#: The gate metrics. Additions are cheap; removals/renames should bump
#: the committed baseline file in the same PR.
TRACKED = (
    Metric("SCAN_THROUGHPUT", "speedup_warm_vs_seed_loop", "higher",
           tolerance=0.90),
    Metric("STREAM_LATENCY", "speedup_warm_vs_seed_poll", "higher",
           tolerance=0.50),
    Metric("PREDICT_THROUGHPUT", "speedup", "higher"),
    # Compact float32 kernel over the float64 flat path, measured in the
    # same process on the same forest. A modest ratio (≈ 2×) with normal
    # jitter: the gate catches the kernel regressing to parity, not
    # run-to-run noise.
    Metric("PREDICT_THROUGHPUT", "f32", "higher", tolerance=0.30),
    Metric("COLD_START", "speedup", "higher"),
    # Stored-layout mmap load vs full read+verify of the same cached
    # file. Crosses the page cache and per-array memmap setup, so the
    # band is wide: the gate catches the map degenerating into a copy.
    Metric("COLD_START", "mmap", "higher", tolerance=0.50),
    Metric("SHADOW_ROLLOUT", "overhead", "lower"),
    # 4-worker vs 1-worker fleet throughput, measured in one run over
    # identical workloads. Crosses process scheduling, so the band is
    # wide: the gate exists to catch dispatch serializing (ratio
    # collapsing toward the per-request overhead floor), not OS jitter.
    Metric("FLEET", "scaling", "higher", tolerance=0.50),
    # Seconds from SIGKILL to a respawned, re-serving worker. Absolute
    # wall-clock (the one non-ratio metric): it crosses heartbeat
    # detection, backoff and a full process spawn, so the band is the
    # widest — the gate catches recovery *stalling*, not jitter.
    Metric("FLEET", "recovery", "lower", tolerance=1.00),
    # Shared feature table hit rate when the same workload repeats
    # against a cached fleet. Deterministic ≈ 1.0; any drop means
    # entries stopped surviving across batches (eviction storm, lease
    # leak, or the coordinator stopped consulting the table).
    Metric("FLEET", "shared_cache_hit", "higher", tolerance=0.05),
    # Warm-start retrain (fit_more on the drift window) vs cold refit of
    # an equal-sized forest on the same window, same process. The loop's
    # economics rest on this ratio staying well above 1; the wide band
    # catches it collapsing toward parity, not fit-time jitter.
    Metric("LOOP", "warm_speedup", "higher", tolerance=0.50),
    # Wall seconds for the drifted replay that contains one full
    # detect -> subprocess retrain -> shadow -> promote cycle. Absolute
    # wall-clock (like FLEET.recovery): it crosses a process fork and a
    # forest fit, so the band is the widest — the gate catches the loop
    # *stalling*, not scheduler noise.
    Metric("LOOP", "promotion_latency", "lower", tolerance=1.00),
)

DEFAULT_TOLERANCE = 0.20


def parse_summaries(text: str) -> dict[str, dict]:
    """Extract every ``TAG {json}`` summary line; last occurrence wins."""
    summaries: dict[str, dict] = {}
    for line in text.splitlines():
        match = _SUMMARY_LINE.match(line.strip())
        if not match:
            continue
        try:
            payload = json.loads(match.group(2))
        except json.JSONDecodeError:
            continue
        if isinstance(payload, dict):
            summaries[match.group(1)] = payload
    return summaries


def collect(paths: list[str]) -> dict[str, dict]:
    """Merge summaries across logs, *per key* within each tag.

    Two benches may legitimately share a tag while owning different
    keys (``bench_fleet`` prints ``FLEET {"scaling": ...}``,
    ``bench_fault_recovery`` prints ``FLEET {"recovery": ...}``); a
    tag-level overwrite would silently drop whichever log came first.
    """
    merged: dict[str, dict] = {}
    for path in paths:
        for tag, payload in parse_summaries(
            pathlib.Path(path).read_text()
        ).items():
            merged.setdefault(tag, {}).update(payload)
    return merged


def extract_tracked(summaries: dict[str, dict]) -> tuple[dict, list[str]]:
    """(metric name -> value) for every tracked metric found; missing list."""
    values: dict[str, float] = {}
    missing: list[str] = []
    for metric in TRACKED:
        payload = summaries.get(metric.tag)
        if payload is None or metric.key not in payload:
            missing.append(metric.name)
            continue
        values[metric.name] = float(payload[metric.key])
    return values, missing


def cmd_record(args) -> int:
    values, missing = extract_tracked(collect(args.logs))
    if missing and not args.allow_missing:
        print("record: missing tracked metric(s): " + ", ".join(missing),
              file=sys.stderr)
        print("run the corresponding bench_*.py and pass its log "
              "(or --allow-missing to record a partial baseline)",
              file=sys.stderr)
        return 1
    baseline = {
        "note": (
            "Perf ledger baseline — machine-relative ratios recorded by "
            "benchmarks/ledger.py; regenerate with "
            "'python benchmarks/ledger.py record <bench logs> --out "
            + args.out + "'"
        ),
        "tolerance": args.tolerance,
        "metrics": {
            metric.name: {
                "value": round(values[metric.name], 4),
                "direction": metric.direction,
                **(
                    {"tolerance": metric.tolerance}
                    if metric.tolerance is not None else {}
                ),
            }
            for metric in TRACKED if metric.name in values
        },
    }
    pathlib.Path(args.out).write_text(
        json.dumps(baseline, indent=2, sort_keys=True) + "\n"
    )
    print(f"recorded {len(values)} metric(s) -> {args.out}")
    for name in sorted(values):
        print(f"  {name} = {values[name]:.4f}")
    return 0


def cmd_check(args) -> int:
    baseline = json.loads(pathlib.Path(args.baseline).read_text())
    tolerance = (
        args.tolerance if args.tolerance is not None
        else float(baseline.get("tolerance", DEFAULT_TOLERANCE))
    )
    values, missing = extract_tracked(collect(args.logs))

    failures: list[str] = []
    for name, entry in sorted(baseline.get("metrics", {}).items()):
        recorded = float(entry["value"])
        direction = entry.get("direction", "higher")
        if name in missing or name not in values:
            failures.append(
                f"{name}: tracked in {args.baseline} but absent from the "
                "provided logs — did a bench stop printing its summary "
                "line?"
            )
            continue
        current = values[name]
        band = float(entry.get("tolerance", tolerance))
        if direction == "lower":
            limit = recorded * (1.0 + band)
            regressed = current > limit
            verdict = f"<= {limit:.4f}"
        else:
            limit = recorded * (1.0 - band)
            regressed = current < limit
            verdict = f">= {limit:.4f}"
        status = "REGRESSED" if regressed else "ok"
        print(f"{status:9s} {name}: current {current:.4f} vs baseline "
              f"{recorded:.4f} (needs {verdict}, {direction} is better)")
        if regressed:
            failures.append(
                f"{name}: {current:.4f} vs baseline {recorded:.4f} "
                f"(> {band:.0%} regression)"
            )
    if failures:
        print(f"\nperf ledger: {len(failures)} regression(s) beyond "
              f"{tolerance:.0%} tolerance:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print("if the change is intentional, re-record the baseline: "
              f"python benchmarks/ledger.py record <logs> --out "
              f"{args.baseline}", file=sys.stderr)
        return 1
    print(f"\nperf ledger: all {len(baseline.get('metrics', {}))} tracked "
          f"metric(s) within {tolerance:.0%} of {args.baseline}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ledger", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser(
        "record", help="parse bench logs and write the baseline file"
    )
    record.add_argument("logs", nargs="+", help="bench output log file(s)")
    record.add_argument("--out", default="BENCH_10.json")
    record.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE)
    record.add_argument(
        "--allow-missing", action="store_true",
        help="record whatever tracked metrics the logs contain",
    )
    record.set_defaults(func=cmd_record)

    check = sub.add_parser(
        "check", help="fail if any tracked metric regressed vs baseline"
    )
    check.add_argument("logs", nargs="+", help="bench output log file(s)")
    check.add_argument("--baseline", default="BENCH_10.json")
    check.add_argument(
        "--tolerance", type=float, default=None,
        help="override the tolerance stored in the baseline",
    )
    check.set_defaults(func=cmd_check)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
