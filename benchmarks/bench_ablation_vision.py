"""Ablation — the two pretraining stand-ins of the vision models.

DESIGN.md S5 replaces ImageNet pretraining with (a) an intensity-
quantization stem and (b) byte-roll augmentation. This ablation verifies
both are load-bearing: removing either should cost accuracy. (With raw
intensities, a linear patch embedding cannot express byte-bucket
statistics at all; without augmentation the tiny ViT memorizes byte
positions.)
"""

from repro.ml.metrics import accuracy_score
from repro.models.vision import ViTClassifier

from benchmarks.conftest import SEED, run_once


def _accuracy(train, test, **overrides) -> float:
    params = dict(encoding="r2d2", image_size=16, dim=48, depth=1,
                  epochs=24, seed=SEED)
    params.update(overrides)
    model = ViTClassifier(**params)
    model.fit(train.bytecodes, train.labels)
    return accuracy_score(test.labels, model.predict(test.bytecodes))


def test_ablation_vision_stem_and_augmentation(benchmark, dataset):
    train, test = dataset.train_test_split(0.3, seed=SEED)

    def run():
        return {
            "full": _accuracy(train, test),
            "no_quantization": _accuracy(train, test, bins=2),
            "no_augmentation": _accuracy(train, test, augment_replicas=1),
        }

    results = run_once(benchmark, run)

    print("\nAblation — ViT+R2D2 pretraining stand-ins")
    for name, value in results.items():
        print(f"{name:18s} accuracy = {value:.3f}")

    # The full recipe is the best configuration (within noise).
    assert results["full"] >= results["no_quantization"] - 0.03
    assert results["full"] >= results["no_augmentation"] - 0.03
    # At least one stand-in is individually load-bearing.
    degraded = min(results["no_quantization"], results["no_augmentation"])
    assert results["full"] > degraded + 0.03
