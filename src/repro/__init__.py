"""PhishingHook reproduction (DSN 2025).

Opcode-based phishing detection for Ethereum smart contracts, rebuilt from
scratch: EVM substrate, simulated data plane, synthetic labeled corpus,
classical ML + numpy autograd NN stacks, the 16 detection models, the
statistical post-hoc battery and every evaluation artifact of the paper.

Entry points:

* :class:`repro.core.pipeline.PhishingHook` — the end-to-end framework,
* :func:`repro.core.registry.create_model` — any Table II model by name,
* :func:`repro.datagen.corpus.build_corpus` — the synthetic data plane,
* ``phishinghook`` (CLI) — demo / scan / disasm / dataset / attack /
  calibrate commands.

See DESIGN.md for the architecture and EXPERIMENTS.md for results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
