"""PhishingHook reproduction (DSN 2025).

Opcode-based phishing detection for Ethereum smart contracts, rebuilt from
scratch: EVM substrate, simulated data plane, synthetic labeled corpus,
classical ML + numpy autograd NN stacks, the 16 detection models, the
statistical post-hoc battery and every evaluation artifact of the paper.

Entry points:

* :class:`repro.core.pipeline.PhishingHook` — the end-to-end framework,
* :func:`repro.core.registry.create_model` — any Table II model by name,
* :func:`repro.datagen.corpus.build_corpus` — the synthetic data plane,
* :class:`repro.serve.ScanService` — fit-once batched scanning over the
  content-addressed :class:`repro.serve.FeatureCache` (see
  :mod:`repro.serve` for the design notes and cache knobs),
* :mod:`repro.stream` — event-driven streaming detection (event bus,
  micro-batching sharded scanner, alert sinks, timeline replay) with the
  poll-compatible :class:`repro.core.live.LiveDetector` adapter on top,
* ``phishinghook`` (CLI) — demo / scan (incl. ``--batch``) / monitor /
  disasm / dataset / attack / calibrate commands.

See DESIGN.md for the architecture and EXPERIMENTS.md for results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
