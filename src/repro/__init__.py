"""PhishingHook reproduction (DSN 2025).

Opcode-based phishing detection for Ethereum smart contracts, rebuilt from
scratch: EVM substrate, simulated data plane, synthetic labeled corpus,
classical ML + numpy autograd NN stacks, the 16 detection models, the
statistical post-hoc battery and every evaluation artifact of the paper.

Entry points:

* :class:`repro.core.pipeline.PhishingHook` — the end-to-end framework,
* :func:`repro.core.registry.create_model` — any Table II model by name,
* :func:`repro.datagen.corpus.build_corpus` — the synthetic data plane,
* :mod:`repro.artifacts` — versioned model persistence: save/load any
  fitted detector as a single verified ``.npz`` artifact, manage
  versions and tags in a content-addressed
  :class:`repro.artifacts.ModelStore`,
* :class:`repro.serve.ScanService` — fit-once batched scanning over the
  content-addressed :class:`repro.serve.FeatureCache`, artifact cold
  starts (``from_artifact``) and zero-downtime ``swap_model`` (see
  :mod:`repro.serve` for the design notes and cache knobs),
* :mod:`repro.stream` — event-driven streaming detection (event bus,
  micro-batching sharded scanner, alert sinks, timeline replay) with
  artifact cold starts and live version ``rollout`` across shards, plus
  the poll-compatible :class:`repro.core.live.LiveDetector` adapter,
* ``phishinghook`` (CLI) — demo / train / models / scan (incl.
  ``--batch``) / monitor / disasm / dataset / attack / calibrate
  commands; ``scan``/``monitor`` serve persisted artifacts via
  ``--model-tag``/``--model-path``.

See DESIGN.md for the architecture and EXPERIMENTS.md for results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
