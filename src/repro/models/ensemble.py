"""Ensemble detectors: voting and stacking over Table II base models.

Take-away 2 of the paper observes that the four model categories make
*different* mistakes (cross-category Dunn pairs diverge far more often
than within-category ones) — exactly the situation where combining
categories pays. These ensembles are the natural extension experiment:

* :class:`VotingDetector` — soft (probability-averaging) or hard
  (majority) vote over any set of fitted-together base detectors,
* :class:`StackingDetector` — a logistic meta-learner trained on
  out-of-fold base probabilities, the standard leak-free construction.

Both implement the :class:`~repro.models.detector.PhishingDetector`
protocol, so they drop into MEM evaluation, post-hoc analysis and the
benches unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.ml.linear import LogisticRegression
from repro.models.detector import PhishingDetector

__all__ = ["VotingDetector", "StackingDetector"]


def _check_base_detectors(detectors) -> list[PhishingDetector]:
    detectors = list(detectors)
    if len(detectors) < 2:
        raise ValueError("an ensemble needs at least two base detectors")
    for detector in detectors:
        if not isinstance(detector, PhishingDetector):
            raise TypeError(
                f"base detectors must be PhishingDetector, got {type(detector)!r}"
            )
    return detectors


def _stratified_fold_indices(
    labels: np.ndarray, n_folds: int, seed: int
) -> list[np.ndarray]:
    """Shuffled per-class round-robin assignment to ``n_folds`` folds."""
    rng = np.random.default_rng(seed)
    assignment = np.empty(labels.size, dtype=int)
    for label in np.unique(labels):
        members = np.flatnonzero(labels == label)
        rng.shuffle(members)
        assignment[members] = np.arange(members.size) % n_folds
    return [np.flatnonzero(assignment == fold) for fold in range(n_folds)]


class VotingDetector(PhishingDetector):
    """Soft or hard vote over independently fitted base detectors.

    Args:
        detectors: At least two base detectors (unfitted; ``fit`` fits
            every one of them on the same data).
        voting: ``"soft"`` averages ``predict_proba`` outputs (optionally
            weighted); ``"hard"`` majority-votes the thresholded labels.
        weights: Optional per-detector weights (soft voting only).
    """

    category = "ENS"

    def __init__(self, detectors, voting: str = "soft", weights=None):
        self.detectors = _check_base_detectors(detectors)
        if voting not in ("soft", "hard"):
            raise ValueError(f"voting must be 'soft' or 'hard', got {voting!r}")
        if weights is not None:
            weights = np.asarray(weights, dtype=float)
            if voting == "hard":
                raise ValueError("weights only apply to soft voting")
            if weights.shape != (len(self.detectors),):
                raise ValueError(
                    f"need one weight per detector, got {weights.shape}"
                )
            if np.any(weights < 0) or weights.sum() <= 0:
                raise ValueError("weights must be non-negative, sum > 0")
        self.voting = voting
        self.weights = weights
        self.name = f"Voting[{voting}:{len(self.detectors)}]"

    def fit(self, bytecodes, labels) -> "VotingDetector":
        for detector in self.detectors:
            detector.fit(bytecodes, labels)
        return self

    def predict_proba(self, bytecodes) -> np.ndarray:
        stacked = np.stack(
            [detector.predict_proba(bytecodes) for detector in self.detectors]
        )
        if self.voting == "soft":
            weights = self.weights
            if weights is None:
                weights = np.ones(len(self.detectors))
            weights = weights / weights.sum()
            return np.einsum("d,dnc->nc", weights, stacked)
        # Hard voting: the positive probability is the fraction of base
        # detectors voting phishing, which also yields a usable score.
        votes = (stacked[:, :, 1] >= 0.5).mean(axis=0)
        return np.column_stack([1.0 - votes, votes])

    # ------------------------------------------------------------------ #
    # Persistence (see repro.artifacts)
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """Nothing beyond the children — base detectors are constructor
        arguments, so the artifact layer captures each child (class,
        params, fitted state) recursively through ``detectors``."""
        return {}

    def load_state(self, state: dict) -> "VotingDetector":
        return self


class StackingDetector(PhishingDetector):
    """Logistic meta-learner over out-of-fold base probabilities.

    ``fit`` runs an internal stratified k-fold: every base detector is
    refitted per fold so the meta-features for each training sample come
    from a model that never saw it. The base detectors are then refitted
    once on the full data for inference. Base detectors must therefore be
    re-fittable (calling ``fit`` twice resets them), which every model in
    the registry satisfies.

    Args:
        detectors: At least two base detectors.
        n_folds: Internal folds for the out-of-fold meta-features.
        seed: Fold-assignment seed.
    """

    category = "ENS"

    def __init__(self, detectors, n_folds: int = 3, seed: int = 0):
        self.detectors = _check_base_detectors(detectors)
        if n_folds < 2:
            raise ValueError("stacking needs n_folds >= 2")
        self.n_folds = n_folds
        self.seed = seed
        self.meta_ = LogisticRegression(C=1.0)
        self.name = f"Stacking[{len(self.detectors)}]"

    def _meta_features(self, probabilities: np.ndarray) -> np.ndarray:
        """Meta input: each base detector's phishing probability."""
        return probabilities

    def fit(self, bytecodes, labels) -> "StackingDetector":
        labels = np.asarray(labels)
        if labels.size != len(bytecodes):
            raise ValueError("labels must match bytecodes length")
        folds = _stratified_fold_indices(labels, self.n_folds, self.seed)
        out_of_fold = np.zeros((labels.size, len(self.detectors)))
        for held_out in folds:
            if held_out.size == 0:
                continue
            train_mask = np.ones(labels.size, dtype=bool)
            train_mask[held_out] = False
            train_indices = np.flatnonzero(train_mask)
            train_codes = [bytecodes[i] for i in train_indices]
            held_codes = [bytecodes[i] for i in held_out]
            for column, detector in enumerate(self.detectors):
                detector.fit(train_codes, labels[train_indices])
                out_of_fold[held_out, column] = detector.predict_proba(
                    held_codes
                )[:, 1]
        self.meta_.fit(self._meta_features(out_of_fold), labels)
        # Final refit of every base detector on all the data.
        for detector in self.detectors:
            detector.fit(bytecodes, labels)
        return self

    def predict_proba(self, bytecodes) -> np.ndarray:
        base = np.column_stack(
            [
                detector.predict_proba(bytecodes)[:, 1]
                for detector in self.detectors
            ]
        )
        return self.meta_.predict_proba(self._meta_features(base))

    # ------------------------------------------------------------------ #
    # Persistence (see repro.artifacts)
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """Meta-learner state; fitted base detectors travel as
        constructor arguments (captured recursively by the artifact
        layer through ``detectors``)."""
        return {"meta": self.meta_.state_dict()}

    def load_state(self, state: dict) -> "StackingDetector":
        self.meta_.load_state(state["meta"])
        return self
