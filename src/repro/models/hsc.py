"""Histogram Similarity Classifiers — the seven HSC rows of Table II.

Opcode-occurrence histograms (vocabulary learned on the training set, raw
counts, no normalization) fed to a classical classifier.
"""

from __future__ import annotations

import os

import numpy as np

from repro.features.histogram import OpcodeHistogramExtractor
from repro.ml import (
    CatBoostClassifier,
    KNeighborsClassifier,
    LightGBMClassifier,
    LogisticRegression,
    RandomForestClassifier,
    SVC,
    XGBoostClassifier,
)
from repro.models.detector import PhishingDetector

__all__ = ["HSCDetector", "HSC_VARIANTS", "make_hsc"]

def _forest_jobs() -> int | None:
    """Worker processes for forest training (``PHOOK_N_JOBS``; -1 = all).

    Predictions are bit-identical at any setting — the forest pre-derives
    per-tree seeds — so this is purely a wall-clock knob for campaigns.
    Unset, empty, or ``0`` all mean serial, matching the other ``PHOOK_*``
    flags where 0 is "off".
    """
    value = os.environ.get("PHOOK_N_JOBS")
    return int(value) if value and int(value) != 0 else None


#: Factory per Table II HSC row. Hyperparameters are the defaults selected
#: by the tuning study (see core.tuning and EXPERIMENTS.md).
HSC_VARIANTS: dict[str, callable] = {
    "Random Forest": lambda seed: RandomForestClassifier(
        n_estimators=120, max_features="sqrt", random_state=seed,
        n_jobs=_forest_jobs(),
    ),
    "k-NN": lambda seed: KNeighborsClassifier(n_neighbors=5),
    "SVM": lambda seed: SVC(
        C=10.0, gamma="scale", n_components=384, random_state=seed
    ),
    "Logistic Regression": lambda seed: LogisticRegression(C=1.0),
    "XGBoost": lambda seed: XGBoostClassifier(
        n_estimators=80, learning_rate=0.3, max_depth=4
    ),
    "LightGBM": lambda seed: LightGBMClassifier(
        n_estimators=80, learning_rate=0.15, num_leaves=15
    ),
    "CatBoost": lambda seed: CatBoostClassifier(
        n_estimators=80, learning_rate=0.15, depth=4
    ),
}


class HSCDetector(PhishingDetector):
    """One opcode-histogram classifier.

    Args:
        variant: A key of :data:`HSC_VARIANTS`.
        seed: Seed forwarded to stochastic classifiers.
    """

    category = "HSC"

    def __init__(self, variant: str = "Random Forest", seed: int = 0):
        if variant not in HSC_VARIANTS:
            raise ValueError(
                f"unknown HSC variant {variant!r}; "
                f"choose from {sorted(HSC_VARIANTS)}"
            )
        self.variant = variant
        self.seed = seed
        self.name = variant
        self.extractor_ = OpcodeHistogramExtractor()
        self.classifier_ = HSC_VARIANTS[variant](seed)

    def get_params(self) -> dict:
        return {"variant": self.variant, "seed": self.seed,
                **{f"clf__{k}": v for k, v in self.classifier_.get_params().items()}}

    def set_params(self, **params) -> "HSCDetector":
        for name, value in params.items():
            if name.startswith("clf__"):
                self.classifier_.set_params(**{name[5:]: value})
            else:
                super().set_params(**{name: value})
        return self

    def use_feature_cache(self, cache) -> "HSCDetector":
        """Decode mnemonic-ID arrays through a shared FeatureCache."""
        self.extractor_.set_decoder(
            cache.mnemonic_ids if cache is not None else None
        )
        return self

    def fit(self, bytecodes, labels) -> "HSCDetector":
        features = self.extractor_.fit_transform(bytecodes)
        self.classifier_.fit(features, np.asarray(labels))
        return self

    def fit_more(self, bytecodes, labels, n_more: int) -> "HSCDetector":
        """Grow the fitted classifier by ``n_more`` trees on new data.

        Warm-start entry point for the continuous-learning loop: the
        extractor's vocabulary stays frozen (``transform``, not
        ``fit_transform`` — old trees split on the fitted feature space)
        and the classifier continues from its fitted state. Only
        ensemble variants support this; anything else raises
        ``TypeError`` so the loop can surface a config error instead of
        silently cold-refitting.
        """
        grow = getattr(self.classifier_, "fit_more", None)
        if grow is None:
            raise TypeError(
                f"HSC variant {self.variant!r} does not support "
                "warm-start fit_more"
            )
        features = self.extractor_.transform(bytecodes)
        grow(features, np.asarray(labels), n_more)
        return self

    def predict_proba(self, bytecodes) -> np.ndarray:
        features = self.extractor_.transform(bytecodes)
        return self.classifier_.predict_proba(features)

    # ------------------------------------------------------------------ #
    # Persistence (see repro.artifacts)
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """Extractor vocabulary + classifier state and hyperparameters.

        The classifier's ``get_params()`` ride along because tuned values
        (``set_params(clf__…)``) diverge from the variant factory's
        defaults — a loaded detector must serve the tuned model.
        """
        return {
            "extractor": self.extractor_.state_dict(),
            "classifier_params": self.classifier_.get_params(),
            "classifier": self.classifier_.state_dict(),
        }

    def load_state(self, state: dict) -> "HSCDetector":
        self.extractor_ = OpcodeHistogramExtractor().load_state(
            state["extractor"]
        )
        classifier = HSC_VARIANTS[self.variant](self.seed)
        classifier.set_params(**state["classifier_params"])
        self.classifier_ = classifier.load_state(state["classifier"])
        return self


def make_hsc(variant: str, seed: int = 0) -> HSCDetector:
    """Convenience factory mirroring the registry naming."""
    return HSCDetector(variant=variant, seed=seed)
