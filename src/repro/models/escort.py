"""ESCORT: a vulnerability-detection DNN transferred to fraud detection.

ESCORT (Sendner et al., NDSS'23) embeds bytecode into a feature space built
for *code vulnerabilities* and trains a DNN with (i) a multi-label
vulnerability phase and (ii) a transfer phase that attaches a new branch
head for an unseen class. PhishingHook adapts it to phishing and finds it
near chance (~56%, Table II): phishing is social engineering, not a code
flaw, so vulnerability-oriented features carry little class signal.

This implementation mirrors that structure faithfully:

* a static *vulnerability-signature* extractor over the disassembly
  (reentrancy shape, unchecked calls, ``tx.origin`` auth, timestamp
  dependence, unguarded arithmetic, selfdestruct, delegatecall, invalid
  opcodes, …) — the feature space ESCORT-style detectors consume,
* a shared MLP trunk pretrained on multi-label vulnerability targets
  (derived from the signatures themselves, standing in for ESCORT's labeled
  vulnerability corpus),
* a fresh phishing branch head fine-tuned with the trunk frozen — the
  paper's transfer-learning mode.
"""

from __future__ import annotations

import numpy as np

from repro.evm.disassembler import disassemble_mnemonics
from repro.models.detector import PhishingDetector
from repro.nn import functional as F
from repro.nn.layers import Linear, Module, ReLU, Sequential
from repro.nn.tensor import Tensor, no_grad
from repro.nn.trainer import Trainer, TrainingConfig

__all__ = ["ESCORTClassifier", "vulnerability_signatures", "SIGNATURE_NAMES"]

SIGNATURE_NAMES = (
    "reentrancy_shape",      # external CALL later followed by SSTORE
    "external_call_present", # any message call opcode present
    "origin_auth",           # tx.origin used in comparisons
    "timestamp_dependence",  # TIMESTAMP feeding control flow
    "unguarded_arithmetic",  # ADD/MUL density without DIV-based checks
    "selfdestruct_present",
    "delegatecall_present",
    "invalid_opcodes",
    "blockhash_randomness",
    "large_contract",
)


def vulnerability_signatures(bytecode: bytes) -> np.ndarray:
    """ESCORT-style static vulnerability indicator vector (binary-ish)."""
    mnemonics = disassemble_mnemonics(bytecode)
    n = max(len(mnemonics), 1)
    positions = {name: [i for i, m in enumerate(mnemonics) if m == name]
                 for name in ("CALL", "SSTORE", "POP", "ORIGIN", "TIMESTAMP",
                              "JUMPI", "ADD", "MUL", "DIV", "EQ")}

    call_positions = positions["CALL"]
    sstore_positions = positions["SSTORE"]
    reentrancy = float(
        any(s > c for c in call_positions for s in sstore_positions)
    )
    call_present = float(
        bool(call_positions) or "STATICCALL" in mnemonics
        or "DELEGATECALL" in mnemonics
    )
    origin_auth = float(
        any(i + 2 < len(mnemonics) and "EQ" in mnemonics[i : i + 3]
            for i in positions["ORIGIN"])
    )
    timestamp_flow = float(
        any(any(j - i <= 6 and j > i for j in positions["JUMPI"])
            for i in positions["TIMESTAMP"])
    )
    arith = len(positions["ADD"]) + len(positions["MUL"])
    guarded = len(positions["DIV"]) + len(positions["EQ"])
    unguarded = float(arith > 0 and guarded / max(arith, 1) < 0.5)
    return np.array(
        [
            reentrancy,
            call_present,
            origin_auth,
            timestamp_flow,
            unguarded,
            float("SELFDESTRUCT" in mnemonics),
            float("DELEGATECALL" in mnemonics),
            float(mnemonics.count("INVALID") > 2),
            float("BLOCKHASH" in mnemonics),
            float(len(bytecode) > 4096),
        ]
    )


class _Trunk(Module):
    """Shared feature trunk + multi-label vulnerability head."""

    def __init__(self, in_features, hidden, n_vulnerabilities, seed):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.body = Sequential(
            Linear(in_features, hidden, rng=rng),
            ReLU(),
            Linear(hidden, hidden, rng=rng),
            ReLU(),
        )
        self.vulnerability_head = Linear(hidden, n_vulnerabilities, rng=rng)

    def features(self, X) -> Tensor:
        return self.body(Tensor(np.asarray(X)))

    def loss(self, X, targets) -> Tensor:
        logits = self.vulnerability_head(self.features(X))
        flat_logits = logits.reshape(logits.shape[0] * logits.shape[1])
        flat_targets = np.asarray(targets, dtype=float).reshape(-1)
        return F.binary_cross_entropy_with_logits(flat_logits, flat_targets)


class _Branch(Module):
    """Phishing branch head over frozen trunk features."""

    def __init__(self, trunk: _Trunk, hidden, seed):
        super().__init__()
        rng = np.random.default_rng(seed)
        self._trunk = trunk  # intentionally NOT a parameter source
        self.head = Sequential(Linear(hidden, hidden // 2, rng=rng), ReLU(),
                               Linear(hidden // 2, 2, rng=rng))

    def parameters(self):
        return self.head.parameters()  # trunk stays frozen

    def forward(self, X) -> Tensor:
        with no_grad():
            frozen = self._trunk.features(X).detach()
        return self.head(frozen)

    def loss(self, X, labels) -> Tensor:
        return F.cross_entropy(self.forward(X), labels)


class ESCORTClassifier(PhishingDetector):
    """ESCORT adapted to phishing via its transfer-learning mode."""

    category = "VDM"
    name = "ESCORT"

    def __init__(
        self,
        hidden: int = 32,
        pretrain_epochs: int = 6,
        transfer_epochs: int = 8,
        batch_size: int = 32,
        lr: float = 1e-3,
        seed: int = 0,
    ):
        self.hidden = hidden
        self.pretrain_epochs = pretrain_epochs
        self.transfer_epochs = transfer_epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed

    def _featurize(self, bytecodes) -> np.ndarray:
        return np.stack([vulnerability_signatures(code) for code in bytecodes])

    def fit(self, bytecodes, labels) -> "ESCORTClassifier":
        X = self._featurize(bytecodes)
        # Phase 1: multi-label vulnerability pretraining. The binary
        # signature columns act as the vulnerability labels (stand-in for
        # ESCORT's labeled vulnerability corpus).
        vulnerability_targets = (X[:, : len(SIGNATURE_NAMES) - 1] > 0.5).astype(float)
        self.trunk_ = _Trunk(
            X.shape[1], self.hidden, vulnerability_targets.shape[1], self.seed
        )
        Trainer(
            self.trunk_,
            TrainingConfig(epochs=self.pretrain_epochs,
                           batch_size=self.batch_size, lr=self.lr,
                           seed=self.seed),
        ).fit(X, vulnerability_targets)
        # Phase 2: transfer — new branch head, trunk frozen.
        self.branch_ = _Branch(self.trunk_, self.hidden, self.seed + 1)
        self.trainer_ = Trainer(
            self.branch_,
            TrainingConfig(epochs=self.transfer_epochs,
                           batch_size=self.batch_size, lr=self.lr,
                           seed=self.seed + 1),
        ).fit(X, np.asarray(labels))
        return self

    def predict_proba(self, bytecodes) -> np.ndarray:
        X = self._featurize(bytecodes)
        with no_grad():
            logits = self.branch_.forward(X)
        return F.softmax(Tensor(logits.data)).data

    # ------------------------------------------------------------------ #
    # Persistence (see repro.artifacts)
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        from repro.nn import serialize

        if getattr(self, "branch_", None) is None:
            raise RuntimeError("ESCORT is not fitted; call fit() first")
        # The branch walks into its frozen trunk (``_trunk`` attribute),
        # so serializing trunk + branch separately would duplicate the
        # trunk weights; the branch head alone is captured via its
        # ``head`` submodule.
        return {
            "trunk": serialize.state_dict(self.trunk_),
            "branch_head": serialize.state_dict(self.branch_.head),
        }

    def load_state(self, state: dict) -> "ESCORTClassifier":
        from repro.nn import serialize

        n_signatures = len(SIGNATURE_NAMES)
        self.trunk_ = _Trunk(
            n_signatures, self.hidden, n_signatures - 1, self.seed
        )
        serialize.load_state_dict(self.trunk_, state["trunk"])
        self.branch_ = _Branch(self.trunk_, self.hidden, self.seed + 1)
        serialize.load_state_dict(self.branch_.head, state["branch_head"])
        return self
