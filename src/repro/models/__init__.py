"""The 16 detection models PhishingHook compares (§IV-B, Table II).

Four categories:

* **HSC** (Histogram Similarity Classifiers): Random Forest, k-NN, SVM,
  Logistic Regression, XGBoost, LightGBM, CatBoost — opcode histograms into
  classical classifiers (:mod:`repro.models.hsc`),
* **VM** (Vision Models): ViT+R2D2, ViT+Freq, ECA+EfficientNet —
  bytecode-as-image classifiers (:mod:`repro.models.vision`),
* **LM** (Language Models): SCSGuard, GPT-2 α/β, T5 α/β — sequence models
  over n-grams / opcode tokens (:mod:`repro.models.scsguard`,
  :mod:`repro.models.lm`),
* **VDM** (Vulnerability Detection Models): ESCORT — a vulnerability
  detector transferred to fraud detection (:mod:`repro.models.escort`).

All models implement the :class:`~repro.models.detector.PhishingDetector`
protocol: ``fit(bytecodes, labels)`` / ``predict(bytecodes)``, with the
feature pipeline encapsulated inside the model.

Beyond the paper's 16, :mod:`repro.models.ensemble` adds voting and
stacking combiners across categories (extension motivated by Take-away 2).
"""

from repro.models.detector import PhishingDetector
from repro.models.ensemble import StackingDetector, VotingDetector
from repro.models.escort import ESCORTClassifier
from repro.models.hsc import HSC_VARIANTS, HSCDetector
from repro.models.lm import GPT2Classifier, T5Classifier
from repro.models.scsguard import SCSGuardClassifier
from repro.models.vision import EcaEfficientNetClassifier, ViTClassifier

__all__ = [
    "PhishingDetector",
    "HSCDetector",
    "HSC_VARIANTS",
    "ViTClassifier",
    "EcaEfficientNetClassifier",
    "SCSGuardClassifier",
    "GPT2Classifier",
    "T5Classifier",
    "ESCORTClassifier",
    "VotingDetector",
    "StackingDetector",
]
