"""The uniform detector protocol every PhishingHook model implements."""

from __future__ import annotations

import numpy as np

from repro.ml.base import init_param_names

__all__ = ["PhishingDetector"]


class PhishingDetector:
    """Binary phishing detector over raw contract bytecodes.

    Attributes:
        name: Display name as it appears in Table II.
        category: One of "HSC", "VM", "LM", "VDM".
    """

    name: str = "detector"
    category: str = "?"

    def fit(self, bytecodes: list[bytes], labels) -> "PhishingDetector":
        raise NotImplementedError  # pragma: no cover - interface

    def predict_proba(self, bytecodes: list[bytes]) -> np.ndarray:
        raise NotImplementedError  # pragma: no cover - interface

    def predict(self, bytecodes: list[bytes]) -> np.ndarray:
        return np.argmax(self.predict_proba(bytecodes), axis=1)

    def get_params(self) -> dict:
        """Hyperparameters: constructor arguments read back off ``self``.

        Detectors follow the sklearn convention (constructor keyword
        arguments stored under the same attribute names), so the default
        introspects ``__init__``; overridden where derived entries apply
        (e.g. the HSC detector's ``clf__*`` passthrough).
        """
        return {
            name: getattr(self, name)
            for name in init_param_names(type(self))
        }

    def set_params(self, **params) -> "PhishingDetector":
        for name, value in params.items():
            if not hasattr(self, name):
                raise ValueError(f"{type(self).__name__} has no parameter {name!r}")
            setattr(self, name, value)
        return self

    # ------------------------------------------------------------------ #
    # Persistence protocol (see repro.artifacts)
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """Fitted state as an artifact-ready tree (see
        :meth:`repro.ml.base.Estimator.state_dict`); composite detectors
        compose the states of their extractors / networks / children.

        Raises:
            RuntimeError: If the detector is not fitted.
            NotImplementedError: If the detector has no persistence.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement state_dict()"
        )

    def load_state(self, state: dict) -> "PhishingDetector":
        """Restore fitted state in place; predictions afterwards must be
        bit-identical to the detector the state was captured from."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement load_state()"
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
