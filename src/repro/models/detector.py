"""The uniform detector protocol every PhishingHook model implements."""

from __future__ import annotations

import numpy as np

__all__ = ["PhishingDetector"]


class PhishingDetector:
    """Binary phishing detector over raw contract bytecodes.

    Attributes:
        name: Display name as it appears in Table II.
        category: One of "HSC", "VM", "LM", "VDM".
    """

    name: str = "detector"
    category: str = "?"

    def fit(self, bytecodes: list[bytes], labels) -> "PhishingDetector":
        raise NotImplementedError  # pragma: no cover - interface

    def predict_proba(self, bytecodes: list[bytes]) -> np.ndarray:
        raise NotImplementedError  # pragma: no cover - interface

    def predict(self, bytecodes: list[bytes]) -> np.ndarray:
        return np.argmax(self.predict_proba(bytecodes), axis=1)

    def get_params(self) -> dict:
        """Hyperparameters; overridden where tuning applies."""
        return {}

    def set_params(self, **params) -> "PhishingDetector":
        for name, value in params.items():
            if not hasattr(self, name):
                raise ValueError(f"{type(self).__name__} has no parameter {name!r}")
            setattr(self, name, value)
        return self

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
