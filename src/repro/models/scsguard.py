"""SCSGuard: attention + GRU scam detector (Hu et al., §IV-B).

Pipeline exactly as the paper describes: hex n-gram ids → embedding layer →
multi-head self-attention capturing long-range dependencies → GRU modelling
sequential patterns → fully connected layer producing the logits. N-gram
inputs make the model independent of the α/β token-limit policies ("SCSGuard,
relying on n-grams, remains unaffected").
"""

from __future__ import annotations

import numpy as np

from repro.features.ngrams import PAD_ID, HexNgramEncoder
from repro.models.detector import PhishingDetector
from repro.nn import functional as F
from repro.nn.attention import MultiHeadAttention
from repro.nn.layers import Embedding, Linear, Module
from repro.nn.recurrent import GRU
from repro.nn.tensor import Tensor, no_grad
from repro.nn.trainer import Trainer, TrainingConfig

__all__ = ["SCSGuardClassifier"]


class _SCSGuardNetwork(Module):
    def __init__(self, vocab_size, embed_dim, hidden_dim, n_heads, seed):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.embed = Embedding(vocab_size, embed_dim, rng=rng)
        self.attention = MultiHeadAttention(embed_dim, n_heads, seed=seed)
        self.gru = GRU(embed_dim, hidden_dim, seed=seed + 1)
        self.head = Linear(hidden_dim, 2, rng=rng)

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids, dtype=np.int64)
        padding = ids == PAD_ID
        hidden = self.embed(ids)
        hidden = hidden + self.attention(hidden, key_padding_mask=padding)
        __, last = self.gru(hidden, mask=padding)
        return self.head(last)

    def loss(self, ids, labels) -> Tensor:
        return F.cross_entropy(self.forward(ids), labels)


class SCSGuardClassifier(PhishingDetector):
    """SCSGuard over 6-hex-char n-gram sequences."""

    category = "LM"
    name = "SCSGuard"

    def __init__(
        self,
        max_length: int = 128,
        vocab_size: int = 1024,
        embed_dim: int = 32,
        hidden_dim: int = 32,
        n_heads: int = 2,
        epochs: int = 8,
        batch_size: int = 32,
        lr: float = 1e-3,
        seed: int = 0,
    ):
        self.max_length = max_length
        self.vocab_size = vocab_size
        self.embed_dim = embed_dim
        self.hidden_dim = hidden_dim
        self.n_heads = n_heads
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self._feature_cache = None

    def use_feature_cache(self, cache) -> "SCSGuardClassifier":
        """Serve hex-ngram token codes from a shared FeatureCache."""
        self._feature_cache = cache
        if getattr(self, "encoder_", None) is not None:
            self.encoder_.set_cache(cache)
        return self

    def fit(self, bytecodes, labels) -> "SCSGuardClassifier":
        self.encoder_ = HexNgramEncoder(
            max_length=self.max_length, vocab_size=self.vocab_size
        )
        self.encoder_.set_cache(self._feature_cache)
        ids = self.encoder_.fit_transform(bytecodes)
        self.network_ = _SCSGuardNetwork(
            self.encoder_.effective_vocab_size, self.embed_dim,
            self.hidden_dim, self.n_heads, self.seed,
        )
        self.trainer_ = Trainer(
            self.network_,
            TrainingConfig(
                epochs=self.epochs, batch_size=self.batch_size, lr=self.lr,
                seed=self.seed,
            ),
        ).fit(ids, np.asarray(labels))
        return self

    def predict_proba(self, bytecodes) -> np.ndarray:
        ids = self.encoder_.transform(bytecodes)
        with no_grad():
            logits = self.network_.forward(ids)
        return F.softmax(Tensor(logits.data)).data

    # ------------------------------------------------------------------ #
    # Persistence (see repro.artifacts)
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        from repro.nn import serialize

        if getattr(self, "network_", None) is None:
            raise RuntimeError("SCSGuard is not fitted; call fit() first")
        return {
            "encoder": self.encoder_.state_dict(),
            "network": serialize.state_dict(self.network_),
        }

    def load_state(self, state: dict) -> "SCSGuardClassifier":
        from repro.nn import serialize

        self.encoder_ = HexNgramEncoder(
            max_length=self.max_length, vocab_size=self.vocab_size
        ).load_state(state["encoder"])
        self.encoder_.set_cache(self._feature_cache)
        self.network_ = _SCSGuardNetwork(
            self.encoder_.effective_vocab_size, self.embed_dim,
            self.hidden_dim, self.n_heads, self.seed,
        )
        serialize.load_state_dict(self.network_, state["network"])
        return self
