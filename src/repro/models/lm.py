"""Language models: GPT-2 and T5 over opcode-token sequences (§IV-B/D).

Architecture shapes follow the originals — GPT-2 is a causal decoder with
learned absolute positions; T5 is a bidirectional encoder with bucketed
relative position bias (the classification setup uses the encoder, the
standard recipe for sequence classification with T5). Both come in the two
data-handling variants of §IV-D:

* **α** — sequences truncated to the token limit,
* **β** — full sequences split into overlapping sliding windows; window
  probabilities are averaged per contract at inference.

Offline there are no pretrained checkpoints, so models train from random
initialization at reduced width/depth (substitution S5 in DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.features.tokenizer import PAD_ID, OpcodeTokenizer
from repro.models.detector import PhishingDetector
from repro.nn import functional as F
from repro.nn.attention import RelativePositionBias
from repro.nn.layers import Embedding, LayerNorm, Linear, Module, Parameter
from repro.nn.tensor import Tensor, no_grad
from repro.nn.trainer import Trainer, TrainingConfig
from repro.nn.transformer import TransformerBlock

__all__ = ["GPT2Classifier", "T5Classifier"]


class _GPT2Network(Module):
    """Causal decoder; classification from the last non-PAD hidden state."""

    def __init__(self, vocab_size, max_length, dim, depth, n_heads, seed):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.token_embed = Embedding(vocab_size, dim, rng=rng)
        self.pos_embed = Parameter(
            rng.normal(scale=0.02, size=(1, max_length, dim))
        )
        self.blocks = [
            TransformerBlock(dim, n_heads, causal=True, seed=seed + i)
            for i in range(depth)
        ]
        self.norm = LayerNorm(dim)
        self.head = Linear(dim, 2, rng=rng)

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids, dtype=np.int64)
        padding = ids == PAD_ID
        hidden = self.token_embed(ids) + self.pos_embed[:, : ids.shape[1], :]
        for block in self.blocks:
            hidden = block(hidden, key_padding_mask=padding)
        hidden = self.norm(hidden)
        last = np.maximum((~padding).sum(axis=1) - 1, 0)
        pooled = hidden[np.arange(len(ids)), last, :]
        return self.head(pooled)

    def loss(self, ids, labels) -> Tensor:
        return F.cross_entropy(self.forward(ids), labels)


class _T5Network(Module):
    """Bidirectional encoder with shared relative position bias."""

    def __init__(self, vocab_size, dim, depth, n_heads, seed):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.token_embed = Embedding(vocab_size, dim, rng=rng)
        self.position_bias = RelativePositionBias(n_heads, rng=rng)
        self.blocks = [
            TransformerBlock(dim, n_heads, causal=False, seed=seed + i)
            for i in range(depth)
        ]
        self.norm = LayerNorm(dim)
        self.head = Linear(dim, 2, rng=rng)

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids, dtype=np.int64)
        padding = ids == PAD_ID
        hidden = self.token_embed(ids)
        bias = self.position_bias(ids.shape[1])
        for block in self.blocks:
            hidden = block(hidden, key_padding_mask=padding, position_bias=bias)
        hidden = self.norm(hidden)
        # Mean over non-PAD positions.
        keep = Tensor((~padding).astype(np.float64)[:, :, None])
        denominator = Tensor(
            np.maximum((~padding).sum(axis=1, keepdims=True), 1).astype(float)
        )
        pooled = (hidden * keep).sum(axis=1) / denominator
        return self.head(pooled)

    def loss(self, ids, labels) -> Tensor:
        return F.cross_entropy(self.forward(ids), labels)


class _SequenceLMBase(PhishingDetector):
    """Shared α/β handling for both language models."""

    category = "LM"
    base_name = "LM"

    def __init__(
        self,
        variant: str = "alpha",
        max_length: int = 96,
        dim: int = 32,
        depth: int = 2,
        n_heads: int = 2,
        epochs: int = 8,
        batch_size: int = 32,
        lr: float = 1e-3,
        max_windows_per_sample: int = 4,
        seed: int = 0,
    ):
        if variant not in ("alpha", "beta"):
            raise ValueError(f"variant must be 'alpha' or 'beta', got {variant!r}")
        self.variant = variant
        self.max_length = max_length
        self.dim = dim
        self.depth = depth
        self.n_heads = n_heads
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.max_windows_per_sample = max_windows_per_sample
        self.seed = seed
        greek = "α" if variant == "alpha" else "β"
        self.name = f"{self.base_name}{greek}"

    def _build_network(self, vocab_size) -> Module:  # pragma: no cover
        raise NotImplementedError

    # ------------------------------------------------------------------ #

    def _train_encodings(self, bytecodes, labels):
        if self.variant == "alpha":
            return self.tokenizer_.encode_alpha(bytecodes), np.asarray(labels)
        windows, owners = self.tokenizer_.encode_beta_batch(bytecodes)
        windows, owners = self._cap_windows(windows, owners)
        return windows, np.asarray(labels)[owners]

    def _cap_windows(self, windows, owners):
        keep: list[int] = []
        count: dict[int, int] = {}
        for index, owner in enumerate(owners):
            seen = count.get(int(owner), 0)
            if seen < self.max_windows_per_sample:
                keep.append(index)
                count[int(owner)] = seen + 1
        keep = np.asarray(keep, dtype=int)
        return windows[keep], owners[keep]

    def fit(self, bytecodes, labels) -> "_SequenceLMBase":
        self.tokenizer_ = OpcodeTokenizer(max_length=self.max_length)
        self.tokenizer_.fit(bytecodes)
        self.network_ = self._build_network(self.tokenizer_.vocab_size)
        ids, targets = self._train_encodings(bytecodes, labels)
        self.trainer_ = Trainer(
            self.network_,
            TrainingConfig(
                epochs=self.epochs, batch_size=self.batch_size, lr=self.lr,
                seed=self.seed,
            ),
        ).fit(ids, targets)
        return self

    def predict_proba(self, bytecodes) -> np.ndarray:
        if self.variant == "alpha":
            ids = self.tokenizer_.encode_alpha(bytecodes)
            with no_grad():
                logits = self.network_.forward(ids)
            return F.softmax(Tensor(logits.data)).data
        windows, owners = self.tokenizer_.encode_beta_batch(bytecodes)
        windows, owners = self._cap_windows(windows, owners)
        with no_grad():
            logits = self.network_.forward(windows)
        window_probs = F.softmax(Tensor(logits.data)).data
        probabilities = np.zeros((len(bytecodes), 2))
        counts = np.zeros(len(bytecodes))
        for window_index, owner in enumerate(owners):
            probabilities[owner] += window_probs[window_index]
            counts[owner] += 1
        counts = np.maximum(counts, 1)
        return probabilities / counts[:, None]

    # ------------------------------------------------------------------ #
    # Persistence (see repro.artifacts)
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        from repro.nn import serialize

        if getattr(self, "network_", None) is None:
            raise RuntimeError(f"{self.name} is not fitted; call fit() first")
        return {
            "tokenizer": self.tokenizer_.state_dict(),
            "network": serialize.state_dict(self.network_),
        }

    def load_state(self, state: dict) -> "_SequenceLMBase":
        from repro.nn import serialize

        self.tokenizer_ = OpcodeTokenizer(
            max_length=self.max_length
        ).load_state(state["tokenizer"])
        self.network_ = self._build_network(self.tokenizer_.vocab_size)
        serialize.load_state_dict(self.network_, state["network"])
        return self


class GPT2Classifier(_SequenceLMBase):
    """GPT-2 (causal decoder) phishing classifier, α or β."""

    base_name = "GPT-2"

    def _build_network(self, vocab_size):
        return _GPT2Network(
            vocab_size, self.max_length, self.dim, self.depth, self.n_heads,
            self.seed,
        )


class T5Classifier(_SequenceLMBase):
    """T5 (relative-bias encoder) phishing classifier, α or β."""

    base_name = "T5"

    def _build_network(self, vocab_size):
        return _T5Network(
            vocab_size, self.dim, self.depth, self.n_heads, self.seed
        )
