"""Vision models: ViT+R2D2, ViT+Freq and ECA+EfficientNet (§IV-B).

The paper fine-tunes an ImageNet-pretrained ViT-B/16 on 224×224 images and
uses an ECA-augmented EfficientNet-B0 with data enhancement. Offline there
are no pretrained weights and 224×224 CPU training is infeasible, so the
same architectures are instantiated at reduced scale (substitution S5 in
DESIGN.md) with two stand-ins for what pretraining provides:

* a fixed **intensity-quantization stem** (one-hot over ``bins`` intensity
  levels per channel): pretrained backbones bring value-selective low-level
  filters; without them, a linear patch embedding over raw intensities
  cannot express byte-bucket statistics at all. The quantized planes make
  those statistics linearly computable while leaving every learned weight
  in the model.
* **byte-roll augmentation** (the "data enhancement" of the
  ECA+EfficientNet source paper): each training bytecode is additionally
  encoded at random circular shifts, forcing translation-robust features.

Architecture shape is preserved: patch embedding + transformer encoder for
ViT (``pool="cls"`` or ``"mean"``); stem + depthwise MBConv blocks +
efficient channel attention + global-average-pool head for the CNN.
"""

from __future__ import annotations

import numpy as np

from repro.features.image import (
    FrequencyImageEncoder,
    quantize_planes,
    rgb_images,
)
from repro.models.detector import PhishingDetector
from repro.nn import functional as F
from repro.nn.conv import BatchNorm2d, Conv2d, GlobalAvgPool2d
from repro.nn.layers import LayerNorm, Linear, Module, Parameter
from repro.nn.tensor import Tensor, concat, no_grad
from repro.nn.trainer import Trainer, TrainingConfig
from repro.nn.transformer import TransformerBlock

__all__ = ["ViTClassifier", "EcaEfficientNetClassifier"]


def _augment_roll(bytecodes, labels, replicas: int, rng: np.random.Generator):
    """Each bytecode plus ``replicas−1`` random circular byte shifts."""
    rolled: list[bytes] = []
    targets: list[int] = []
    for code, label in zip(bytecodes, labels):
        for replica in range(replicas):
            if replica == 0 or len(code) < 2:
                rolled.append(code)
            else:
                shift = int(rng.integers(1, len(code)))
                rolled.append(code[shift:] + code[:shift])
            targets.append(int(label))
    return rolled, np.asarray(targets)


class _ViTNetwork(Module):
    """Vision Transformer over quantized-intensity patch planes."""

    def __init__(self, image_size, patch_size, dim, depth, n_heads, bins,
                 pool, seed):
        super().__init__()
        if image_size % patch_size:
            raise ValueError("image_size must be divisible by patch_size")
        if pool not in ("cls", "mean"):
            raise ValueError(f"pool must be 'cls' or 'mean', got {pool!r}")
        rng = np.random.default_rng(seed)
        self.patch_size = patch_size
        self.bins = bins
        self.pool = pool
        self.n_patches = (image_size // patch_size) ** 2
        patch_dim = patch_size * patch_size * 3 * bins
        self.patch_embed = Linear(patch_dim, dim, rng=rng)
        self.cls_token = Parameter(rng.normal(scale=0.02, size=(1, 1, dim)))
        extra = 1 if pool == "cls" else 0
        self.pos_embed = Parameter(
            rng.normal(scale=0.02, size=(1, self.n_patches + extra, dim))
        )
        self.blocks = [
            TransformerBlock(dim, n_heads, seed=seed + i) for i in range(depth)
        ]
        self.norm = LayerNorm(dim)
        self.head = Linear(dim, 2, rng=rng)

    def _patchify(self, images: np.ndarray) -> np.ndarray:
        planes = quantize_planes(np.asarray(images), self.bins)
        batch, side, __, channels = planes.shape
        p = self.patch_size
        grid = side // p
        patches = planes.reshape(batch, grid, p, grid, p, channels)
        patches = patches.transpose(0, 1, 3, 2, 4, 5)
        return patches.reshape(batch, grid * grid, p * p * channels)

    def forward(self, images: np.ndarray) -> Tensor:
        tokens = self.patch_embed(Tensor(self._patchify(images)))
        batch = tokens.shape[0]
        if self.pool == "cls":
            cls = self.cls_token + Tensor(np.zeros((batch, 1, tokens.shape[2])))
            tokens = concat([cls, tokens], axis=1)
        tokens = tokens + self.pos_embed
        for block in self.blocks:
            tokens = block(tokens)
        if self.pool == "cls":
            pooled = self.norm(tokens)[:, 0, :]
        else:
            pooled = self.norm(tokens.mean(axis=1))
        return self.head(pooled)

    def loss(self, images, labels) -> Tensor:
        return F.cross_entropy(self.forward(images), labels)


class ViTClassifier(PhishingDetector):
    """ViT fine-tuned on bytecode images.

    Args:
        encoding: "r2d2" (raw bytes as RGB) or "freq" (frequency lookup).
        image_size / patch_size / dim / depth / n_heads: Architecture.
        bins: Intensity-quantization levels of the stem.
        pool: "mean" (GAP over patch tokens) or "cls" (class token).
        augment_replicas: Byte-roll copies per training sample (≥1).
        epochs / batch_size / lr: Training schedule.
    """

    category = "VM"

    def __init__(
        self,
        encoding: str = "r2d2",
        image_size: int = 16,
        patch_size: int = 4,
        dim: int = 48,
        depth: int = 1,
        n_heads: int = 2,
        bins: int = 16,
        pool: str = "mean",
        augment_replicas: int = 3,
        epochs: int = 30,
        batch_size: int = 32,
        lr: float = 3e-3,
        seed: int = 0,
    ):
        if encoding not in ("r2d2", "freq"):
            raise ValueError(f"unknown encoding {encoding!r}")
        self.encoding = encoding
        self.image_size = image_size
        self.patch_size = patch_size
        self.dim = dim
        self.depth = depth
        self.n_heads = n_heads
        self.bins = bins
        self.pool = pool
        self.augment_replicas = augment_replicas
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self.name = "ViT+R2D2" if encoding == "r2d2" else "ViT+Freq"

    def _encode(self, bytecodes) -> np.ndarray:
        if self.encoding == "r2d2":
            return rgb_images(bytecodes, self.image_size)
        return self._freq_encoder.transform(bytecodes)

    def fit(self, bytecodes, labels) -> "ViTClassifier":
        rng = np.random.default_rng(self.seed)
        if self.encoding == "freq":
            self._freq_encoder = FrequencyImageEncoder(self.image_size)
            self._freq_encoder.fit(bytecodes)
        augmented, targets = _augment_roll(
            bytecodes, labels, max(self.augment_replicas, 1), rng
        )
        images = self._encode(augmented)
        self.network_ = _ViTNetwork(
            self.image_size, self.patch_size, self.dim, self.depth,
            self.n_heads, self.bins, self.pool, self.seed,
        )
        self.trainer_ = Trainer(
            self.network_,
            TrainingConfig(
                epochs=self.epochs, batch_size=self.batch_size, lr=self.lr,
                seed=self.seed,
            ),
        ).fit(images, targets)
        return self

    def predict_proba(self, bytecodes) -> np.ndarray:
        images = self._encode(bytecodes)
        with no_grad():
            logits = self.network_.forward(images)
        return F.softmax(Tensor(logits.data)).data

    # ------------------------------------------------------------------ #
    # Persistence (see repro.artifacts)
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        from repro.nn import serialize

        if getattr(self, "network_", None) is None:
            raise RuntimeError(f"{self.name} is not fitted; call fit() first")
        state = {"network": serialize.state_dict(self.network_)}
        if self.encoding == "freq":
            state["freq_encoder"] = self._freq_encoder.state_dict()
        return state

    def load_state(self, state: dict) -> "ViTClassifier":
        from repro.nn import serialize

        if self.encoding == "freq":
            self._freq_encoder = FrequencyImageEncoder(
                self.image_size
            ).load_state(state["freq_encoder"])
        self.network_ = _ViTNetwork(
            self.image_size, self.patch_size, self.dim, self.depth,
            self.n_heads, self.bins, self.pool, self.seed,
        )
        serialize.load_state_dict(self.network_, state["network"])
        return self


class _ECA(Module):
    """Efficient Channel Attention: k-tap 1-D conv over channel stats."""

    def __init__(self, kernel_size: int = 3):
        super().__init__()
        if kernel_size % 2 == 0:
            raise ValueError("ECA kernel size must be odd")
        self.kernel_size = kernel_size
        self.taps = Parameter(np.full(kernel_size, 1.0 / kernel_size))

    def forward(self, x: Tensor) -> Tensor:
        descriptor = x.mean(axis=(2, 3))  # (B, C)
        batch, channels = descriptor.shape
        half = self.kernel_size // 2
        padded = concat(
            [
                Tensor(np.zeros((batch, half))),
                descriptor,
                Tensor(np.zeros((batch, half))),
            ],
            axis=1,
        )
        attended = None
        for offset in range(self.kernel_size):
            term = padded[:, offset : offset + channels] * self.taps[offset]
            attended = term if attended is None else attended + term
        gate = attended.sigmoid().reshape(batch, channels, 1, 1)
        return x * gate


class _Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


def _make_norm(kind: str, channels: int) -> Module:
    if kind == "batch":
        return BatchNorm2d(channels)
    if kind == "none":
        return _Identity()
    raise ValueError(f"unknown norm {kind!r}")


class _MBConvBlock(Module):
    """Depthwise conv + norm + ReLU + ECA + pointwise projection.

    ``norm="none"`` is the CPU-scale default: this framework's BatchNorm
    backward treats batch statistics as constants, which stalls very
    narrow nets; the one-hot quantized inputs are already well-scaled.
    """

    def __init__(self, in_channels, out_channels, stride, seed, norm="none"):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.depthwise = Conv2d(
            in_channels, in_channels, kernel_size=3, stride=stride,
            padding=1, groups=in_channels, rng=rng,
        )
        self.norm1 = _make_norm(norm, in_channels)
        self.eca = _ECA()
        self.pointwise = Conv2d(
            in_channels, out_channels, kernel_size=1, rng=rng
        )
        self.norm2 = _make_norm(norm, out_channels)

    def forward(self, x: Tensor) -> Tensor:
        x = self.norm1(self.depthwise(x)).relu()
        x = self.eca(x)
        return self.norm2(self.pointwise(x)).relu()


class _EcaEfficientNet(Module):
    """Scaled-down EfficientNet-B0 trunk over quantized planes."""

    def __init__(self, widths, bins, seed, norm="none"):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.bins = bins
        stem_width, *block_widths = widths
        self.stem = Conv2d(3 * bins, stem_width, kernel_size=3, stride=2,
                           padding=1, rng=rng)
        self.stem_norm = _make_norm(norm, stem_width)
        self.blocks = []
        previous = stem_width
        for index, width in enumerate(block_widths):
            self.blocks.append(
                _MBConvBlock(previous, width, stride=2, seed=seed + index + 1,
                             norm=norm)
            )
            previous = width
        self.pool = GlobalAvgPool2d()
        self.head = Linear(previous, 2, rng=rng)

    def forward(self, images: np.ndarray) -> Tensor:
        planes = quantize_planes(np.asarray(images), self.bins)
        x = Tensor(planes.transpose(0, 3, 1, 2))  # NHWC → NCHW
        x = self.stem_norm(self.stem(x)).relu()
        for block in self.blocks:
            x = block(x)
        return self.head(self.pool(x))

    def loss(self, images, labels) -> Tensor:
        return F.cross_entropy(self.forward(images), labels)


class EcaEfficientNetClassifier(PhishingDetector):
    """ECA+EfficientNet on R2D2-style bytecode images."""

    category = "VM"
    name = "ECA+EfficientNet"

    def __init__(
        self,
        image_size: int = 16,
        widths: tuple[int, ...] = (16, 24, 32),
        bins: int = 16,
        norm: str = "none",
        augment_replicas: int = 3,
        epochs: int = 25,
        batch_size: int = 32,
        lr: float = 5e-3,
        seed: int = 0,
    ):
        self.image_size = image_size
        self.widths = widths
        self.bins = bins
        self.norm = norm
        self.augment_replicas = augment_replicas
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed

    def fit(self, bytecodes, labels) -> "EcaEfficientNetClassifier":
        rng = np.random.default_rng(self.seed)
        augmented, targets = _augment_roll(
            bytecodes, labels, max(self.augment_replicas, 1), rng
        )
        images = rgb_images(augmented, self.image_size)
        self.network_ = _EcaEfficientNet(self.widths, self.bins, self.seed,
                                         norm=self.norm)
        self.trainer_ = Trainer(
            self.network_,
            TrainingConfig(
                epochs=self.epochs, batch_size=self.batch_size, lr=self.lr,
                seed=self.seed,
            ),
        ).fit(images, targets)
        return self

    def predict_proba(self, bytecodes) -> np.ndarray:
        images = rgb_images(bytecodes, self.image_size)
        with no_grad():
            logits = self.network_.forward(images)
        return F.softmax(Tensor(logits.data)).data

    # ------------------------------------------------------------------ #
    # Persistence (see repro.artifacts)
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        from repro.nn import serialize

        if getattr(self, "network_", None) is None:
            raise RuntimeError(f"{self.name} is not fitted; call fit() first")
        return {"network": serialize.state_dict(self.network_)}

    def load_state(self, state: dict) -> "EcaEfficientNetClassifier":
        from repro.nn import serialize

        self.network_ = _EcaEfficientNet(self.widths, self.bins, self.seed,
                                         norm=self.norm)
        serialize.load_state_dict(self.network_, state["network"])
        return self
