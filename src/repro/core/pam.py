"""Post-hoc Analysis Module (PAM) — Fig. 1 step ➑, §IV-E.

Statistical validation of the MEM results, exactly as the paper's R
scripts proceed:

1. Shapiro–Wilk normality on every (model, metric) distribution — the
   parametric-vs-nonparametric fork;
2. Kruskal–Wallis per metric across models, with Holm–Bonferroni
   adjustment across the four metrics (Table III);
3. Dunn's pairwise tests with Holm correction to locate the diverging
   model pairs (Fig. 4), plus the within- vs cross-category significance
   ratios the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.bootstrap import BootstrapInterval, bootstrap_ci
from repro.analysis.stats import (
    PairwiseResult,
    TestResult,
    dunn_test,
    holm_bonferroni,
    kruskal_wallis,
    shapiro_wilk,
)
from repro.core.mem import EvaluationResult
from repro.core.registry import category_of

__all__ = ["PostHocAnalysisModule", "PostHocReport"]

METRICS = ("accuracy", "f1", "precision", "recall")


@dataclass
class PostHocReport:
    """Everything §IV-E reports."""

    normality: dict[tuple[str, str], TestResult] = field(default_factory=dict)
    normality_violations: int = 0
    kruskal: dict[str, TestResult] = field(default_factory=dict)
    kruskal_adjusted_p: dict[str, float] = field(default_factory=dict)
    dunn: dict[str, list[PairwiseResult]] = field(default_factory=dict)
    intervals: dict[tuple[str, str], BootstrapInterval] = field(
        default_factory=dict
    )

    def significant_pair_fraction(self, metric: str) -> float:
        """Fraction of model pairs with a significant Dunn difference."""
        results = self.dunn[metric]
        return float(np.mean([r.significant() for r in results]))

    def pair_fraction_by_category(
        self, metric: str, same_category: bool
    ) -> float:
        """Significant fraction among same- or cross-category pairs."""
        results = [
            r for r in self.dunn[metric]
            if (category_of(r.group_a) == category_of(r.group_b))
            == same_category
        ]
        if not results:
            return float("nan")
        return float(np.mean([r.significant() for r in results]))

    def table3(self) -> str:
        """Render the Table III layout."""
        lines = [f"{'Metric':10s} {'H':>10s} {'p':>12s} {'p_adj':>12s}"]
        for metric in METRICS:
            test = self.kruskal[metric]
            lines.append(
                f"{metric:10s} {test.statistic:10.2f} "
                f"{test.p_value:12.3e} {self.kruskal_adjusted_p[metric]:12.3e}"
            )
        return "\n".join(lines)


class PostHocAnalysisModule:
    """Run the §IV-E battery over an :class:`EvaluationResult`.

    Args:
        exclude: Models dropped before the analysis. The paper excludes
            ESCORT (ineffective on the task) and the β LM variants (worst
            variant of each LM).
    """

    def __init__(self, exclude: tuple[str, ...] = ("ESCORT", "GPT-2β", "T5β")):
        self.exclude = tuple(exclude)

    def analyze(self, evaluation: EvaluationResult) -> PostHocReport:
        models = [m for m in evaluation.models() if m not in self.exclude]
        if len(models) < 2:
            raise ValueError("post-hoc analysis needs at least two models")
        report = PostHocReport()

        for model in models:
            for metric in METRICS:
                values = evaluation.metric_values(model, metric)
                try:
                    result = shapiro_wilk(values)
                except ValueError:
                    # Degenerate (constant) metric distribution: counts as
                    # a normality violation, like a hard rejection.
                    result = TestResult(
                        statistic=float("nan"), p_value=0.0, name="shapiro-wilk"
                    )
                report.normality[(model, metric)] = result
                if result.p_value < 0.05:
                    report.normality_violations += 1

        raw_p = []
        for metric in METRICS:
            groups = [evaluation.metric_values(m, metric) for m in models]
            test = kruskal_wallis(groups)
            report.kruskal[metric] = test
            raw_p.append(test.p_value)
        adjusted = holm_bonferroni(raw_p)
        report.kruskal_adjusted_p = dict(zip(METRICS, adjusted))

        for metric in METRICS:
            groups = {
                m: evaluation.metric_values(m, metric) for m in models
            }
            report.dunn[metric] = dunn_test(groups, adjust=True)

        # Per-(model, metric) bootstrap CIs — the "generalize from n to N"
        # quantification (§V); BCa corrects per-fold skew.
        for model in models:
            for metric in METRICS:
                values = evaluation.metric_values(model, metric)
                report.intervals[(model, metric)] = bootstrap_ci(
                    values, n_resamples=500, seed=0
                )
        return report
