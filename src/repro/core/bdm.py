"""Bytecode Disassembler Module (BDM) — Fig. 1 steps ➎–➏.

Disassembles extracted bytecode into (mnemonic, operand, gas) triples and
persists them as the CSV files the feature extractors consume. The heavy
lifting lives in :mod:`repro.evm.disassembler`; this module adds the
batch/file layer of the framework.
"""

from __future__ import annotations

import pathlib

from repro.evm.disassembler import Disassembler
from repro.evm.instruction import Instruction

__all__ = ["BytecodeDisassemblerModule"]


class BytecodeDisassemblerModule:
    """Batch disassembly with optional CSV persistence.

    Args:
        output_dir: When given, :meth:`disassemble_to_csv` writes one
            ``<address>.csv`` per contract there.
    """

    def __init__(self, output_dir: str | pathlib.Path | None = None):
        self.output_dir = pathlib.Path(output_dir) if output_dir else None

    def disassemble(self, bytecode: bytes | str) -> list[Instruction]:
        """One contract's instruction list."""
        return Disassembler(bytecode).disassemble()

    def triples(self, bytecode: bytes | str) -> list[tuple[str, str, float]]:
        """The paper's (mnemonic, operand, gas) rows for one contract."""
        return [i.as_triple() for i in self.disassemble(bytecode)]

    def disassemble_batch(
        self, bytecodes: list[bytes]
    ) -> list[list[Instruction]]:
        return [self.disassemble(code) for code in bytecodes]

    def disassemble_to_csv(self, address: str, bytecode: bytes) -> pathlib.Path:
        """Write one contract's disassembly CSV; returns the file path."""
        if self.output_dir is None:
            raise RuntimeError("BDM was constructed without an output_dir")
        self.output_dir.mkdir(parents=True, exist_ok=True)
        path = self.output_dir / f"{address.lower()}.csv"
        path.write_text(Disassembler(bytecode).to_csv())
        return path

    def opcode_usage(self, bytecodes: list[bytes]) -> dict[str, list[int]]:
        """Per-contract usage counts per mnemonic (feeds Fig. 3).

        Returns mnemonic → list of per-contract counts (zeros included),
        so downstream code can draw usage distributions per opcode.
        """
        per_contract: list[dict[str, int]] = []
        mnemonics: set[str] = set()
        for bytecode in bytecodes:
            counts: dict[str, int] = {}
            for instruction in Disassembler(bytecode).instructions():
                counts[instruction.mnemonic] = counts.get(instruction.mnemonic, 0) + 1
            per_contract.append(counts)
            mnemonics.update(counts)
        return {
            name: [counts.get(name, 0) for counts in per_contract]
            for name in sorted(mnemonics)
        }
