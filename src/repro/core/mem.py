"""Model Evaluation Module (MEM) — Fig. 1 step ➐.

Systematic k-fold × runs training/evaluation of the registered models:
the paper's main protocol is 10-fold cross-validation × 3 runs = 30 trials
per model (§IV-D), with wall-clock accounting for the scalability study
(Fig. 7).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.registry import category_of, create_model
from repro.datagen.dataset import Dataset
from repro.ml.flat import precompile
from repro.ml.metrics import Metrics, classification_metrics

__all__ = ["TrialRecord", "EvaluationResult", "ModelEvaluationModule"]


@dataclass(frozen=True)
class TrialRecord:
    """One (model, run, fold) evaluation."""

    model: str
    run: int
    fold: int
    metrics: Metrics
    train_seconds: float
    inference_seconds: float

    @property
    def category(self) -> str:
        return category_of(self.model)


@dataclass
class EvaluationResult:
    """All trials of one evaluation campaign."""

    trials: list[TrialRecord] = field(default_factory=list)

    def for_model(self, model: str) -> list[TrialRecord]:
        return [t for t in self.trials if t.model == model]

    def models(self) -> list[str]:
        ordered: list[str] = []
        for trial in self.trials:
            if trial.model not in ordered:
                ordered.append(trial.model)
        return ordered

    def metric_values(self, model: str, metric: str) -> np.ndarray:
        """All trial values of one metric for one model."""
        return np.array(
            [t.metrics.as_dict()[metric] for t in self.for_model(model)]
        )

    def mean_metrics(self, model: str) -> Metrics:
        trials = self.for_model(model)
        if not trials:
            raise KeyError(f"no trials recorded for {model!r}")
        return Metrics(
            accuracy=float(np.mean([t.metrics.accuracy for t in trials])),
            f1=float(np.mean([t.metrics.f1 for t in trials])),
            precision=float(np.mean([t.metrics.precision for t in trials])),
            recall=float(np.mean([t.metrics.recall for t in trials])),
        )

    def mean_times(self, model: str) -> tuple[float, float]:
        """(train_seconds, inference_seconds) averaged over trials.

        Raises:
            KeyError: If no trials were recorded for ``model`` (matching
                :meth:`mean_metrics`, instead of returning NaN with a
                numpy RuntimeWarning).
        """
        trials = self.for_model(model)
        if not trials:
            raise KeyError(f"no trials recorded for {model!r}")
        return (
            float(np.mean([t.train_seconds for t in trials])),
            float(np.mean([t.inference_seconds for t in trials])),
        )

    def category_mean(self, category: str, metric: str) -> float:
        values = [
            t.metrics.as_dict()[metric]
            for t in self.trials
            if t.category == category
        ]
        if not values:
            raise KeyError(f"no trials in category {category!r}")
        return float(np.mean(values))

    def table(self) -> str:
        """Render the Table II layout (mean metrics per model)."""
        lines = [
            f"{'Model':24s} {'Accuracy (%)':>12s} {'F1 Score':>9s} "
            f"{'Precision':>10s} {'Recall':>8s}"
        ]
        for model in self.models():
            mean = self.mean_metrics(model)
            lines.append(
                f"{model:24s} {mean.accuracy * 100:12.2f} {mean.f1 * 100:9.2f} "
                f"{mean.precision * 100:10.2f} {mean.recall * 100:8.2f}"
            )
        return "\n".join(lines)


class ModelEvaluationModule:
    """Train/evaluate registered models under k-fold × runs.

    Args:
        n_folds: Cross-validation folds (paper: 10).
        n_runs: Independent repetitions (paper: 3).
        seed: Base seed; fold assignments and model seeds derive from it.
        cache: Optional :class:`~repro.serve.cache.FeatureCache`. When
            given, every cache-aware model decodes bytecode through it, so
            a campaign decodes each unique bytecode once instead of once
            per model × fold × run.
        store: Optional :class:`~repro.artifacts.ModelStore`. When given,
            the campaign's best fitted candidate (highest trial accuracy)
            is persisted — 30 trials no longer end with every fitted model
            garbage-collected; the winner is servable immediately.
        persist_tag: Store tag for that candidate (default ``"best"``).
    """

    def __init__(
        self, n_folds: int = 10, n_runs: int = 3, seed: int = 0, cache=None,
        store=None, persist_tag: str = "best",
    ):
        if n_folds < 2:
            raise ValueError("n_folds must be at least 2")
        if n_runs < 1:
            raise ValueError("n_runs must be at least 1")
        self.n_folds = n_folds
        self.n_runs = n_runs
        self.seed = seed
        self.cache = cache
        self.store = store
        self.persist_tag = persist_tag
        #: Version digest of the last persisted best candidate (or None).
        self.last_persisted: str | None = None

    def evaluate(
        self,
        dataset: Dataset,
        model_names: list[str],
        model_factory=create_model,
    ) -> EvaluationResult:
        """Run the full campaign; returns every trial."""
        result = EvaluationResult()
        best = None  # (accuracy, record, model, train split)
        for run in range(self.n_runs):
            folds = dataset.stratified_kfold(
                self.n_folds, seed=self.seed + 1000 * run
            )
            for fold_index, (train_idx, test_idx) in enumerate(folds):
                train, test = dataset.subset(train_idx), dataset.subset(test_idx)
                for name in model_names:
                    record, model = self._run_trial(
                        name, model_factory, train, test, run, fold_index
                    )
                    result.trials.append(record)
                    best = self._track_best(best, record, model, train)
        self._persist_best(best)
        return result

    def evaluate_single_split(
        self,
        train: Dataset,
        test: Dataset,
        model_names: list[str],
        model_factory=create_model,
        run: int = 0,
        fold: int = 0,
    ) -> EvaluationResult:
        """Evaluate on one fixed split (scalability / time-resistance)."""
        result = EvaluationResult()
        best = None
        for name in model_names:
            record, model = self._run_trial(
                name, model_factory, train, test, run, fold
            )
            result.trials.append(record)
            best = self._track_best(best, record, model, train)
        self._persist_best(best)
        return result

    # ------------------------------------------------------------------ #

    def _track_best(self, best, record, model, train):
        """Keep (only) the strongest fitted candidate when persisting."""
        if self.store is None:
            return None
        if best is None or record.metrics.accuracy > best[0]:
            return (record.metrics.accuracy, record, model, train)
        return best

    def _persist_best(self, best) -> None:
        if self.store is None or best is None:
            return
        __, record, model, train = best
        self.last_persisted = self.store.put(
            model,
            model_name=record.model,
            dataset_fingerprint=train.fingerprint(),
            metrics=record.metrics.as_dict(),
            extra={"run": record.run, "fold": record.fold,
                   "protocol": f"{self.n_folds}-fold x {self.n_runs}"},
            tags=(self.persist_tag,),
        )

    def _run_trial(
        self, name, model_factory, train: Dataset, test: Dataset, run, fold
    ) -> tuple[TrialRecord, object]:
        model = model_factory(name, seed=self.seed + 7919 * run + fold)
        if self.cache is not None:
            self.cache.attach(model)
        started = time.perf_counter()
        model.fit(train.bytecodes, train.labels)
        # Ensemble models compile to the flat inference engine here, as
        # part of training cost, so inference_seconds times pure
        # vectorized prediction — the figure the Fig. 7 bench reports.
        precompile(model)
        train_seconds = time.perf_counter() - started
        started = time.perf_counter()
        predictions = model.predict(test.bytecodes)
        inference_seconds = time.perf_counter() - started
        record = TrialRecord(
            model=name,
            run=run,
            fold=fold,
            metrics=classification_metrics(test.labels, predictions),
            train_seconds=train_seconds,
            inference_seconds=inference_seconds,
        )
        return record, model
