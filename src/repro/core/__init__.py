"""The PhishingHook framework core (Fig. 1).

* :mod:`repro.core.bem` — Bytecode Extraction Module: crawls contract
  lists (BigQuery), scrapes labels (explorer) and pulls bytecode over
  JSON-RPC (``eth_getCode``),
* :mod:`repro.core.bdm` — Bytecode Disassembler Module: bytecode → opcode
  CSV rows,
* :mod:`repro.core.mem` — Model Evaluation Module: k-fold × runs training
  and evaluation with time accounting,
* :mod:`repro.core.pam` — Post-hoc Analysis Module: Shapiro–Wilk,
  Kruskal–Wallis, Dunn with Holm–Bonferroni,
* :mod:`repro.core.registry` — the 16-model registry behind Table II,
* :mod:`repro.core.tuning` — define-by-run hyperparameter search
  (the Optuna substitute),
* :mod:`repro.core.pipeline` — end-to-end orchestration.
"""

from repro.core.bdm import BytecodeDisassemblerModule
from repro.core.bem import BytecodeExtractionModule
from repro.core.live import Alert, LiveDetector
from repro.core.mem import EvaluationResult, ModelEvaluationModule, TrialRecord
from repro.core.pam import PostHocAnalysisModule
from repro.core.pipeline import PhishingHook, PipelineConfig
from repro.core.registry import MODEL_CATEGORIES, MODEL_NAMES, create_model
from repro.core.tuning import GridSearch, RandomSearch, SearchSpace

__all__ = [
    "Alert",
    "LiveDetector",
    "BytecodeDisassemblerModule",
    "BytecodeExtractionModule",
    "EvaluationResult",
    "ModelEvaluationModule",
    "TrialRecord",
    "PostHocAnalysisModule",
    "PhishingHook",
    "PipelineConfig",
    "MODEL_CATEGORIES",
    "MODEL_NAMES",
    "create_model",
    "GridSearch",
    "RandomSearch",
    "SearchSpace",
]
