"""End-to-end PhishingHook orchestration (all of Fig. 1).

``PhishingHook.run()`` wires a simulated data plane through the four
modules: BEM crawl → dedup/balancing → MEM evaluation → PAM statistics.
This is the programmatic equivalent of the paper's full experimental
workflow and the entry point the examples use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chain.bigquery import BigQueryClient
from repro.chain.rpc import JsonRpcClient, JsonRpcServer
from repro.core.bdm import BytecodeDisassemblerModule
from repro.core.bem import BytecodeExtractionModule, ExtractedContract
from repro.core.mem import EvaluationResult, ModelEvaluationModule
from repro.core.pam import PostHocAnalysisModule, PostHocReport
from repro.core.registry import MODEL_NAMES, create_model
from repro.datagen.corpus import Corpus
from repro.datagen.dataset import Dataset
from repro.serve.cache import FeatureCache

__all__ = ["PipelineConfig", "PhishingHook"]


@dataclass
class PipelineConfig:
    """Pipeline knobs (paper values in parentheses)."""

    model_names: tuple[str, ...] = MODEL_NAMES
    n_folds: int = 3          # (10)
    n_runs: int = 1           # (3)
    seed: int = 0
    balance_classes: bool = True
    run_post_hoc: bool = True
    cache_max_entries: int = 8192  # feature-cache LRU bound


@dataclass
class PipelineOutcome:
    """Artifacts of one full run."""

    contracts: list[ExtractedContract]
    dataset: Dataset
    evaluation: EvaluationResult
    post_hoc: PostHocReport | None = None


class PhishingHook:
    """The framework facade over a (simulated) Ethereum data plane.

    Args:
        corpus: A built :class:`~repro.datagen.corpus.Corpus`, providing
            the chain, explorer and ground truth.
        config: Pipeline configuration.
    """

    def __init__(self, corpus: Corpus, config: PipelineConfig | None = None):
        self.corpus = corpus
        self.config = config or PipelineConfig()
        self.bem = BytecodeExtractionModule(
            bigquery=BigQueryClient(corpus.chain),
            explorer=corpus.explorer,
            rpc=JsonRpcClient(JsonRpcServer(corpus.chain)),
        )
        self.bdm = BytecodeDisassemblerModule()
        self.feature_cache = FeatureCache(
            max_entries=self.config.cache_max_entries
        )
        self.mem = ModelEvaluationModule(
            n_folds=self.config.n_folds,
            n_runs=self.config.n_runs,
            seed=self.config.seed,
            cache=self.feature_cache,
        )
        self.pam = PostHocAnalysisModule()
        self._fitted_models: dict[tuple[str, str], object] = {}
        self._default_dataset: Dataset | None = None

    # ------------------------------------------------------------------ #

    def gather(self) -> list[ExtractedContract]:
        """BEM crawl over the full study window (Fig. 1 ➊–➍)."""
        return self.bem.crawl()

    def build_dataset(
        self, contracts: list[ExtractedContract]
    ) -> Dataset:
        """Dedup + balance into the evaluation dataset (§III)."""
        unique = self.bem.deduplicate(contracts)
        phishing = [c for c in unique if c.is_phishing]
        benign = [c for c in unique if not c.is_phishing]
        rng = np.random.default_rng(self.config.seed)
        if self.config.balance_classes:
            count = min(len(phishing), len(benign))
            rng.shuffle(phishing)
            rng.shuffle(benign)
            phishing, benign = phishing[:count], benign[:count]
        chosen = phishing + benign
        order = rng.permutation(len(chosen))
        chosen = [chosen[i] for i in order]
        return Dataset(
            bytecodes=[c.bytecode for c in chosen],
            labels=np.array([int(c.is_phishing) for c in chosen]),
            months=np.array([c.month for c in chosen]),
            addresses=[c.address for c in chosen],
        )

    def run(self) -> PipelineOutcome:
        """Execute the complete Fig. 1 workflow."""
        contracts = self.gather()
        dataset = self.build_dataset(contracts)
        evaluation = self.mem.evaluate(
            dataset, list(self.config.model_names), model_factory=create_model
        )
        post_hoc = None
        if self.config.run_post_hoc:
            analyzable = [
                m for m in evaluation.models()
                if m not in self.pam.exclude
            ]
            if len(analyzable) >= 2:
                post_hoc = self.pam.analyze(evaluation)
        return PipelineOutcome(
            contracts=contracts,
            dataset=dataset,
            evaluation=evaluation,
            post_hoc=post_hoc,
        )

    # ------------------------------------------------------------------ #

    def _resolve_train_dataset(self, train_dataset: Dataset | None) -> Dataset:
        if train_dataset is not None:
            return train_dataset
        if self._default_dataset is None:
            self._default_dataset = self.build_dataset(self.gather())
        return self._default_dataset

    def fitted_model(
        self,
        model_name: str = "Random Forest",
        train_dataset: Dataset | None = None,
        reuse: bool = True,
    ):
        """A model fitted on ``train_dataset`` (default: the full corpus).

        Fitted models are cached by (model name, dataset fingerprint), so
        repeated scans share one training run; ``reuse=False`` forces a
        fresh train (and does not populate the cache).
        """
        train_dataset = self._resolve_train_dataset(train_dataset)
        key = (model_name, train_dataset.fingerprint())
        if reuse and key in self._fitted_models:
            return self._fitted_models[key]
        model = create_model(model_name, seed=self.config.seed)
        self.feature_cache.attach(model)
        model.fit(train_dataset.bytecodes, train_dataset.labels)
        if reuse:
            self._fitted_models[key] = model
        return model

    def classify_address(self, address: str, model_name: str = "Random Forest",
                         train_dataset: Dataset | None = None,
                         model=None, reuse_model: bool = True):
        """Classify a single deployed contract with a fitted model.

        Returns ``(is_phishing, probability)`` — the "scan one contract
        before interacting with it" usage the paper motivates. The fitted
        model is cached by (model name, dataset fingerprint) and reused on
        repeated calls (the seed version retrained from scratch every
        time); pass a pre-fitted ``model`` to skip training entirely, or
        ``reuse_model=False`` to force the old retrain-per-call behavior.
        """
        if model is None:
            model = self.fitted_model(
                model_name, train_dataset, reuse=reuse_model
            )
        code = self.bem.rpc.get_code(address)
        if not code:
            raise ValueError(f"no deployed code at {address}")
        probability = float(model.predict_proba([code])[0, 1])
        return probability >= 0.5, probability

    def scan_service(
        self,
        model_name: str = "Random Forest",
        train_dataset: Dataset | None = None,
    ):
        """A batched :class:`~repro.serve.service.ScanService` on this hook.

        Shares the hook's feature cache and fitted-model cache, and scans
        through the hook's RPC client.
        """
        from repro.serve.service import ScanService

        train_dataset = self._resolve_train_dataset(train_dataset)
        return ScanService(
            model_name,
            model=self.fitted_model(model_name, train_dataset),
            rpc=self.bem.rpc,
            cache=self.feature_cache,
            seed=self.config.seed,
            # Stable namespace: services wrapping the same (model, data)
            # share prediction-cache hits across scan_service() calls.
            namespace=ScanService.prediction_namespace(
                model_name, self.config.seed, train_dataset.fingerprint()
            ),
        )
