"""Bytecode Extraction Module (BEM) — Fig. 1 steps ➊–➍.

Data gathering: pull (address, deploy time) rows from the BigQuery-style
service, scrape the explorer for ``Phish/Hack`` flags, then extract each
contract's deployed bytecode through the JSON-RPC ``eth_getCode`` endpoint.
The result is the raw labeled corpus that dataset construction dedups and
balances.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.bigquery import BigQueryClient
from repro.chain.explorer import Explorer
from repro.chain.rpc import JsonRpcClient
from repro.chain.timeline import timestamp_to_month

__all__ = ["ExtractedContract", "BytecodeExtractionModule"]


@dataclass(frozen=True)
class ExtractedContract:
    """One labeled, bytecode-bearing contract from the crawl."""

    address: str
    bytecode: bytes
    is_phishing: bool
    block_timestamp: int

    @property
    def month(self) -> int:
        return timestamp_to_month(self.block_timestamp)


@dataclass
class CrawlStats:
    """Accounting for one BEM crawl."""

    candidates: int = 0
    scraped: int = 0
    flagged: int = 0
    empty_code: int = 0
    extracted: int = 0
    rpc_calls: int = 0
    errors: list[str] = field(default_factory=list)


class BytecodeExtractionModule:
    """Crawl + label + extract pipeline over the data services."""

    def __init__(
        self,
        bigquery: BigQueryClient,
        explorer: Explorer,
        rpc: JsonRpcClient,
        batch_size: int = 500,
    ):
        self.bigquery = bigquery
        self.explorer = explorer
        self.rpc = rpc
        self.batch_size = batch_size
        self.stats = CrawlStats()

    def crawl(
        self,
        start_timestamp: int | None = None,
        end_timestamp: int | None = None,
        limit: int | None = None,
        scrape_timestamp: int | None = None,
    ) -> list[ExtractedContract]:
        """Run the full extraction over a deployment window.

        Args:
            start_timestamp / end_timestamp: BigQuery window bounds.
            limit: Optional cap on candidate rows (testing).
            scrape_timestamp: Label-visibility time passed to the explorer
                (None = current snapshot).
        """
        stats = CrawlStats()
        self.stats = stats
        contracts: list[ExtractedContract] = []

        offset = 0
        while True:
            job = self.bigquery.list_contracts(
                start_timestamp=start_timestamp,
                end_timestamp=end_timestamp,
                limit=self.batch_size,
                offset=offset,
            )
            if not job.rows:
                break
            for row in job.rows:
                stats.candidates += 1
                flagged = self.explorer.is_phishing(
                    row.address, at_timestamp=scrape_timestamp
                )
                stats.scraped += 1
                if flagged:
                    stats.flagged += 1
                try:
                    code = self.rpc.get_code(row.address)
                    stats.rpc_calls += 1
                except Exception as exc:  # noqa: BLE001 - crawl keeps going
                    stats.errors.append(f"{row.address}: {exc}")
                    continue
                if not code:
                    stats.empty_code += 1
                    continue
                contracts.append(
                    ExtractedContract(
                        address=row.address,
                        bytecode=code,
                        is_phishing=flagged,
                        block_timestamp=row.block_timestamp,
                    )
                )
                stats.extracted += 1
                if limit is not None and stats.extracted >= limit:
                    return contracts
            offset += self.batch_size
        return contracts

    @staticmethod
    def deduplicate(
        contracts: list[ExtractedContract],
    ) -> list[ExtractedContract]:
        """Keep the first contract per distinct bytecode (§III)."""
        seen: set[bytes] = set()
        unique: list[ExtractedContract] = []
        for contract in contracts:
            if contract.bytecode in seen:
                continue
            seen.add(contract.bytecode)
            unique.append(contract)
        return unique
