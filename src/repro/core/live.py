"""Live detection — the paper's §VII future work, implemented.

"While the scope of PhishingHook is to detect phishing smart contracts
before they are deployed, we consider live detection an interesting future
work." This module provides that deployment mode: a
:class:`LiveDetector` watches a chain for new contract deployments, scores
each one as it lands, and raises alerts above a confidence threshold —
with the per-scan latency accounting §IV-F motivates (wallet users sign
within seconds).

The monitor is poll-based over the simulated ledger (block-height cursor),
matching how production watchers tail JSON-RPC nodes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.chain.blockchain import Blockchain
from repro.models.detector import PhishingDetector

__all__ = ["Alert", "LiveDetector", "MonitorStats"]


@dataclass(frozen=True)
class Alert:
    """One flagged deployment."""

    address: str
    probability: float
    block_number: int
    timestamp: int
    latency_seconds: float


@dataclass
class MonitorStats:
    """Aggregate accounting for a monitoring session."""

    scanned: int = 0
    flagged: int = 0
    skipped_empty: int = 0
    total_latency_seconds: float = 0.0

    @property
    def mean_latency_seconds(self) -> float:
        return self.total_latency_seconds / self.scanned if self.scanned else 0.0


class LiveDetector:
    """Score new deployments as they appear on a chain.

    Args:
        chain: The ledger to watch.
        model: A *fitted* detector (training happens offline, ahead of
            monitoring — the latency budget covers scoring only).
        threshold: Alert when P(phishing) ≥ threshold.
        on_alert: Optional callback invoked with each :class:`Alert`.
    """

    def __init__(
        self,
        chain: Blockchain,
        model: PhishingDetector,
        threshold: float = 0.5,
        on_alert=None,
    ):
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.chain = chain
        self.model = model
        self.threshold = threshold
        self.on_alert = on_alert
        self.stats = MonitorStats()
        self._seen: set[str] = set()
        self.alerts: list[Alert] = []

    def mark_existing_as_seen(self) -> int:
        """Skip contracts already deployed; monitor only the future."""
        existing = {account.address for account in self.chain.accounts()}
        self._seen |= existing
        return len(existing)

    def poll(self) -> list[Alert]:
        """Scan all unseen deployments; returns new alerts (oldest first)."""
        new_alerts: list[Alert] = []
        for account in self.chain.accounts():
            if account.address in self._seen:
                continue
            self._seen.add(account.address)
            if not account.code:
                self.stats.skipped_empty += 1
                continue
            started = time.perf_counter()
            probability = float(
                self.model.predict_proba([account.code])[0, 1]
            )
            latency = time.perf_counter() - started
            self.stats.scanned += 1
            self.stats.total_latency_seconds += latency
            if probability >= self.threshold:
                transaction = next(
                    (
                        t for t in self.chain.transactions()
                        if t.contract_address == account.address
                    ),
                    None,
                )
                alert = Alert(
                    address=account.address,
                    probability=probability,
                    block_number=(
                        transaction.block_number if transaction else 0
                    ),
                    timestamp=account.deployed_at,
                    latency_seconds=latency,
                )
                new_alerts.append(alert)
                self.alerts.append(alert)
                self.stats.flagged += 1
                if self.on_alert is not None:
                    self.on_alert(alert)
        return new_alerts

    def precision_against(self, ground_truth: set[str]) -> float:
        """Alert precision given the true phishing address set."""
        if not self.alerts:
            return 0.0
        hits = sum(1 for alert in self.alerts if alert.address in ground_truth)
        return hits / len(self.alerts)

    def recall_against(self, ground_truth: set[str]) -> float:
        """Alert recall over the scanned portion of the ground truth."""
        scanned_truth = ground_truth & self._seen
        if not scanned_truth:
            return 0.0
        hits = sum(
            1 for alert in self.alerts if alert.address in scanned_truth
        )
        return hits / len(scanned_truth)
