"""Live detection — the paper's §VII future work, implemented.

"While the scope of PhishingHook is to detect phishing smart contracts
before they are deployed, we consider live detection an interesting future
work." This module provides that deployment mode with the seed's poll API
kept intact, but the engine swapped: :class:`LiveDetector` is now a thin
adapter over the :mod:`repro.stream` subsystem. Scoring goes through a
fit-once :class:`~repro.serve.service.ScanService` (batched, deduped,
prediction-cached) driven by a
:class:`~repro.stream.scanner.StreamScanner`, and alert metadata resolves
through the chain's O(1) creation-transaction index instead of an
O(transactions) linear scan per alert.

Two consumption modes:

* **poll** (default, seed-compatible) — each :meth:`LiveDetector.poll`
  sweeps unseen accounts into the stream and drains it,
* **follow** (``follow=True``) — deployments push straight from the
  chain's event bus into the scanner as they land; ``poll()`` merely
  drains the last partial micro-batch and returns what streamed in.

Predictions are bit-identical to the seed's per-contract
``predict_proba([code])`` calls: the batch path scores the same fitted
model on the same normalized bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.blockchain import Blockchain
from repro.models.detector import PhishingDetector
from repro.serve.service import ScanService
from repro.stream.events import EventBus, contract_event_at
from repro.stream.scanner import StreamScanner
from repro.stream.sinks import AlertSink

__all__ = ["Alert", "LiveDetector", "MonitorStats"]


@dataclass(frozen=True)
class Alert:
    """One flagged deployment."""

    address: str
    probability: float
    block_number: int
    timestamp: int
    latency_seconds: float


@dataclass(frozen=True)
class MonitorStats:
    """Aggregate accounting for a monitoring session."""

    scanned: int = 0
    flagged: int = 0
    skipped_empty: int = 0
    total_latency_seconds: float = 0.0

    @property
    def mean_latency_seconds(self) -> float:
        return self.total_latency_seconds / self.scanned if self.scanned else 0.0


class _AdapterSink(AlertSink):
    """Internal follow-mode sink: adapts each stream alert at flush time.

    A failing ``on_alert`` must neither be silently counted away (the
    seed surfaced callback exceptions) nor unwind out of the deployer's
    ``chain.deploy()`` call (monitoring must not fail the ledger write) —
    so the first exception is parked on the detector and re-raised from
    the owner's next :meth:`LiveDetector.poll`.
    """

    name = "live-adapter"

    def __init__(self, detector: "LiveDetector"):
        super().__init__()
        self._detector = detector

    def emit(self, alert) -> bool:
        try:
            self._detector._adapt_new_alerts()
        except Exception as exc:
            self.stats.failed += 1
            if self._detector._deferred_error is None:
                self._detector._deferred_error = exc
            return False
        self.stats.delivered += 1
        return True


class LiveDetector:
    """Score new deployments as they appear on a chain.

    Args:
        chain: The ledger to watch.
        model: A *fitted* detector (training happens offline, ahead of
            monitoring — the latency budget covers scoring only).
        threshold: Alert when P(phishing) ≥ threshold.
        on_alert: Optional callback invoked with each :class:`Alert`.
        shards: Worker count for the underlying stream scanner.
        max_batch: Micro-batch size for the underlying stream scanner.
        follow: Push mode — subscribe to the chain's deploy events so
            scoring happens as deployments land, not at poll time.
    """

    def __init__(
        self,
        chain: Blockchain,
        model: PhishingDetector,
        threshold: float = 0.5,
        on_alert=None,
        *,
        shards: int = 1,
        max_batch: int = 32,
        follow: bool = False,
    ):
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.chain = chain
        self.model = model
        self.threshold = threshold
        self.on_alert = on_alert
        # attach_cache=False: the model is borrowed — wrapping it must not
        # re-point its extractors away from any cache the owner attached.
        self.service = ScanService(
            "live", model=model, threshold=threshold, attach_cache=False
        )
        self.scanner = StreamScanner(
            self.service,
            shards=shards,
            max_batch=max_batch,
            max_queue=max(max_batch, 4096),
            policy="block",
            threshold=threshold,
        )
        self.alerts: list[Alert] = []
        self._delivered = 0  # stream alerts already adapted into `alerts`
        self._polled = 0     # adapted alerts already returned by poll()
        self._sequence = 0
        self._deferred_error: Exception | None = None
        self._detach = None
        if follow:
            # Alerts reach the caller at flush time, not only at poll():
            # each emitted stream alert is adapted (and on_alert fired)
            # as its micro-batch is scored.
            self.scanner.add_sink(_AdapterSink(self))
            bus = EventBus()
            self.scanner.attach(bus)
            self._detach = bus.attach(chain)
        self.follow = follow

    # ------------------------------------------------------------------ #

    @property
    def stats(self) -> MonitorStats:
        """Seed-shaped counters, read from the stream scanner.

        Unlike the seed's mutable attribute this is an immutable
        *snapshot* — hold the detector, not a stats reference, and
        re-read after each poll.
        """
        raw = self.scanner.stats
        return MonitorStats(
            scanned=raw.scanned,
            flagged=raw.flagged,
            skipped_empty=raw.skipped_empty,
            total_latency_seconds=raw.total_latency_seconds,
        )

    def mark_existing_as_seen(self) -> int:
        """Skip contracts already deployed; monitor only the future.

        Returns the number of existing contracts (seed semantics), not
        the number newly marked.
        """
        addresses = [account.address for account in self.chain.accounts()]
        self.scanner.mark_seen(addresses)
        return len(addresses)

    def poll(self) -> list[Alert]:
        """Scan all unseen deployments; returns new alerts (oldest first).

        In follow mode the sweep is skipped (events already streamed in);
        the return value is everything alerted since the previous poll,
        including alerts the follow sink delivered between polls. An
        ``on_alert`` exception raised during a follow-mode flush is
        re-raised here, on the monitor owner's side (the affected alerts
        stay queued for the next successful poll).
        """
        if not self.follow:
            for event in self._pending_events():
                self.scanner.on_event(event)
        self.scanner.flush()
        self._adapt_new_alerts()
        if self._deferred_error is not None:
            error, self._deferred_error = self._deferred_error, None
            raise error
        fresh = self.alerts[self._polled:]
        self._polled = len(self.alerts)
        return fresh

    def _pending_events(self):
        """Unseen accounts as stream events (O(1) creation-tx lookups)."""
        for account in self.chain.accounts():
            if account.address in self.scanner.seen:
                continue
            self._sequence += 1
            yield contract_event_at(
                address=account.address,
                code=account.code,
                timestamp=account.deployed_at,
                transaction=self.chain.get_creation_transaction(
                    account.address
                ),
                sequence=self._sequence,
            )

    def _adapt_new_alerts(self) -> list[Alert]:
        fresh = self.scanner.alerts[self._delivered:]
        self._delivered = len(self.scanner.alerts)
        adapted = [
            Alert(
                address=alert.address,
                probability=alert.probability,
                block_number=alert.block_number,
                timestamp=alert.timestamp,
                latency_seconds=alert.latency_seconds,
            )
            for alert in sorted(fresh, key=lambda a: (a.timestamp, a.address))
        ]
        self.alerts.extend(adapted)
        if self.on_alert is not None:
            for alert in adapted:
                self.on_alert(alert)
        return adapted

    def close(self) -> None:
        """Stop following the chain (no-op in poll mode)."""
        if self._detach is not None:
            self._detach()
            self._detach = None

    # ------------------------------------------------------------------ #

    def precision_against(self, ground_truth: set[str]) -> float:
        """Alert precision given the true phishing address set."""
        if not self.alerts:
            return 0.0
        hits = sum(1 for alert in self.alerts if alert.address in ground_truth)
        return hits / len(self.alerts)

    def recall_against(self, ground_truth: set[str]) -> float:
        """Alert recall over the scanned portion of the ground truth."""
        scanned_truth = ground_truth & self.scanner.seen
        if not scanned_truth:
            return 0.0
        hits = sum(
            1 for alert in self.alerts if alert.address in scanned_truth
        )
        return hits / len(scanned_truth)
