"""The 16-model registry behind Table II.

``create_model(name, seed)`` instantiates any Table II row with the
hyperparameters used throughout the evaluation. CPU-scale knobs come from
environment variables so paper-scale runs are the same code with bigger
numbers (see "Scale knobs" in DESIGN.md):

* ``PHOOK_IMAGE_SIZE`` — vision input side (default 16),
* ``PHOOK_EPOCHS`` — deep-model epoch budget multiplier base,
* ``PHOOK_SEQ_LEN`` — LM token limit (default 96),
* ``PHOOK_N_JOBS`` — forest-training worker processes (default serial;
  -1 = all CPUs; predictions are bit-identical at any setting).
"""

from __future__ import annotations

import os

from repro.models import (
    ESCORTClassifier,
    EcaEfficientNetClassifier,
    GPT2Classifier,
    HSCDetector,
    SCSGuardClassifier,
    T5Classifier,
    ViTClassifier,
)
from repro.models.detector import PhishingDetector
from repro.models.hsc import HSC_VARIANTS

__all__ = ["MODEL_NAMES", "MODEL_CATEGORIES", "create_model", "category_of"]


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default


def _image_size() -> int:
    return _env_int("PHOOK_IMAGE_SIZE", 16)


def _epochs(default: int) -> int:
    base = _env_int("PHOOK_EPOCHS", 0)
    return base if base > 0 else default


def _seq_len() -> int:
    return _env_int("PHOOK_SEQ_LEN", 96)


_FACTORIES: dict[str, callable] = {
    **{
        name: (lambda seed, n=name: HSCDetector(variant=n, seed=seed))
        for name in HSC_VARIANTS
    },
    "ViT+R2D2": lambda seed: ViTClassifier(
        encoding="r2d2", image_size=_image_size(), epochs=_epochs(30), seed=seed
    ),
    "ViT+Freq": lambda seed: ViTClassifier(
        encoding="freq", image_size=_image_size(), epochs=_epochs(30), seed=seed
    ),
    "ECA+EfficientNet": lambda seed: EcaEfficientNetClassifier(
        image_size=_image_size(), epochs=_epochs(25), seed=seed
    ),
    "SCSGuard": lambda seed: SCSGuardClassifier(
        epochs=_epochs(8), seed=seed
    ),
    "GPT-2α": lambda seed: GPT2Classifier(
        variant="alpha", max_length=_seq_len(), epochs=_epochs(12), dim=48,
        seed=seed,
    ),
    "GPT-2β": lambda seed: GPT2Classifier(
        variant="beta", max_length=_seq_len(), epochs=_epochs(6), dim=48,
        seed=seed,
    ),
    "T5α": lambda seed: T5Classifier(
        variant="alpha", max_length=_seq_len(), epochs=_epochs(8), dim=48,
        seed=seed,
    ),
    "T5β": lambda seed: T5Classifier(
        variant="beta", max_length=_seq_len(), epochs=_epochs(6), dim=48,
        seed=seed,
    ),
    "ESCORT": lambda seed: ESCORTClassifier(seed=seed),
}

#: The 16 Table II rows, in the paper's order.
MODEL_NAMES: tuple[str, ...] = (
    "Random Forest",
    "k-NN",
    "SVM",
    "Logistic Regression",
    "XGBoost",
    "LightGBM",
    "CatBoost",
    "ECA+EfficientNet",
    "ViT+R2D2",
    "ViT+Freq",
    "SCSGuard",
    "GPT-2α",
    "T5α",
    "GPT-2β",
    "T5β",
    "ESCORT",
)

MODEL_CATEGORIES: dict[str, str] = {
    **{name: "HSC" for name in HSC_VARIANTS},
    "ECA+EfficientNet": "VM",
    "ViT+R2D2": "VM",
    "ViT+Freq": "VM",
    "SCSGuard": "LM",
    "GPT-2α": "LM",
    "GPT-2β": "LM",
    "T5α": "LM",
    "T5β": "LM",
    "ESCORT": "VDM",
}


def create_model(name: str, seed: int = 0) -> PhishingDetector:
    """Instantiate a Table II model by display name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; choose from {sorted(_FACTORIES)}"
        )
    return factory(seed)


def category_of(name: str) -> str:
    """Model category ("HSC"/"VM"/"LM"/"VDM") for a Table II row."""
    return MODEL_CATEGORIES[name]
