"""Hyperparameter search — the Optuna substitute (§IV-C, substitution S6).

Optuna's define-by-run API is mirrored at small scale: an objective
receives a :class:`Trial` and asks it for parameter values
(``trial.suggest_float`` …); :class:`GridSearch` enumerates a grid while
:class:`RandomSearch` samples the space. The paper's protocol — "grid
search over an arbitrary search space … using 10-fold cross-validation" —
is provided by :func:`cross_validated_objective`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.datagen.dataset import Dataset
from repro.ml.flat import precompile
from repro.ml.metrics import accuracy_score

__all__ = [
    "SearchSpace",
    "Trial",
    "GridSearch",
    "RandomSearch",
    "cross_validated_objective",
    "fit_and_persist_best",
]


@dataclass(frozen=True)
class SearchSpace:
    """Declarative parameter space.

    Attributes:
        categorical: name → tuple of choices.
        uniform: name → (low, high) continuous range.
        log_uniform: name → (low, high) positive range sampled in log space.
        integer: name → (low, high) inclusive integer range.
    """

    categorical: dict = field(default_factory=dict)
    uniform: dict = field(default_factory=dict)
    log_uniform: dict = field(default_factory=dict)
    integer: dict = field(default_factory=dict)

    def names(self) -> list[str]:
        return (
            list(self.categorical) + list(self.uniform)
            + list(self.log_uniform) + list(self.integer)
        )


class Trial:
    """One parameter assignment handed to the objective."""

    def __init__(self, params: dict):
        self.params = dict(params)

    def suggest_categorical(self, name: str, choices):
        value = self.params[name]
        if value not in choices:
            raise ValueError(f"{name}={value!r} not in {choices}")
        return value

    def suggest_float(self, name: str, low: float, high: float):
        return float(self.params[name])

    def suggest_int(self, name: str, low: int, high: int):
        return int(self.params[name])


@dataclass
class SearchResult:
    best_params: dict
    best_value: float
    trials: list[tuple[dict, float]] = field(default_factory=list)


class GridSearch:
    """Exhaustive search over the categorical/integer grid.

    Continuous dimensions are discretized into ``resolution`` points.
    """

    def __init__(self, space: SearchSpace, resolution: int = 3):
        self.space = space
        self.resolution = resolution

    def _axes(self) -> dict[str, list]:
        axes: dict[str, list] = {}
        for name, choices in self.space.categorical.items():
            axes[name] = list(choices)
        for name, (low, high) in self.space.integer.items():
            count = min(self.resolution, high - low + 1)
            axes[name] = sorted(
                {int(round(v)) for v in np.linspace(low, high, count)}
            )
        for name, (low, high) in self.space.uniform.items():
            axes[name] = list(np.linspace(low, high, self.resolution))
        for name, (low, high) in self.space.log_uniform.items():
            axes[name] = list(
                np.exp(np.linspace(np.log(low), np.log(high), self.resolution))
            )
        return axes

    def optimize(self, objective) -> SearchResult:
        axes = self._axes()
        if not axes:
            raise ValueError("empty search space")
        names = list(axes)
        best_params: dict | None = None
        best_value = -np.inf
        trials = []
        for combo in itertools.product(*axes.values()):
            params = dict(zip(names, combo))
            value = float(objective(Trial(params)))
            trials.append((params, value))
            if value > best_value:
                best_value, best_params = value, params
        if best_params is None:
            raise ValueError("empty search space")
        return SearchResult(best_params, best_value, trials)


class RandomSearch:
    """Uniform random sampling of the space (Optuna's fallback sampler)."""

    def __init__(self, space: SearchSpace, n_trials: int = 20, seed: int = 0):
        self.space = space
        self.n_trials = n_trials
        self.seed = seed

    def _sample(self, rng: np.random.Generator) -> dict:
        params: dict = {}
        for name, choices in self.space.categorical.items():
            params[name] = choices[int(rng.integers(0, len(choices)))]
        for name, (low, high) in self.space.integer.items():
            params[name] = int(rng.integers(low, high + 1))
        for name, (low, high) in self.space.uniform.items():
            params[name] = float(rng.uniform(low, high))
        for name, (low, high) in self.space.log_uniform.items():
            params[name] = float(
                np.exp(rng.uniform(np.log(low), np.log(high)))
            )
        return params

    def optimize(self, objective) -> SearchResult:
        if not self.space.names():
            raise ValueError("empty search space")
        rng = np.random.default_rng(self.seed)
        best_params: dict | None = None
        best_value = -np.inf
        trials = []
        for __ in range(self.n_trials):
            params = self._sample(rng)
            value = float(objective(Trial(params)))
            trials.append((params, value))
            if value > best_value:
                best_value, best_params = value, params
        return SearchResult(best_params, best_value, trials)


def cross_validated_objective(
    dataset: Dataset,
    build_model,
    n_folds: int = 10,
    seed: int = 0,
):
    """Objective factory: mean k-fold accuracy of ``build_model(trial)``.

    ``build_model`` receives a :class:`Trial` and returns an unfitted
    detector exposing ``fit(bytecodes, labels)`` / ``predict(bytecodes)``.
    """
    folds = dataset.stratified_kfold(n_folds, seed=seed)

    def objective(trial: Trial) -> float:
        scores = []
        for train_idx, test_idx in folds:
            train, test = dataset.subset(train_idx), dataset.subset(test_idx)
            model = build_model(trial)
            model.fit(train.bytecodes, train.labels)
            # Each CV fold's held-out predictions run through the flat
            # inference engine; the grid pays compilation once per fit.
            precompile(model)
            scores.append(
                accuracy_score(test.labels, model.predict(test.bytecodes))
            )
        return float(np.mean(scores))

    return objective


def fit_and_persist_best(
    dataset: Dataset,
    build_model,
    result,
    store,
    *,
    model_name: str = "tuned",
    tags: tuple[str, ...] = ("tuned",),
    extra: dict | None = None,
):
    """Refit a search's winning configuration and persist the artifact.

    A tuning study used to end with its best *parameters* and no fitted
    model; this closes the loop the way the artifact layer expects —
    rebuild the winner via ``build_model(Trial(best_params))``, fit it on
    the full ``dataset``, and file it in ``store`` with the CV score and
    the winning parameters in the manifest.

    Returns:
        ``(model, version)`` — the fitted model and its store version.
    """
    model = build_model(Trial(dict(result.best_params)))
    model.fit(dataset.bytecodes, dataset.labels)
    precompile(model)
    version = store.put(
        model,
        model_name=model_name,
        dataset_fingerprint=dataset.fingerprint(),
        metrics={"cv_accuracy": result.best_value},
        extra={"best_params": dict(result.best_params), **(extra or {})},
        tags=tags,
    )
    return model, version
