"""Exception hierarchy for the EVM substrate."""


class EVMError(Exception):
    """Base class for every error raised by :mod:`repro.evm`."""


class DisassemblyError(EVMError):
    """Raised when bytecode cannot be decoded at all (e.g. bad hex input)."""


class AssemblerError(EVMError):
    """Raised for malformed assembly programs (unknown mnemonics, bad operands)."""


class ExecutionError(EVMError):
    """Base class for runtime failures inside the interpreter."""


class StackUnderflow(ExecutionError):
    """An opcode popped more items than the stack holds."""


class StackOverflow(ExecutionError):
    """The stack exceeded the 1024-item EVM limit."""


class OutOfGas(ExecutionError):
    """Gas was exhausted before execution halted normally."""


class InvalidOpcode(ExecutionError):
    """An undefined byte (or the designated INVALID opcode) was executed."""


class InvalidJump(ExecutionError):
    """A JUMP/JUMPI landed on a byte that is not a JUMPDEST."""
