"""Assembler: mnemonic programs → EVM bytecode.

The synthetic contract generators (:mod:`repro.datagen`) author contracts
as readable assembly and rely on this module to emit deployable bytecode.
The assembler supports:

* plain mnemonics (``"CALLER"``, ``"SSTORE"`` …),
* PUSH with integer, hex-string or bytes immediates (width inferred from
  the mnemonic, e.g. ``("PUSH4", 0x23B872DD)``),
* symbolic labels for jump targets: ``label("loop")`` defines a JUMPDEST
  and ``push_label("loop")`` pushes its resolved byte offset (two-pass
  assembly with fixed-width PUSH2 offsets, plenty for synthetic contracts).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evm.errors import AssemblerError
from repro.evm.opcodes import Opcode, opcode_by_name, push_opcode

__all__ = ["Assembler", "assemble", "Label", "PushLabel"]

#: Width, in bytes, of label-resolved PUSH immediates.
_LABEL_PUSH_WIDTH = 2


@dataclass(frozen=True)
class Label:
    """Defines a jump destination named ``name`` (emits JUMPDEST)."""

    name: str


@dataclass(frozen=True)
class PushLabel:
    """Pushes the byte offset of :class:`Label` ``name`` (emits PUSH2)."""

    name: str


def _coerce_operand(opcode: Opcode, operand: object) -> bytes:
    """Convert a user-supplied PUSH operand to exactly-sized bytes."""
    width = opcode.immediate_size
    if isinstance(operand, bytes):
        raw = operand
    elif isinstance(operand, str):
        text = operand[2:] if operand.startswith(("0x", "0X")) else operand
        if len(text) % 2:
            text = "0" + text
        try:
            raw = bytes.fromhex(text)
        except ValueError as exc:
            raise AssemblerError(
                f"bad hex operand {operand!r} for {opcode.mnemonic}"
            ) from exc
    elif isinstance(operand, int):
        if operand < 0:
            raise AssemblerError(f"negative operand {operand} for {opcode.mnemonic}")
        raw = operand.to_bytes(max(1, (operand.bit_length() + 7) // 8), "big")
    else:
        raise AssemblerError(
            f"unsupported operand type {type(operand).__name__} "
            f"for {opcode.mnemonic}"
        )
    if len(raw) > width:
        raise AssemblerError(
            f"operand {raw.hex()} is {len(raw)} bytes, "
            f"but {opcode.mnemonic} takes {width}"
        )
    return raw.rjust(width, b"\x00")


class Assembler:
    """Two-pass assembler building one bytecode blob.

    Example:
        >>> asm = Assembler()
        >>> asm.push(0x80).push(0x40).emit("MSTORE")  # doctest: +ELLIPSIS
        <repro.evm.assembler.Assembler object at ...>
        >>> asm.assemble().hex()
        '6080604052'
    """

    def __init__(self) -> None:
        self._items: list[object] = []

    # ------------------------------------------------------------------ #
    # Program construction
    # ------------------------------------------------------------------ #

    def emit(self, mnemonic: str, operand: object = None) -> "Assembler":
        """Append one instruction; ``operand`` only for the PUSH family."""
        try:
            opcode = opcode_by_name(mnemonic)
        except KeyError as exc:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}") from exc
        if opcode.immediate_size == 0:
            if operand is not None:
                raise AssemblerError(f"{opcode.mnemonic} takes no operand")
            self._items.append(bytes([opcode.value]))
            return self
        if operand is None:
            raise AssemblerError(f"{opcode.mnemonic} requires an operand")
        raw = _coerce_operand(opcode, operand)
        self._items.append(bytes([opcode.value]) + raw)
        return self

    def push(self, value: int | bytes | str, width: int | None = None) -> "Assembler":
        """Append the narrowest PUSH that fits ``value`` (or a fixed width).

        ``push(0)`` emits ``PUSH0`` (Shanghai) when no width is forced.
        """
        if isinstance(value, int):
            if value < 0:
                raise AssemblerError(f"cannot PUSH negative value {value}")
            natural = (value.bit_length() + 7) // 8
        elif isinstance(value, bytes):
            natural = len(value)
        else:
            text = value[2:] if value.startswith(("0x", "0X")) else value
            natural = (len(text) + 1) // 2
        chosen = natural if width is None else width
        if chosen == 0 and width is None and isinstance(value, int) and value == 0:
            self._items.append(bytes([push_opcode(0).value]))
            return self
        chosen = max(1, chosen)
        opcode = push_opcode(chosen)
        return self.emit(opcode.mnemonic, value)

    def label(self, name: str) -> "Assembler":
        """Define jump destination ``name`` here (emits JUMPDEST)."""
        self._items.append(Label(name))
        return self

    def push_label(self, name: str) -> "Assembler":
        """Push the byte offset of label ``name`` (resolved at assembly)."""
        self._items.append(PushLabel(name))
        return self

    def raw(self, data: bytes) -> "Assembler":
        """Append raw bytes verbatim (data sections, metadata trailers)."""
        self._items.append(bytes(data))
        return self

    def extend(self, program: list) -> "Assembler":
        """Append a program given as a list of items.

        Each item may be a mnemonic string, a ``(mnemonic, operand)`` tuple,
        a :class:`Label`, a :class:`PushLabel`, or raw ``bytes``.
        """
        for item in program:
            if isinstance(item, (Label, PushLabel)):
                self._items.append(item)
            elif isinstance(item, bytes):
                self.raw(item)
            elif isinstance(item, str):
                self.emit(item)
            elif isinstance(item, tuple) and len(item) == 2:
                self.emit(item[0], item[1])
            else:
                raise AssemblerError(f"unsupported program item {item!r}")
        return self

    # ------------------------------------------------------------------ #
    # Assembly
    # ------------------------------------------------------------------ #

    def assemble(self) -> bytes:
        """Resolve labels and emit the final bytecode."""
        jumpdest = bytes([opcode_by_name("JUMPDEST").value])
        push_op = bytes([push_opcode(_LABEL_PUSH_WIDTH).value])

        offsets: dict[str, int] = {}
        cursor = 0
        for item in self._items:
            if isinstance(item, Label):
                if item.name in offsets:
                    raise AssemblerError(f"duplicate label {item.name!r}")
                offsets[item.name] = cursor
                cursor += 1
            elif isinstance(item, PushLabel):
                cursor += 1 + _LABEL_PUSH_WIDTH
            else:
                cursor += len(item)  # type: ignore[arg-type]

        parts: list[bytes] = []
        for item in self._items:
            if isinstance(item, Label):
                parts.append(jumpdest)
            elif isinstance(item, PushLabel):
                if item.name not in offsets:
                    raise AssemblerError(f"undefined label {item.name!r}")
                target = offsets[item.name]
                if target >= 1 << (8 * _LABEL_PUSH_WIDTH):
                    raise AssemblerError(
                        f"label {item.name!r} offset {target} exceeds PUSH2"
                    )
                parts.append(push_op + target.to_bytes(_LABEL_PUSH_WIDTH, "big"))
            else:
                parts.append(item)  # type: ignore[arg-type]
        return b"".join(parts)

    def __len__(self) -> int:
        """Current number of program items (not bytes)."""
        return len(self._items)


def assemble(program: list) -> bytes:
    """One-shot assembly of a program list (see :meth:`Assembler.extend`)."""
    return Assembler().extend(program).assemble()
