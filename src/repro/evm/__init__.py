"""EVM substrate: opcode registry, disassembler, assembler and interpreter.

This subpackage reimplements everything PhishingHook needs from the
Ethereum Virtual Machine as of the *Shanghai* fork:

* :mod:`repro.evm.opcodes` — the full 144-opcode registry (including the
  Shanghai additions ``PUSH0`` and the designated ``INVALID`` instruction
  that the paper added to ``evmdasm``),
* :mod:`repro.evm.disassembler` — a bytecode disassembler equivalent to the
  paper's enhanced ``evmdasm``,
* :mod:`repro.evm.assembler` — the inverse mapping used by the synthetic
  contract generators,
* :mod:`repro.evm.machine` — a minimal stack-machine interpreter used to
  validate that synthesized contracts actually execute.
"""

from repro.evm.assembler import Assembler, assemble
from repro.evm.cfg import ControlFlowGraph, build_cfg
from repro.evm.disassembler import (
    MNEMONIC_IDS,
    MNEMONIC_TABLE,
    Disassembler,
    decode_mnemonic_ids,
    disassemble,
    ids_to_mnemonics,
)
from repro.evm.errors import (
    AssemblerError,
    DisassemblyError,
    EVMError,
    InvalidJump,
    InvalidOpcode,
    OutOfGas,
    StackOverflow,
    StackUnderflow,
)
from repro.evm.instruction import Instruction
from repro.evm.machine import EVM, ExecutionResult, Halt
from repro.evm.opcodes import (
    OPCODES,
    OPCODES_BY_NAME,
    SHANGHAI_OPCODE_COUNT,
    Opcode,
    opcode_by_name,
    opcode_by_value,
)

__all__ = [
    "Assembler",
    "assemble",
    "ControlFlowGraph",
    "build_cfg",
    "Disassembler",
    "disassemble",
    "decode_mnemonic_ids",
    "ids_to_mnemonics",
    "MNEMONIC_IDS",
    "MNEMONIC_TABLE",
    "AssemblerError",
    "DisassemblyError",
    "EVMError",
    "InvalidJump",
    "InvalidOpcode",
    "OutOfGas",
    "StackOverflow",
    "StackUnderflow",
    "Instruction",
    "EVM",
    "ExecutionResult",
    "Halt",
    "OPCODES",
    "OPCODES_BY_NAME",
    "SHANGHAI_OPCODE_COUNT",
    "Opcode",
    "opcode_by_name",
    "opcode_by_value",
]
