"""Bytecode disassembler — the paper's enhanced ``evmdasm`` equivalent.

The BDM (Bytecode Disassembler Module) turns deployed bytecode into a
sequence of :class:`~repro.evm.instruction.Instruction` objects.  Matching
the paper's enhancement of ``evmdasm`` for the Shanghai fork, the
disassembler

* understands ``PUSH0`` (0x5F) and the designated ``INVALID`` (0xFE),
* maps every byte value with no Shanghai definition to ``INVALID`` instead
  of failing (real deployed bytecode routinely embeds metadata and data
  sections that decode to undefined bytes),
* tolerates a PUSH immediate truncated by the end of the bytecode (the
  instruction is flagged ``is_truncated``),
* can serialize the result to the ``(mnemonic, operand, gas)`` CSV rows the
  paper stores for downstream feature extraction.
"""

from __future__ import annotations

import io
from collections.abc import Iterator

import numpy as np

from repro.evm.errors import DisassemblyError
from repro.evm.instruction import Instruction
from repro.evm.opcodes import OPCODES, opcode_by_name

_INVALID = opcode_by_name("INVALID")

CSV_HEADER = ("offset", "mnemonic", "operand", "gas")

#: Canonical mnemonic-ID table: every Shanghai mnemonic in sorted order, so
#: id k is ``MNEMONIC_TABLE[k]``. IDs are stable across processes (they only
#: depend on the opcode registry) and fit in a uint8, which is what makes
#: content-addressed caching of decoded sequences cheap.
MNEMONIC_TABLE: tuple[str, ...] = tuple(
    sorted({op.mnemonic for op in OPCODES.values()})
)

#: Mnemonic → mnemonic-ID (inverse of :data:`MNEMONIC_TABLE`).
MNEMONIC_IDS: dict[str, int] = {
    name: i for i, name in enumerate(MNEMONIC_TABLE)
}

MNEMONIC_COUNT = len(MNEMONIC_TABLE)

# Per-byte lookup tables: raw byte value → mnemonic ID (undefined bytes map
# to INVALID, mirroring instructions()) and → immediate width to skip.
_BYTE_TO_ID: bytes = bytes(
    MNEMONIC_IDS[OPCODES[b].mnemonic if b in OPCODES else "INVALID"]
    for b in range(256)
)
_BYTE_TO_WIDTH: bytes = bytes(
    OPCODES[b].immediate_size if b in OPCODES else 0 for b in range(256)
)


def normalize_bytecode(bytecode: bytes | bytearray | str) -> bytes:
    """Coerce hex-string or bytes input into raw bytes.

    Accepts ``bytes``/``bytearray`` verbatim, or a hex string with optional
    ``0x`` prefix and whitespace (surrounding or internal, as
    ``bytes.fromhex`` tolerates between bytes).

    Raises:
        DisassemblyError: If a string input is not valid hex.
    """
    if isinstance(bytecode, (bytes, bytearray)):
        return bytes(bytecode)
    # Drop all whitespace *before* the parity check: "60 80" is valid spaced
    # hex, and "0x6 08" really is 3 nibbles, not "even once spaces count".
    text = "".join(bytecode.split())
    if text.startswith(("0x", "0X")):
        text = text[2:]
    if len(text) % 2:
        raise DisassemblyError(f"odd-length hex string ({len(text)} nibbles)")
    try:
        return bytes.fromhex(text)
    except ValueError as exc:
        raise DisassemblyError(f"invalid hex bytecode: {exc}") from exc


class Disassembler:
    """Streaming disassembler over a single bytecode blob."""

    def __init__(self, bytecode: bytes | bytearray | str):
        self._code = normalize_bytecode(bytecode)

    @property
    def code(self) -> bytes:
        """The normalized raw bytecode."""
        return self._code

    def __iter__(self) -> Iterator[Instruction]:
        return self.instructions()

    def __len__(self) -> int:
        return len(self._code)

    def instructions(self) -> Iterator[Instruction]:
        """Decode the bytecode into instructions, front to back."""
        code = self._code
        offset = 0
        end = len(code)
        while offset < end:
            raw = code[offset]
            opcode = OPCODES.get(raw)
            if opcode is None:
                yield Instruction(
                    offset=offset,
                    opcode=_INVALID,
                    is_undefined_byte=True,
                    raw_byte=raw,
                )
                offset += 1
                continue
            width = opcode.immediate_size
            if width == 0:
                yield Instruction(offset=offset, opcode=opcode, raw_byte=raw)
                offset += 1
                continue
            operand = code[offset + 1 : offset + 1 + width]
            yield Instruction(
                offset=offset,
                opcode=opcode,
                operand=operand,
                is_truncated=len(operand) < width,
                raw_byte=raw,
            )
            offset += 1 + width

    def disassemble(self) -> list[Instruction]:
        """Decode the full bytecode into a list of instructions."""
        return list(self.instructions())

    def mnemonic_ids(self) -> np.ndarray:
        """The mnemonic-ID sequence as a compact ``uint8`` array.

        Single-pass decode: no :class:`Instruction` objects are built, only
        opcode bytes are visited (PUSH immediates are skipped via a byte →
        width table). ``MNEMONIC_TABLE[id]`` recovers the mnemonic; the
        output is what the vectorized feature extractors and the serve-layer
        :class:`~repro.serve.cache.FeatureCache` consume.
        """
        code = self._code
        ids = _BYTE_TO_ID
        widths = _BYTE_TO_WIDTH
        out = bytearray()
        append = out.append
        offset = 0
        end = len(code)
        while offset < end:
            raw = code[offset]
            append(ids[raw])
            offset += 1 + widths[raw]
        return np.frombuffer(bytes(out), dtype=np.uint8)

    def mnemonics(self) -> list[str]:
        """The opcode mnemonic sequence (what most models consume)."""
        table = MNEMONIC_TABLE
        return [table[i] for i in self.mnemonic_ids()]

    def jump_destinations(self) -> frozenset[int]:
        """Byte offsets of every JUMPDEST, for control-flow validation.

        PUSH immediates are skipped, so a 0x5B byte inside a PUSH operand is
        correctly *not* a valid jump target — exactly the EVM's rule.
        """
        return frozenset(
            instruction.offset
            for instruction in self.instructions()
            if instruction.mnemonic == "JUMPDEST"
        )

    def to_csv(self) -> str:
        """Serialize to the CSV layout the paper's BDM writes.

        One row per instruction: ``offset,mnemonic,operand,gas``, with
        ``NaN`` in the operand column for immediate-less instructions and in
        the gas column for INVALID.
        """
        buffer = io.StringIO()
        buffer.write(",".join(CSV_HEADER) + "\n")
        for instruction in self.instructions():
            mnemonic, operand, gas = instruction.as_triple()
            gas_text = "NaN" if gas != gas else str(int(gas))
            buffer.write(f"{instruction.offset},{mnemonic},{operand},{gas_text}\n")
        return buffer.getvalue()


def disassemble(bytecode: bytes | bytearray | str) -> list[Instruction]:
    """Disassemble ``bytecode`` into a list of instructions.

    Example:
        >>> [str(i) for i in disassemble("0x6080604052")]
        ['PUSH1 0x80', 'PUSH1 0x40', 'MSTORE']
    """
    return Disassembler(bytecode).disassemble()


def disassemble_mnemonics(bytecode: bytes | bytearray | str) -> list[str]:
    """Disassemble ``bytecode`` and keep only the mnemonic sequence."""
    return Disassembler(bytecode).mnemonics()


def decode_mnemonic_ids(bytecode: bytes | bytearray | str) -> np.ndarray:
    """Single-pass decode of ``bytecode`` to a ``uint8`` mnemonic-ID array."""
    return Disassembler(bytecode).mnemonic_ids()


def ids_to_mnemonics(ids: np.ndarray) -> list[str]:
    """Map a mnemonic-ID array back to mnemonic strings."""
    table = MNEMONIC_TABLE
    return [table[i] for i in ids]
