"""The EVM opcode registry for the *Shanghai* fork.

The registry mirrors the reference table the paper cites (evm.codes,
``?fork=shanghai``): 144 defined opcodes, including the two instructions the
authors added to ``evmdasm`` — ``PUSH0`` (0x5F, introduced by EIP-3855 in
Shanghai) and the designated ``INVALID`` instruction (0xFE, whose static gas
cost is *NaN* in the reference table).

Each :class:`Opcode` records the byte value, mnemonic, static gas cost,
stack effect (``pops``/``pushes``), the size of the inline immediate operand
(non-zero only for the PUSH family) and a human-readable description, so the
same table serves the disassembler, the assembler, the interpreter and the
feature extractors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "Opcode",
    "OPCODES",
    "OPCODES_BY_NAME",
    "SHANGHAI_OPCODE_COUNT",
    "opcode_by_value",
    "opcode_by_name",
    "push_opcode",
    "dup_opcode",
    "swap_opcode",
    "log_opcode",
    "is_push",
    "is_terminator",
    "CATEGORIES",
]

#: Number of opcodes defined as of the Shanghai update (see §II of the paper).
SHANGHAI_OPCODE_COUNT = 144

#: The EVM stack may hold at most this many 256-bit words.
MAX_STACK_DEPTH = 1024


@dataclass(frozen=True)
class Opcode:
    """A single EVM instruction definition.

    Attributes:
        value: The byte value (0x00–0xFF).
        mnemonic: Human-readable alias (e.g. ``"PUSH1"``).
        gas: Static gas cost. ``None`` for ``INVALID`` whose cost is NaN in
            the reference table; use :attr:`gas_or_nan` when a numeric value
            is required.
        pops: Number of stack items consumed.
        pushes: Number of stack items produced.
        immediate_size: Bytes of inline operand following the opcode
            (1–32 for PUSH1–PUSH32, otherwise 0).
        description: Short description from the reference table.
        category: Coarse functional group (``"arithmetic"``, ``"system"``, …).
    """

    value: int
    mnemonic: str
    gas: int | None
    pops: int
    pushes: int
    immediate_size: int = 0
    description: str = ""
    category: str = field(default="misc")

    @property
    def gas_or_nan(self) -> float:
        """The static gas cost as a float, NaN when undefined (INVALID)."""
        return float("nan") if self.gas is None else float(self.gas)

    @property
    def is_push(self) -> bool:
        """True for PUSH0–PUSH32."""
        return 0x5F <= self.value <= 0x7F

    @property
    def is_terminator(self) -> bool:
        """True when the instruction unconditionally ends execution."""
        return self.mnemonic in _TERMINATORS

    def __str__(self) -> str:
        return self.mnemonic

    def __int__(self) -> int:
        return self.value


_TERMINATORS = frozenset(
    {"STOP", "RETURN", "REVERT", "INVALID", "SELFDESTRUCT", "JUMP"}
)

#: Functional categories used by feature extractors and the data generators.
CATEGORIES = (
    "arithmetic",
    "comparison",
    "bitwise",
    "sha3",
    "environment",
    "block",
    "stack",
    "memory",
    "storage",
    "flow",
    "push",
    "dup",
    "swap",
    "log",
    "system",
)


def _base_table() -> list[Opcode]:
    """Build the non-parameterised portion of the Shanghai opcode table."""
    spec: list[tuple[int, str, int | None, int, int, str, str]] = [
        # value, mnemonic, gas, pops, pushes, category, description
        (0x00, "STOP", 0, 0, 0, "flow", "Halts execution"),
        (0x01, "ADD", 3, 2, 1, "arithmetic", "Addition operation"),
        (0x02, "MUL", 5, 2, 1, "arithmetic", "Multiplication operation"),
        (0x03, "SUB", 3, 2, 1, "arithmetic", "Subtraction operation"),
        (0x04, "DIV", 5, 2, 1, "arithmetic", "Integer division operation"),
        (0x05, "SDIV", 5, 2, 1, "arithmetic", "Signed integer division"),
        (0x06, "MOD", 5, 2, 1, "arithmetic", "Modulo remainder operation"),
        (0x07, "SMOD", 5, 2, 1, "arithmetic", "Signed modulo remainder"),
        (0x08, "ADDMOD", 8, 3, 1, "arithmetic", "Modulo addition operation"),
        (0x09, "MULMOD", 8, 3, 1, "arithmetic", "Modulo multiplication"),
        (0x0A, "EXP", 10, 2, 1, "arithmetic", "Exponential operation"),
        (0x0B, "SIGNEXTEND", 5, 2, 1, "arithmetic", "Extend length of signed integer"),
        (0x10, "LT", 3, 2, 1, "comparison", "Less-than comparison"),
        (0x11, "GT", 3, 2, 1, "comparison", "Greater-than comparison"),
        (0x12, "SLT", 3, 2, 1, "comparison", "Signed less-than comparison"),
        (0x13, "SGT", 3, 2, 1, "comparison", "Signed greater-than comparison"),
        (0x14, "EQ", 3, 2, 1, "comparison", "Equality comparison"),
        (0x15, "ISZERO", 3, 1, 1, "comparison", "Is-zero comparison"),
        (0x16, "AND", 3, 2, 1, "bitwise", "Bitwise AND operation"),
        (0x17, "OR", 3, 2, 1, "bitwise", "Bitwise OR operation"),
        (0x18, "XOR", 3, 2, 1, "bitwise", "Bitwise XOR operation"),
        (0x19, "NOT", 3, 1, 1, "bitwise", "Bitwise NOT operation"),
        (0x1A, "BYTE", 3, 2, 1, "bitwise", "Retrieve single byte from word"),
        (0x1B, "SHL", 3, 2, 1, "bitwise", "Left shift operation"),
        (0x1C, "SHR", 3, 2, 1, "bitwise", "Logical right shift operation"),
        (0x1D, "SAR", 3, 2, 1, "bitwise", "Arithmetic right shift operation"),
        (0x20, "SHA3", 30, 2, 1, "sha3", "Compute Keccak-256 hash"),
        (0x30, "ADDRESS", 2, 0, 1, "environment", "Get address of executing account"),
        (0x31, "BALANCE", 100, 1, 1, "environment", "Get balance of given account"),
        (0x32, "ORIGIN", 2, 0, 1, "environment", "Get execution origination address"),
        (0x33, "CALLER", 2, 0, 1, "environment", "Get caller address"),
        (0x34, "CALLVALUE", 2, 0, 1, "environment", "Get deposited value"),
        (0x35, "CALLDATALOAD", 3, 1, 1, "environment", "Get input data of environment"),
        (0x36, "CALLDATASIZE", 2, 0, 1, "environment", "Get size of input data"),
        (0x37, "CALLDATACOPY", 3, 3, 0, "environment", "Copy input data to memory"),
        (0x38, "CODESIZE", 2, 0, 1, "environment", "Get size of running code"),
        (0x39, "CODECOPY", 3, 3, 0, "environment", "Copy running code to memory"),
        (0x3A, "GASPRICE", 2, 0, 1, "environment", "Get price of gas"),
        (0x3B, "EXTCODESIZE", 100, 1, 1, "environment", "Get size of account code"),
        (0x3C, "EXTCODECOPY", 100, 4, 0, "environment", "Copy account code to memory"),
        (0x3D, "RETURNDATASIZE", 2, 0, 1, "environment", "Get size of last return data"),
        (0x3E, "RETURNDATACOPY", 3, 3, 0, "environment", "Copy return data to memory"),
        (0x3F, "EXTCODEHASH", 100, 1, 1, "environment", "Get hash of account code"),
        (0x40, "BLOCKHASH", 20, 1, 1, "block", "Get hash of recent block"),
        (0x41, "COINBASE", 2, 0, 1, "block", "Get block beneficiary address"),
        (0x42, "TIMESTAMP", 2, 0, 1, "block", "Get block timestamp"),
        (0x43, "NUMBER", 2, 0, 1, "block", "Get block number"),
        (0x44, "PREVRANDAO", 2, 0, 1, "block", "Get previous RANDAO mix"),
        (0x45, "GASLIMIT", 2, 0, 1, "block", "Get block gas limit"),
        (0x46, "CHAINID", 2, 0, 1, "block", "Get chain identifier"),
        (0x47, "SELFBALANCE", 5, 0, 1, "block", "Get own balance"),
        (0x48, "BASEFEE", 2, 0, 1, "block", "Get block base fee"),
        (0x50, "POP", 2, 1, 0, "stack", "Remove item from stack"),
        (0x51, "MLOAD", 3, 1, 1, "memory", "Load word from memory"),
        (0x52, "MSTORE", 3, 2, 0, "memory", "Save word to memory"),
        (0x53, "MSTORE8", 3, 2, 0, "memory", "Save byte to memory"),
        (0x54, "SLOAD", 100, 1, 1, "storage", "Load word from storage"),
        (0x55, "SSTORE", 100, 2, 0, "storage", "Save word to storage"),
        (0x56, "JUMP", 8, 1, 0, "flow", "Alter the program counter"),
        (0x57, "JUMPI", 10, 2, 0, "flow", "Conditionally alter program counter"),
        (0x58, "PC", 2, 0, 1, "flow", "Get program counter value"),
        (0x59, "MSIZE", 2, 0, 1, "memory", "Get size of active memory"),
        (0x5A, "GAS", 2, 0, 1, "flow", "Get amount of available gas"),
        (0x5B, "JUMPDEST", 1, 0, 0, "flow", "Mark a valid jump destination"),
        (0xF0, "CREATE", 32000, 3, 1, "system", "Create a new account with code"),
        (0xF1, "CALL", 100, 7, 1, "system", "Message-call into an account"),
        (0xF2, "CALLCODE", 100, 7, 1, "system", "Message-call with own storage"),
        (0xF3, "RETURN", 0, 2, 0, "system", "Halt execution returning output"),
        (0xF4, "DELEGATECALL", 100, 6, 1, "system", "Call keeping caller context"),
        (0xF5, "CREATE2", 32000, 4, 1, "system", "Create account, salted address"),
        (0xFA, "STATICCALL", 100, 6, 1, "system", "Static message-call"),
        (0xFD, "REVERT", 0, 2, 0, "system", "Halt execution reverting state changes"),
        (0xFE, "INVALID", None, 0, 0, "system", "Designated invalid instruction"),
        (0xFF, "SELFDESTRUCT", 5000, 1, 0, "system",
         "Halt execution and register account for later deletion"),
    ]
    return [
        Opcode(value, name, gas, pops, pushes, 0, description, category)
        for value, name, gas, pops, pushes, category, description in spec
    ]


def _push_family() -> list[Opcode]:
    """PUSH0 (Shanghai, EIP-3855) through PUSH32."""
    ops = [
        Opcode(0x5F, "PUSH0", 2, 0, 1, 0, "Place 0 byte item on stack", "push")
    ]
    for n in range(1, 33):
        ops.append(
            Opcode(
                0x5F + n,
                f"PUSH{n}",
                3,
                0,
                1,
                n,
                f"Place {n}-byte item on stack",
                "push",
            )
        )
    return ops


def _dup_family() -> list[Opcode]:
    return [
        Opcode(0x7F + n, f"DUP{n}", 3, n, n + 1, 0,
               f"Duplicate {n}th stack item", "dup")
        for n in range(1, 17)
    ]


def _swap_family() -> list[Opcode]:
    return [
        Opcode(0x8F + n, f"SWAP{n}", 3, n + 1, n + 1, 0,
               f"Exchange 1st and {n + 1}th stack items", "swap")
        for n in range(1, 17)
    ]


def _log_family() -> list[Opcode]:
    return [
        Opcode(0xA0 + n, f"LOG{n}", 375 * (n + 1), n + 2, 0, 0,
               f"Append log record with {n} topics", "log")
        for n in range(5)
    ]


def _build_registry() -> dict[int, Opcode]:
    table: dict[int, Opcode] = {}
    for opcode in (
        _base_table() + _push_family() + _dup_family()
        + _swap_family() + _log_family()
    ):
        if opcode.value in table:
            raise ValueError(f"duplicate opcode value 0x{opcode.value:02X}")
        table[opcode.value] = opcode
    if len(table) != SHANGHAI_OPCODE_COUNT:
        raise ValueError(
            f"expected {SHANGHAI_OPCODE_COUNT} opcodes, built {len(table)}"
        )
    return table


#: Opcode registry keyed by byte value.
OPCODES: dict[int, Opcode] = _build_registry()

#: Opcode registry keyed by mnemonic (also accepts the legacy aliases below).
OPCODES_BY_NAME: dict[str, Opcode] = {op.mnemonic: op for op in OPCODES.values()}

#: Legacy mnemonic aliases accepted by :func:`opcode_by_name`.
_ALIASES = {
    "KECCAK256": "SHA3",
    "DIFFICULTY": "PREVRANDAO",
    "SUICIDE": "SELFDESTRUCT",
}
for _alias, _canonical in _ALIASES.items():
    OPCODES_BY_NAME[_alias] = OPCODES_BY_NAME[_canonical]


def opcode_by_value(value: int) -> Opcode | None:
    """Look up an opcode by byte value, ``None`` for undefined bytes."""
    return OPCODES.get(value)


def opcode_by_name(mnemonic: str) -> Opcode:
    """Look up an opcode by mnemonic (case-insensitive, aliases accepted).

    Raises:
        KeyError: If the mnemonic is not defined in the Shanghai fork.
    """
    return OPCODES_BY_NAME[mnemonic.upper()]


def push_opcode(width: int) -> Opcode:
    """The PUSH opcode placing a ``width``-byte immediate (0–32)."""
    if not 0 <= width <= 32:
        raise ValueError(f"PUSH width must be in [0, 32], got {width}")
    return OPCODES[0x5F + width]


def dup_opcode(depth: int) -> Opcode:
    """DUP1–DUP16."""
    if not 1 <= depth <= 16:
        raise ValueError(f"DUP depth must be in [1, 16], got {depth}")
    return OPCODES[0x7F + depth]


def swap_opcode(depth: int) -> Opcode:
    """SWAP1–SWAP16."""
    if not 1 <= depth <= 16:
        raise ValueError(f"SWAP depth must be in [1, 16], got {depth}")
    return OPCODES[0x8F + depth]


def log_opcode(topics: int) -> Opcode:
    """LOG0–LOG4."""
    if not 0 <= topics <= 4:
        raise ValueError(f"LOG topic count must be in [0, 4], got {topics}")
    return OPCODES[0xA0 + topics]


def is_push(value: int) -> bool:
    """True when the byte value is PUSH0–PUSH32."""
    return 0x5F <= value <= 0x7F


def is_terminator(value: int) -> bool:
    """True when the byte value unconditionally ends a basic block."""
    opcode = OPCODES.get(value)
    return opcode is not None and opcode.is_terminator


def total_static_gas(values: list[int]) -> float:
    """Sum the static gas of a sequence of opcode byte values.

    Undefined bytes and INVALID contribute NaN, mirroring the reference
    table; the sum is then NaN as well (callers typically filter first).
    """
    total = 0.0
    for value in values:
        opcode = OPCODES.get(value)
        total += float("nan") if opcode is None else opcode.gas_or_nan
    return total


def _self_check() -> None:
    """Internal consistency checks, executed at import time."""
    assert OPCODES[0x00].mnemonic == "STOP"
    assert OPCODES[0x5F].mnemonic == "PUSH0"
    assert OPCODES[0xFE].gas is None
    assert math.isnan(OPCODES[0xFE].gas_or_nan)
    assert OPCODES[0xFF].gas == 5000


_self_check()
