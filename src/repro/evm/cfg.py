"""Control-flow graph recovery from EVM bytecode.

Splits a disassembly into basic blocks and connects them with the edges
that static analysis can prove: fallthrough, direct ``PUSH<n> → JUMP``/
``JUMPI`` targets, and conditional fallthrough. Indirect jumps (target
computed at runtime) are flagged per block rather than guessed.

The CFG powers structural features beyond plain opcode histograms
(dispatcher fan-out, block counts, cyclomatic-style complexity) and is the
static-analysis substrate ESCORT-style vulnerability detectors build on.
Built on :mod:`networkx` for graph algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.evm.disassembler import Disassembler
from repro.evm.instruction import Instruction

__all__ = ["BasicBlock", "ControlFlowGraph", "build_cfg"]

#: Opcodes that end a basic block.
_BLOCK_ENDERS = frozenset(
    {"JUMP", "JUMPI", "STOP", "RETURN", "REVERT", "INVALID", "SELFDESTRUCT"}
)


@dataclass
class BasicBlock:
    """A maximal straight-line instruction run.

    Attributes:
        start: Byte offset of the first instruction.
        instructions: The block's instructions, in order.
        has_indirect_jump: True when the block ends in a JUMP/JUMPI whose
            target is not a directly preceding PUSH (unresolvable
            statically).
    """

    start: int
    instructions: list[Instruction] = field(default_factory=list)
    has_indirect_jump: bool = False

    @property
    def end(self) -> int:
        """Offset one past the last instruction."""
        last = self.instructions[-1]
        return last.next_offset

    @property
    def terminator(self) -> str | None:
        """Mnemonic of the final instruction if it ends control flow."""
        last = self.instructions[-1].mnemonic
        return last if last in _BLOCK_ENDERS else None

    def __len__(self) -> int:
        return len(self.instructions)


@dataclass
class ControlFlowGraph:
    """Basic blocks + proved edges over one bytecode."""

    blocks: dict[int, BasicBlock]
    graph: nx.DiGraph

    @property
    def entry(self) -> int:
        return 0

    def block_count(self) -> int:
        return len(self.blocks)

    def edge_count(self) -> int:
        return self.graph.number_of_edges()

    def reachable_blocks(self) -> set[int]:
        """Blocks reachable from the entry along proved edges."""
        if self.entry not in self.graph:
            return set()
        return set(nx.descendants(self.graph, self.entry)) | {self.entry}

    def dead_blocks(self) -> set[int]:
        """Blocks not provably reachable (data sections, metadata, or
        targets of indirect jumps)."""
        return set(self.blocks) - self.reachable_blocks()

    def cyclomatic_complexity(self) -> int:
        """McCabe complexity as decision points + 1 (D + 1 form).

        The D+1 formulation is used rather than E − N + 2P because EVM
        CFGs have many exit blocks (STOP/RETURN/REVERT), which the edge
        formula undercounts.
        """
        if self.graph.number_of_nodes() == 0:
            return 0
        decisions = sum(
            1 for node in self.graph if self.graph.out_degree(node) >= 2
        )
        return decisions + 1

    def dispatcher_fanout(self) -> int:
        """Out-degree of the entry block region: how many distinct
        function bodies the selector dispatcher can reach. Counts JUMPI
        edges leaving the chain of blocks starting at the entry."""
        fanout = 0
        visited = set()
        frontier = [self.entry]
        while frontier:
            block_id = frontier.pop()
            if block_id in visited or block_id not in self.blocks:
                continue
            visited.add(block_id)
            block = self.blocks[block_id]
            if block.terminator == "JUMPI":
                fanout += 1
            for __, successor, data in self.graph.out_edges(block_id, data=True):
                if data.get("kind") == "fallthrough":
                    frontier.append(successor)
        return fanout

    def loops(self) -> list[list[int]]:
        """Simple cycles among proved edges (loop structures)."""
        return list(nx.simple_cycles(self.graph))


def _split_blocks(instructions: list[Instruction]) -> dict[int, BasicBlock]:
    """Partition instructions into basic blocks."""
    leaders: set[int] = {0} if instructions else set()
    for index, instruction in enumerate(instructions):
        if instruction.mnemonic == "JUMPDEST":
            leaders.add(instruction.offset)
        if (
            instruction.mnemonic in _BLOCK_ENDERS
            and index + 1 < len(instructions)
        ):
            leaders.add(instructions[index + 1].offset)
    blocks: dict[int, BasicBlock] = {}
    current: BasicBlock | None = None
    for instruction in instructions:
        if instruction.offset in leaders:
            current = BasicBlock(start=instruction.offset)
            blocks[instruction.offset] = current
        current.instructions.append(instruction)
        if instruction.mnemonic in _BLOCK_ENDERS:
            current = None
            # Next instruction (if any) is a leader by construction.
    return blocks


def build_cfg(bytecode: bytes | str) -> ControlFlowGraph:
    """Recover the control-flow graph of ``bytecode``."""
    disassembler = Disassembler(bytecode)
    instructions = disassembler.disassemble()
    jumpdests = disassembler.jump_destinations()
    blocks = _split_blocks(instructions)

    graph = nx.DiGraph()
    graph.add_nodes_from(blocks)
    ordered_starts = sorted(blocks)

    for start, block in blocks.items():
        last = block.instructions[-1]
        mnemonic = last.mnemonic
        block_index = ordered_starts.index(start)
        fallthrough = (
            ordered_starts[block_index + 1]
            if block_index + 1 < len(ordered_starts)
            else None
        )

        if mnemonic in ("JUMP", "JUMPI"):
            target = _direct_jump_target(block)
            if target is not None and target in jumpdests and target in blocks:
                graph.add_edge(start, target, kind="jump")
            elif target is None:
                block.has_indirect_jump = True
            if mnemonic == "JUMPI" and fallthrough is not None:
                graph.add_edge(start, fallthrough, kind="fallthrough")
        elif mnemonic in ("STOP", "RETURN", "REVERT", "INVALID",
                          "SELFDESTRUCT"):
            pass  # terminal
        elif fallthrough is not None:
            graph.add_edge(start, fallthrough, kind="fallthrough")

    return ControlFlowGraph(blocks=blocks, graph=graph)


def _direct_jump_target(block: BasicBlock) -> int | None:
    """Resolve ``PUSH<n> target ; JUMP[I]`` patterns."""
    if len(block.instructions) < 2:
        return None
    pushed = block.instructions[-2]
    if pushed.opcode.is_push and pushed.operand:
        return pushed.operand_int
    return None
