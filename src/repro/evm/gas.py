"""Gas accounting helpers for the mini EVM interpreter.

Static per-opcode costs live on the :class:`~repro.evm.opcodes.Opcode`
definitions; this module adds the dynamic components the interpreter needs
(memory expansion, word-copy surcharges), following the yellow-paper
formulas at the fidelity required to bound synthetic-contract execution.
"""

from __future__ import annotations

__all__ = [
    "memory_expansion_cost",
    "copy_cost",
    "keccak_cost",
    "words",
    "GAS_MEMORY_WORD",
    "GAS_COPY_WORD",
    "GAS_KECCAK_WORD",
]

#: Linear coefficient of the memory expansion cost.
GAS_MEMORY_WORD = 3

#: Per-word surcharge for *COPY opcodes.
GAS_COPY_WORD = 3

#: Per-word surcharge for SHA3.
GAS_KECCAK_WORD = 6


def words(size_bytes: int) -> int:
    """Number of 32-byte words needed to hold ``size_bytes`` bytes."""
    return (size_bytes + 31) // 32


def memory_cost(size_bytes: int) -> int:
    """Total cost of an active memory of ``size_bytes`` bytes.

    C_mem(a) = 3a + floor(a^2 / 512), with a in words (yellow paper, App. H).
    """
    a = words(size_bytes)
    return GAS_MEMORY_WORD * a + a * a // 512

def memory_expansion_cost(current_size: int, new_size: int) -> int:
    """Marginal gas to grow active memory from ``current_size`` bytes."""
    if new_size <= current_size:
        return 0
    return memory_cost(new_size) - memory_cost(current_size)


def copy_cost(size_bytes: int) -> int:
    """Dynamic cost of copying ``size_bytes`` (CALLDATACOPY, CODECOPY, …)."""
    return GAS_COPY_WORD * words(size_bytes)


def keccak_cost(size_bytes: int) -> int:
    """Dynamic cost of hashing ``size_bytes`` with SHA3."""
    return GAS_KECCAK_WORD * words(size_bytes)
