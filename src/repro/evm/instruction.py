"""A single disassembled EVM instruction.

The paper's BDM stores disassembled opcodes as a triple of *mnemonic*,
*operand* and *gas* — e.g. ``0x6080604052`` becomes ``(PUSH1, 0x80, 3),
(PUSH1, 0x40, 3), (MSTORE, NaN, 3)``. :class:`Instruction` carries that
triple plus the byte offset and enough structure for downstream feature
extraction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evm.opcodes import Opcode


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction within a bytecode sequence.

    Attributes:
        offset: Byte offset of the opcode within the bytecode.
        opcode: The :class:`~repro.evm.opcodes.Opcode` definition. For bytes
            not defined in the Shanghai fork this is the ``INVALID`` opcode
            definition with :attr:`is_undefined_byte` set.
        operand: Raw immediate bytes (empty for non-PUSH instructions).
        is_undefined_byte: True when the raw byte had no Shanghai definition
            and was mapped to ``INVALID`` (the evmdasm enhancement described
            in §III of the paper).
        is_truncated: True when the bytecode ended in the middle of a PUSH
            immediate; ``operand`` then holds the bytes that were present.
        raw_byte: The original byte value (differs from ``opcode.value``
            only for undefined bytes).
    """

    offset: int
    opcode: Opcode
    operand: bytes = b""
    is_undefined_byte: bool = False
    is_truncated: bool = False
    raw_byte: int | None = None

    @property
    def mnemonic(self) -> str:
        """Human-readable alias, e.g. ``"PUSH1"``."""
        return self.opcode.mnemonic

    @property
    def size(self) -> int:
        """Total encoded size in bytes (opcode + any immediate present)."""
        return 1 + len(self.operand)

    @property
    def next_offset(self) -> int:
        """Offset of the instruction that follows this one."""
        return self.offset + self.size

    @property
    def operand_int(self) -> int | None:
        """The immediate operand as an unsigned integer, ``None`` if absent."""
        if not self.operand:
            return None
        return int.from_bytes(self.operand, "big")

    @property
    def operand_hex(self) -> str | None:
        """The immediate operand as ``0x``-prefixed hex, ``None`` if absent."""
        if not self.operand:
            return None
        return "0x" + self.operand.hex()

    @property
    def gas(self) -> float:
        """Static gas cost (NaN for INVALID / undefined bytes)."""
        return self.opcode.gas_or_nan

    def as_triple(self) -> tuple[str, str, float]:
        """The (mnemonic, operand, gas) triple from the paper's BDM.

        The operand slot is the string ``"NaN"`` for instructions without an
        immediate, matching the CSV layout the paper describes.
        """
        operand = self.operand_hex if self.operand else "NaN"
        return (self.mnemonic, operand, self.gas)

    def __str__(self) -> str:
        if self.operand:
            return f"{self.mnemonic} {self.operand_hex}"
        return self.mnemonic
