"""Declarative deployment configuration: one file, the whole topology.

The serving stack's knobs — shard counts, backpressure policies, cache
sizes, batch sizes and deadlines, sink fan-out, rollout thresholds,
store URLs — used to travel as CLI flags, each validated (if at all)
deep inside the component that consumed it. This module replaces that
with one *declarative* deployment description, the way a DDS QoS
profile declares buffering/reliability policy up front (PAPERS.md:
*Dependency Chain Analysis of ROS 2 DDS QoS Policies*): a TOML or JSON
file parsed into typed dataclasses, every knob checked against its
domain at parse time, and unknown keys rejected so a typo cannot
silently become a default.

Parsing is *total*: all problems in a file are collected and reported
together in one :class:`ConfigError` (field path + message per
problem), not one-at-a-time. A :class:`DeployConfig` that exists is
domain-valid by construction; *cross-knob* consistency is the rule
engine's job (:mod:`repro.deploy.rules`), which is what
``phishinghook check-config`` runs — statically, before anything
launches.

Sections (TOML table names match the dataclass fields)::

    [store]      # where model artifacts live        -> StoreConfig
    [model]      # which artifact production serves  -> ModelConfig
    [serve]      # scan-service knobs                -> ServeConfig
    [stream]     # scanner topology + backpressure   -> StreamConfig
    [[sinks]]    # alert fan-out (repeatable)        -> SinkConfig
    [source]     # traffic source (replay campaign)  -> SourceConfig
    [rollout]    # optional shadow-rollout plan      -> RolloutConfig
    [fleet]      # optional multi-process fleet      -> FleetConfig
    [fault_tolerance]  # optional self-healing knobs -> FaultToleranceConfig
    [loop]       # optional continuous-learning loop -> LoopConfig
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from dataclasses import dataclass

__all__ = [
    "ConfigError",
    "ConfigProblem",
    "StoreConfig",
    "ModelConfig",
    "ServeConfig",
    "StreamConfig",
    "SinkConfig",
    "SourceConfig",
    "RolloutConfig",
    "FleetConfig",
    "FaultToleranceConfig",
    "LoopConfig",
    "DeployConfig",
    "load_config",
    "parse_config",
]

#: Backpressure policies the scanner accepts (mirrors
#: ``repro.stream.scanner.SCANNER_POLICIES`` without importing the
#: streaming stack — config parsing must stay import-light and
#: side-effect free).
STREAM_POLICIES = ("block", "drop_oldest", "drop_newest", "sample")

#: Alert sink kinds the launcher can construct.
SINK_KINDS = ("memory", "jsonl", "webhook")

#: Traffic sources. ``replay`` drives a recorded synthetic campaign
#: through the scanner (deterministic, benchmarkable); ``live`` attaches
#: to a chain head via the event bus.
SOURCE_MODES = ("replay", "live")

#: Rollout decision policies (mirrors the CLI / ``repro.rollout``).
#: ``adaptive`` is the learning-loop gate: loss-averse, tolerant of new
#: flags the retrained candidate raises on drifted traffic.
ROLLOUT_POLICIES = ("parity", "manual", "adaptive")

#: Store URL schemes (mirrors ``repro.artifacts.backends``).
STORE_SCHEMES = ("file", "memory", "bucket", "http", "https")

#: Fleet admission-control overflow policies (mirrors
#: ``repro.net.coordinator``): shed (HTTP 429) or block the submitter.
FLEET_OVERFLOW = ("shed", "block")

#: Retrain execution modes for the continuous-learning loop (mirrors
#: ``repro.loop.retrain.RETRAIN_MODES`` without importing the ML stack).
LOOP_RETRAIN_MODES = ("subprocess", "inline")

#: HSC variants whose fitted state can be *grown* with ``fit_more``
#: (mirrors the ensembles of ``repro.models.hsc.HSC_VARIANTS``; k-NN is
#: instance-based and has nothing to warm-start).
WARM_START_FAMILIES = ("Random Forest", "XGBoost", "LightGBM", "CatBoost")


@dataclass(frozen=True)
class ConfigProblem:
    """One domain violation found while parsing a config file."""

    path: str  # dotted field path, e.g. "stream.shards"
    message: str

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"{self.path}: {self.message}"


class ConfigError(ValueError):
    """A config file failed to parse or failed domain validation.

    ``problems`` holds every :class:`ConfigProblem` found — parsing is
    total, so one bad file produces one error listing everything wrong
    with it.
    """

    def __init__(self, source: str, problems: list[ConfigProblem]):
        self.source = source
        self.problems = list(problems)
        lines = "\n".join(f"  {p.path}: {p.message}" for p in self.problems)
        super().__init__(
            f"invalid deployment config {source}:\n{lines}"
        )

    def as_dict(self) -> dict:
        return {
            "config": self.source,
            "ok": False,
            "problems": [
                {"path": p.path, "message": p.message} for p in self.problems
            ],
        }


# --------------------------------------------------------------------- #
# Section dataclasses
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class StoreConfig:
    """Where model artifacts live (``[store]``)."""

    url: str = "./phook-models"
    #: Local spool directory for object-store backends (``bucket://``);
    #: multi-shard monitors without one re-pull every cold start (D006).
    cache_dir: str = ""

    @property
    def scheme(self) -> str:
        """URL scheme; bare paths count as ``file``."""
        for scheme in STORE_SCHEMES:
            if self.url.startswith(f"{scheme}://"):
                return scheme
        return "file"


@dataclass(frozen=True)
class ModelConfig:
    """Which artifact the topology serves (``[model]``)."""

    tag: str = ""  # store tag / version / unique prefix
    path: str = ""  # artifact file (mutually exclusive with tag)
    expected_fingerprint: str = ""

    @property
    def source(self) -> str:
        return self.path or self.tag


@dataclass(frozen=True)
class ServeConfig:
    """Scan-service knobs (``[serve]``)."""

    threshold: float = 0.5
    cache_entries: int = 8192


@dataclass(frozen=True)
class StreamConfig:
    """Scanner topology and backpressure (``[stream]``)."""

    shards: int = 2
    batch_size: int = 16
    queue: int = 256
    policy: str = "block"
    #: Oldest-event age that forces a flush; 0 disables deadline
    #: flushing entirely (only safe under producer-paced ``block``).
    deadline_seconds: float = 0.25
    dedup_addresses: bool = True


@dataclass(frozen=True)
class SinkConfig:
    """One alert delivery channel (``[[sinks]]``)."""

    kind: str = "memory"
    path: str = ""  # jsonl
    url: str = ""  # webhook
    #: Webhook POST timeout in seconds (webhook sinks only).
    timeout: float = 2.0


@dataclass(frozen=True)
class SourceConfig:
    """Traffic source (``[source]``)."""

    mode: str = "replay"
    contracts: int = 200
    seed: int = 0
    #: Replay pacing in events/sec; 0 replays at maximum speed.
    rate: float = 0.0


@dataclass(frozen=True)
class RolloutConfig:
    """Shadow-rollout plan (``[rollout]``, optional)."""

    candidate: str = "candidate"
    production: str = "production"
    policy: str = "parity"
    min_events: int = 100
    promote_agreement: float = 0.98
    abort_agreement: float = 0.90
    max_divergence: float = 0.05
    #: Highest tolerated fraction of shadow events where only production
    #: flagged (``adaptive`` policy only): alerts the candidate drops.
    max_lost_rate: float = 0.02


@dataclass(frozen=True)
class FleetConfig:
    """Multi-process serving fleet (``[fleet]``, optional).

    Present means the topology launches as worker *processes* behind a
    coordinator (:mod:`repro.net`) instead of one in-process scanner.
    """

    workers: int = 2
    #: Max in-flight batches per worker before admission control acts.
    queue_depth: int = 4
    #: Overflow policy: ``shed`` (HTTP 429) or ``block`` the submitter.
    overflow: str = "shed"
    #: Ship decoded feature blocks through shared memory (decode once
    #: per host); off means workers re-decode every unique bytecode.
    ship_features: bool = True
    #: Shared-memory ring slots; 0 sizes it automatically
    #: (``workers × queue_depth × 2``).
    slots: int = 0
    slot_bytes: int = 1 << 20
    #: Host-wide shared feature cache: keep each unique bytecode and its
    #: decoded ids resident across batches (and workers) so repeat
    #: deployments are never re-shipped or re-decoded. Needs
    #: ``ship_features``.
    shared_cache: bool = False
    #: Shared-cache entry slots; 0 picks the default (256).
    shared_cache_slots: int = 0
    #: Bytes per shared-cache slot; 0 inherits ``slot_bytes``.
    shared_cache_slot_bytes: int = 0
    #: Map worker model artifacts with ``mmap_mode="r"`` (zero-copy cold
    #: starts; node arrays page in on demand and are shared between
    #: workers by the OS cache).
    mmap: bool = False
    host: str = "127.0.0.1"
    #: Coordinator port; 0 binds an ephemeral port.
    port: int = 0
    #: Per-batch worker HTTP timeout (seconds): the bound on how long a
    #: hung worker can stall a dispatch before it is declared dead.
    request_timeout: float = 10.0


@dataclass(frozen=True)
class FaultToleranceConfig:
    """Self-healing knobs (``[fault_tolerance]``, optional).

    Present means the fleet launches with worker supervision, retrying
    clients, and (when ``dead_letter_path`` is set) dead-letter spooling
    on webhook sinks. Absent keeps the PR-7 behaviour: dead workers are
    routed around but never replaced.
    """

    #: Auto-respawn crashed workers (heartbeat + exponential backoff).
    respawn: bool = True
    #: Consecutive failed respawns before a worker is quarantined.
    max_respawns: int = 3
    #: Supervisor heartbeat interval (seconds).
    heartbeat_seconds: float = 0.5
    #: First-respawn backoff; doubles per consecutive failure.
    backoff_seconds: float = 0.2
    backoff_max_seconds: float = 5.0
    #: Retry attempts for store/webhook HTTP calls (1 = no retry).
    retry_attempts: int = 3
    #: Circuit breaker: consecutive failures that open it, and how long
    #: it stays open before one half-open probe.
    breaker_failures: int = 5
    breaker_reset_seconds: float = 30.0
    #: JSONL dead-letter spool for alerts the webhook cannot deliver;
    #: empty disables spooling (failed deliveries are only counted).
    dead_letter_path: str = ""


@dataclass(frozen=True)
class LoopConfig:
    """Continuous-learning loop (``[loop]``, optional).

    Present means the topology runs a :class:`repro.loop.LoopOrchestrator`
    over the scanner: drift on the live score distribution triggers an
    incremental warm-start retrain, the candidate shadows production, and
    the ``[rollout]`` policy promotes or aborts — every decision appended
    to the store's ``loop-history.jsonl``.
    """

    #: Scores per drift window (reference and live both hold this many).
    window: int = 256
    #: Labeled-event cadence between drift checks.
    check_every: int = 64
    #: Paired blocks per window (the Wilcoxon sample size).
    blocks: int = 8
    #: Significance level on the Holm-adjusted p-value.
    alpha: float = 0.05
    #: Cliff's-delta magnitude floor; smaller shifts are noise.
    min_effect: float = 0.1
    #: Consecutive positive checks required to confirm drift.
    confirm_checks: int = 2
    #: Estimators grown per warm-start retrain.
    grow: int = 40
    #: Held-out fraction of the retrain window.
    holdout: float = 0.25
    #: Store tag the fresh candidate registers under.
    candidate: str = "candidate"
    #: Retrain execution: forked ``subprocess`` (serving never stalls)
    #: or ``inline`` (deterministic single-process tests).
    retrain: str = "subprocess"
    #: Declared production model family, checked against the
    #: warm-startable set (D028); empty skips the static check.
    model_family: str = ""


@dataclass(frozen=True)
class DeployConfig:
    """The full deployment topology, domain-valid by construction."""

    store: StoreConfig = StoreConfig()
    model: ModelConfig = ModelConfig()
    serve: ServeConfig = ServeConfig()
    stream: StreamConfig = StreamConfig()
    sinks: tuple[SinkConfig, ...] = ()
    source: SourceConfig = SourceConfig()
    rollout: RolloutConfig | None = None
    fleet: FleetConfig | None = None
    fault_tolerance: FaultToleranceConfig | None = None
    loop: LoopConfig | None = None
    #: Where this config came from (file path or ``"<dict>"``).
    origin: str = "<dict>"

    def as_dict(self) -> dict:
        """JSON-ready view of the parsed topology."""
        data = {
            "store": dataclasses.asdict(self.store),
            "model": dataclasses.asdict(self.model),
            "serve": dataclasses.asdict(self.serve),
            "stream": dataclasses.asdict(self.stream),
            "sinks": [
                # Only webhook sinks take a delivery timeout; dropping the
                # key elsewhere keeps as_dict() re-parseable under the same
                # strictness the parser applies to hand-written configs.
                {
                    k: v
                    for k, v in dataclasses.asdict(s).items()
                    if not (k == "timeout" and s.kind != "webhook")
                }
                for s in self.sinks
            ],
            "source": dataclasses.asdict(self.source),
            "rollout": (
                dataclasses.asdict(self.rollout) if self.rollout else None
            ),
            "fleet": (
                dataclasses.asdict(self.fleet) if self.fleet else None
            ),
            "fault_tolerance": (
                dataclasses.asdict(self.fault_tolerance)
                if self.fault_tolerance else None
            ),
            "loop": (
                dataclasses.asdict(self.loop) if self.loop else None
            ),
        }
        return data


# --------------------------------------------------------------------- #
# Parsing
# --------------------------------------------------------------------- #


class _Section:
    """Typed field extraction over one raw mapping, collecting problems."""

    def __init__(self, name: str, raw: dict, problems: list[ConfigProblem]):
        self.name = name
        self.raw = dict(raw)
        self.problems = problems

    def _path(self, field: str) -> str:
        return f"{self.name}.{field}" if self.name else field

    def complain(self, field: str, message: str) -> None:
        self.problems.append(ConfigProblem(self._path(field), message))

    def finish(self) -> None:
        """Reject keys no field consumed (typos never become defaults)."""
        for key in sorted(self.raw):
            self.complain(str(key), "unknown key")

    # ---- typed getters ------------------------------------------------ #

    def _take(self, field: str, default):
        return self.raw.pop(field, default)

    def string(self, field: str, default: str, *, choices=None) -> str:
        value = self._take(field, default)
        if not isinstance(value, str):
            self.complain(field, f"expected a string, got {value!r}")
            return default
        if choices is not None and value not in choices:
            self.complain(
                field,
                f"{value!r} is not one of {', '.join(map(repr, choices))}",
            )
            return default
        return value

    def boolean(self, field: str, default: bool) -> bool:
        value = self._take(field, default)
        if not isinstance(value, bool):
            self.complain(field, f"expected true/false, got {value!r}")
            return default
        return value

    def integer(
        self, field: str, default: int, *, minimum: int | None = None
    ) -> int:
        value = self._take(field, default)
        if isinstance(value, bool) or not isinstance(value, int):
            self.complain(field, f"expected an integer, got {value!r}")
            return default
        if minimum is not None and value < minimum:
            self.complain(field, f"must be >= {minimum}, got {value}")
            return default
        return value

    def number(
        self,
        field: str,
        default: float,
        *,
        minimum: float | None = None,
        maximum: float | None = None,
        exclusive: bool = False,
    ) -> float:
        value = self._take(field, default)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            self.complain(field, f"expected a number, got {value!r}")
            return default
        value = float(value)
        if minimum is not None and (
            value <= minimum if exclusive else value < minimum
        ):
            bound = ">" if exclusive else ">="
            self.complain(field, f"must be {bound} {minimum}, got {value}")
            return default
        if maximum is not None and (
            value >= maximum if exclusive else value > maximum
        ):
            bound = "<" if exclusive else "<="
            self.complain(field, f"must be {bound} {maximum}, got {value}")
            return default
        return value


def _section(
    data: dict,
    name: str,
    problems: list[ConfigProblem],
) -> _Section | None:
    raw = data.pop(name, None)
    if raw is None:
        return _Section(name, {}, problems)
    if not isinstance(raw, dict):
        problems.append(
            ConfigProblem(name, f"expected a table/object, got {raw!r}")
        )
        return _Section(name, {}, problems)
    return _Section(name, raw, problems)


def _parse_store(section: _Section) -> StoreConfig:
    url = section.string("url", StoreConfig.url)
    if not url:
        section.complain("url", "must not be empty")
        url = StoreConfig.url
    else:
        scheme, _, _ = url.partition("://")
        if "://" in url and scheme not in STORE_SCHEMES:
            section.complain(
                "url",
                f"unknown scheme {scheme!r}; supported: "
                + ", ".join(f"{s}://" for s in STORE_SCHEMES),
            )
    cache_dir = section.string("cache_dir", "")
    section.finish()
    return StoreConfig(url=url, cache_dir=cache_dir)


def _parse_model(section: _Section) -> ModelConfig:
    tag = section.string("tag", "")
    path = section.string("path", "")
    fingerprint = section.string("expected_fingerprint", "")
    if tag and path:
        section.complain(
            "tag", "mutually exclusive with model.path — pick one source"
        )
    if not tag and not path:
        section.complain(
            "tag", "a deployment must name its model: set tag or path"
        )
    section.finish()
    return ModelConfig(tag=tag, path=path, expected_fingerprint=fingerprint)


def _parse_serve(section: _Section) -> ServeConfig:
    threshold = section.number(
        "threshold", ServeConfig.threshold,
        minimum=0.0, maximum=1.0, exclusive=True,
    )
    cache_entries = section.integer(
        "cache_entries", ServeConfig.cache_entries, minimum=1
    )
    section.finish()
    return ServeConfig(threshold=threshold, cache_entries=cache_entries)


def _parse_stream(section: _Section) -> StreamConfig:
    config = StreamConfig(
        shards=section.integer("shards", StreamConfig.shards, minimum=1),
        batch_size=section.integer(
            "batch_size", StreamConfig.batch_size, minimum=1
        ),
        queue=section.integer("queue", StreamConfig.queue, minimum=1),
        policy=section.string(
            "policy", StreamConfig.policy, choices=STREAM_POLICIES
        ),
        deadline_seconds=section.number(
            "deadline_seconds", StreamConfig.deadline_seconds, minimum=0.0
        ),
        dedup_addresses=section.boolean(
            "dedup_addresses", StreamConfig.dedup_addresses
        ),
    )
    section.finish()
    return config


def _parse_sinks(
    data: dict, problems: list[ConfigProblem]
) -> tuple[SinkConfig, ...]:
    raw = data.pop("sinks", [])
    if not isinstance(raw, list):
        problems.append(
            ConfigProblem("sinks", f"expected an array of tables, got {raw!r}")
        )
        return ()
    sinks = []
    for index, entry in enumerate(raw):
        name = f"sinks[{index}]"
        if not isinstance(entry, dict):
            problems.append(
                ConfigProblem(name, f"expected a table/object, got {entry!r}")
            )
            continue
        section = _Section(name, entry, problems)
        kind = section.string("kind", "", choices=SINK_KINDS)
        path = section.string("path", "")
        url = section.string("url", "")
        has_timeout = "timeout" in section.raw
        timeout = section.number(
            "timeout", SinkConfig.timeout, minimum=0.0, exclusive=True
        )
        if kind == "jsonl" and not path:
            section.complain("path", "jsonl sink needs a file path")
        if kind == "webhook" and not url:
            section.complain("url", "webhook sink needs a url")
        if kind == "memory" and (path or url):
            section.complain("kind", "memory sink takes no path/url")
        if kind == "jsonl" and url:
            section.complain("url", "jsonl sink takes no url")
        if kind == "webhook" and path:
            section.complain("path", "webhook sink takes no path")
        if has_timeout and kind != "webhook":
            section.complain(
                "timeout", "only webhook sinks take a delivery timeout"
            )
        section.finish()
        sinks.append(
            SinkConfig(kind=kind, path=path, url=url, timeout=timeout)
        )
    return tuple(sinks)


def _parse_source(section: _Section) -> SourceConfig:
    config = SourceConfig(
        mode=section.string("mode", SourceConfig.mode, choices=SOURCE_MODES),
        contracts=section.integer(
            "contracts", SourceConfig.contracts, minimum=2
        ),
        seed=section.integer("seed", SourceConfig.seed, minimum=0),
        rate=section.number("rate", SourceConfig.rate, minimum=0.0),
    )
    section.finish()
    return config


def _parse_rollout(
    data: dict, problems: list[ConfigProblem]
) -> RolloutConfig | None:
    raw = data.pop("rollout", None)
    if raw is None:
        return None
    if not isinstance(raw, dict):
        problems.append(
            ConfigProblem("rollout", f"expected a table/object, got {raw!r}")
        )
        return None
    section = _Section("rollout", raw, problems)
    candidate = section.string("candidate", RolloutConfig.candidate)
    production = section.string("production", RolloutConfig.production)
    if not candidate:
        section.complain("candidate", "must not be empty")
        candidate = RolloutConfig.candidate
    if not production:
        section.complain("production", "must not be empty")
        production = RolloutConfig.production
    config = RolloutConfig(
        candidate=candidate,
        production=production,
        policy=section.string(
            "policy", RolloutConfig.policy, choices=ROLLOUT_POLICIES
        ),
        min_events=section.integer(
            "min_events", RolloutConfig.min_events, minimum=1
        ),
        promote_agreement=section.number(
            "promote_agreement", RolloutConfig.promote_agreement,
            minimum=0.0, maximum=1.0, exclusive=True,
        ),
        abort_agreement=section.number(
            "abort_agreement", RolloutConfig.abort_agreement,
            minimum=0.0, maximum=1.0, exclusive=True,
        ),
        max_divergence=section.number(
            "max_divergence", RolloutConfig.max_divergence,
            minimum=0.0, maximum=1.0, exclusive=True,
        ),
        max_lost_rate=section.number(
            "max_lost_rate", RolloutConfig.max_lost_rate,
            minimum=0.0, maximum=1.0,
        ),
    )
    section.finish()
    return config


def _parse_fleet(
    data: dict, problems: list[ConfigProblem]
) -> FleetConfig | None:
    raw = data.pop("fleet", None)
    if raw is None:
        return None
    if not isinstance(raw, dict):
        problems.append(
            ConfigProblem("fleet", f"expected a table/object, got {raw!r}")
        )
        return None
    section = _Section("fleet", raw, problems)
    host = section.string("host", FleetConfig.host)
    if not host:
        section.complain("host", "must not be empty")
        host = FleetConfig.host
    port = section.integer("port", FleetConfig.port, minimum=0)
    if port > 65535:
        section.complain("port", f"must be <= 65535, got {port}")
        port = FleetConfig.port
    config = FleetConfig(
        workers=section.integer("workers", FleetConfig.workers, minimum=1),
        queue_depth=section.integer(
            "queue_depth", FleetConfig.queue_depth, minimum=1
        ),
        overflow=section.string(
            "overflow", FleetConfig.overflow, choices=FLEET_OVERFLOW
        ),
        ship_features=section.boolean(
            "ship_features", FleetConfig.ship_features
        ),
        slots=section.integer("slots", FleetConfig.slots, minimum=0),
        slot_bytes=section.integer(
            "slot_bytes", FleetConfig.slot_bytes, minimum=4096
        ),
        shared_cache=section.boolean(
            "shared_cache", FleetConfig.shared_cache
        ),
        shared_cache_slots=section.integer(
            "shared_cache_slots", FleetConfig.shared_cache_slots, minimum=0
        ),
        shared_cache_slot_bytes=section.integer(
            "shared_cache_slot_bytes",
            FleetConfig.shared_cache_slot_bytes, minimum=0,
        ),
        mmap=section.boolean("mmap", FleetConfig.mmap),
        host=host,
        port=port,
        request_timeout=section.number(
            "request_timeout", FleetConfig.request_timeout,
            minimum=0.0, exclusive=True,
        ),
    )
    section.finish()
    return config


def _parse_fault_tolerance(
    data: dict, problems: list[ConfigProblem]
) -> FaultToleranceConfig | None:
    raw = data.pop("fault_tolerance", None)
    if raw is None:
        return None
    if not isinstance(raw, dict):
        problems.append(
            ConfigProblem(
                "fault_tolerance", f"expected a table/object, got {raw!r}"
            )
        )
        return None
    section = _Section("fault_tolerance", raw, problems)
    config = FaultToleranceConfig(
        respawn=section.boolean("respawn", FaultToleranceConfig.respawn),
        max_respawns=section.integer(
            "max_respawns", FaultToleranceConfig.max_respawns, minimum=1
        ),
        heartbeat_seconds=section.number(
            "heartbeat_seconds", FaultToleranceConfig.heartbeat_seconds,
            minimum=0.0, exclusive=True,
        ),
        backoff_seconds=section.number(
            "backoff_seconds", FaultToleranceConfig.backoff_seconds,
            minimum=0.0,
        ),
        backoff_max_seconds=section.number(
            "backoff_max_seconds",
            FaultToleranceConfig.backoff_max_seconds,
            minimum=0.0,
        ),
        retry_attempts=section.integer(
            "retry_attempts", FaultToleranceConfig.retry_attempts,
            minimum=1,
        ),
        breaker_failures=section.integer(
            "breaker_failures", FaultToleranceConfig.breaker_failures,
            minimum=1,
        ),
        breaker_reset_seconds=section.number(
            "breaker_reset_seconds",
            FaultToleranceConfig.breaker_reset_seconds,
            minimum=0.0, exclusive=True,
        ),
        dead_letter_path=section.string("dead_letter_path", ""),
    )
    section.finish()
    return config


def _parse_loop(
    data: dict, problems: list[ConfigProblem]
) -> LoopConfig | None:
    raw = data.pop("loop", None)
    if raw is None:
        return None
    if not isinstance(raw, dict):
        problems.append(
            ConfigProblem("loop", f"expected a table/object, got {raw!r}")
        )
        return None
    section = _Section("loop", raw, problems)
    candidate = section.string("candidate", LoopConfig.candidate)
    if not candidate:
        section.complain("candidate", "must not be empty")
        candidate = LoopConfig.candidate
    window = section.integer("window", LoopConfig.window, minimum=4)
    blocks = section.integer("blocks", LoopConfig.blocks, minimum=2)
    # Window/blocks consistency is same-section, so the parser owns it
    # (like model.tag vs model.path): the monitor rejects these shapes
    # at construction, deep inside launch.
    if window < 2 * blocks:
        section.complain(
            "window", f"must be >= 2 x loop.blocks ({2 * blocks}), "
                      f"got {window}"
        )
    elif window % blocks:
        section.complain(
            "window",
            f"must be divisible by loop.blocks={blocks}, got {window}",
        )
    config = LoopConfig(
        window=window,
        check_every=section.integer(
            "check_every", LoopConfig.check_every, minimum=1
        ),
        blocks=blocks,
        alpha=section.number(
            "alpha", LoopConfig.alpha,
            minimum=0.0, maximum=1.0, exclusive=True,
        ),
        min_effect=section.number(
            "min_effect", LoopConfig.min_effect, minimum=0.0, maximum=1.0
        ),
        confirm_checks=section.integer(
            "confirm_checks", LoopConfig.confirm_checks, minimum=1
        ),
        grow=section.integer("grow", LoopConfig.grow, minimum=1),
        holdout=section.number(
            "holdout", LoopConfig.holdout,
            minimum=0.0, maximum=1.0, exclusive=True,
        ),
        candidate=candidate,
        retrain=section.string(
            "retrain", LoopConfig.retrain, choices=LOOP_RETRAIN_MODES
        ),
        model_family=section.string("model_family", ""),
    )
    section.finish()
    return config


def parse_config(data: dict, *, origin: str = "<dict>") -> DeployConfig:
    """Validate a raw mapping into a :class:`DeployConfig`.

    Raises :class:`ConfigError` listing *every* domain problem found.
    """
    if not isinstance(data, dict):
        raise ConfigError(
            origin,
            [ConfigProblem("", f"expected a table/object, got {data!r}")],
        )
    data = dict(data)
    problems: list[ConfigProblem] = []

    store = _parse_store(_section(data, "store", problems))
    model = _parse_model(_section(data, "model", problems))
    serve = _parse_serve(_section(data, "serve", problems))
    stream = _parse_stream(_section(data, "stream", problems))
    sinks = _parse_sinks(data, problems)
    source = _parse_source(_section(data, "source", problems))
    rollout = _parse_rollout(data, problems)
    fleet = _parse_fleet(data, problems)
    fault_tolerance = _parse_fault_tolerance(data, problems)
    loop = _parse_loop(data, problems)

    for key in sorted(data):
        problems.append(ConfigProblem(str(key), "unknown section"))
    if problems:
        raise ConfigError(origin, problems)
    return DeployConfig(
        store=store,
        model=model,
        serve=serve,
        stream=stream,
        sinks=sinks,
        source=source,
        rollout=rollout,
        fleet=fleet,
        fault_tolerance=fault_tolerance,
        loop=loop,
        origin=origin,
    )


def load_config(path) -> DeployConfig:
    """Load and validate a deployment config file (TOML or JSON).

    The format follows the file suffix: ``.toml`` parses with the
    stdlib ``tomllib``, ``.json`` with ``json``. Syntax errors, unknown
    suffixes and unreadable files all surface as :class:`ConfigError`
    (so ``check-config`` has exactly one failure type to render).
    """
    path = pathlib.Path(path)
    origin = str(path)
    suffix = path.suffix.lower()
    if suffix not in (".toml", ".json"):
        raise ConfigError(
            origin,
            [ConfigProblem(
                "", f"unsupported config format {suffix or '<none>'!r} "
                    "(expected .toml or .json)",
            )],
        )
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise ConfigError(
            origin, [ConfigProblem("", f"unreadable: {error}")]
        ) from error
    if suffix == ".toml":
        import tomllib

        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as error:
            raise ConfigError(
                origin, [ConfigProblem("", f"TOML syntax: {error}")]
            ) from error
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigError(
                origin, [ConfigProblem("", f"JSON syntax: {error}")]
            ) from error
    return parse_config(data, origin=origin)
