"""Deployment-config static verification (``repro.deploy``).

Misconfiguration — not code — is the main outage risk once a serving
stack has this many knobs. This package makes the deployment
description *declarative* and *verifiable before launch*, following the
QoS-Guard approach of checking declarative profiles against
dependency-violation rules offline (PAPERS.md: *Dependency Chain
Analysis of ROS 2 DDS QoS Policies*; the ROSA analyser statically
analyses process specifications rather than executing them):

* :mod:`repro.deploy.config` — one TOML/JSON file describing the full
  stream + serve + rollout + store topology, parsed into typed
  dataclasses with per-knob domain validation
  (:func:`load_config` / :class:`DeployConfig`),
* :mod:`repro.deploy.rules` — the cross-knob rule catalog
  (:data:`RULES`, stable ``D###`` IDs, WARN/ERROR severities) and the
  pure :func:`check_config` analyser behind
  ``phishinghook check-config``,
* :mod:`repro.deploy.launch` — the only bridge from a verified config
  to live objects; :func:`ensure_launchable` refuses ERROR-severity
  topologies before anything starts.

Operator documentation — every knob and every rule, with rationale and
fix — lives in ``docs/configuration.md``.
"""

from repro.deploy.config import (
    ConfigError,
    ConfigProblem,
    DeployConfig,
    FleetConfig,
    LoopConfig,
    ModelConfig,
    RolloutConfig,
    ServeConfig,
    SinkConfig,
    SourceConfig,
    StoreConfig,
    StreamConfig,
    load_config,
    parse_config,
)
from repro.deploy.launch import (
    DeploymentBlockedError,
    build_fleet,
    build_loop,
    build_replay_corpus,
    build_scanner,
    build_service,
    build_sinks,
    ensure_launchable,
    open_store,
)
from repro.deploy.rules import (
    ERROR,
    RULES,
    WARN,
    CheckReport,
    Rule,
    Violation,
    check_config,
    rule_catalog,
)

__all__ = [
    # config
    "ConfigError",
    "ConfigProblem",
    "DeployConfig",
    "StoreConfig",
    "ModelConfig",
    "ServeConfig",
    "StreamConfig",
    "SinkConfig",
    "SourceConfig",
    "RolloutConfig",
    "FleetConfig",
    "LoopConfig",
    "load_config",
    "parse_config",
    # rules
    "ERROR",
    "WARN",
    "Rule",
    "Violation",
    "RULES",
    "CheckReport",
    "check_config",
    "rule_catalog",
    # launch
    "DeploymentBlockedError",
    "ensure_launchable",
    "open_store",
    "build_sinks",
    "build_service",
    "build_scanner",
    "build_fleet",
    "build_loop",
    "build_replay_corpus",
]
