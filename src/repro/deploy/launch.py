"""Config-driven topology construction — the *execute* half of deploy.

:func:`check_config` is the static analyser; this module is the only
place a validated :class:`~repro.deploy.config.DeployConfig` turns into
live objects (stores, scan services, stream scanners, sinks, corpora).
The contract is the QoS-Guard one: **verification precedes launch**.
:func:`ensure_launchable` runs the full rule catalog and raises
:class:`DeploymentBlockedError` on any ERROR-severity violation, so a
topology that would lose alerts or thrash its cache is refused before a
single worker, file handle or model load exists.

Imports of the serving stack are deliberately local to the builder
functions: importing :mod:`repro.deploy` (as ``check-config`` does)
must never drag in — let alone construct — the runtime it is
analysing.
"""

from __future__ import annotations

from repro.deploy.config import DeployConfig
from repro.deploy.rules import CheckReport, check_config

__all__ = [
    "DeploymentBlockedError",
    "ensure_launchable",
    "open_store",
    "build_sinks",
    "build_service",
    "build_scanner",
    "build_fleet",
    "build_loop",
    "build_replay_corpus",
]


class DeploymentBlockedError(RuntimeError):
    """A config failed verification; nothing was launched.

    ``report`` carries the full :class:`CheckReport` so callers render
    the same violations ``check-config`` would have shown.
    """

    def __init__(self, report: CheckReport):
        self.report = report
        errors = ", ".join(v.rule_id for v in report.errors)
        super().__init__(
            f"deployment config {report.config.origin} fails verification "
            f"({errors}); run 'phishinghook check-config' for details"
        )


def ensure_launchable(config: DeployConfig) -> CheckReport:
    """Verify a config before launch; ERROR violations block it.

    Returns the report (so callers can still surface WARNs) or raises
    :class:`DeploymentBlockedError` when any ERROR-severity rule fires.
    """
    report = check_config(config)
    if not report.ok:
        raise DeploymentBlockedError(report)
    return report


# --------------------------------------------------------------------- #
# Builders (launch-time only; every serving import is local)
# --------------------------------------------------------------------- #


def open_store(config: DeployConfig):
    """The :class:`~repro.artifacts.store.ModelStore` the config names."""
    from repro.artifacts import ModelStore

    return ModelStore.from_url(
        config.store.url, cache_dir=config.store.cache_dir or None
    )


def build_sinks(config: DeployConfig) -> list:
    """Instantiate every ``[[sinks]]`` entry, in declaration order.

    With a ``[fault_tolerance]`` section, webhook sinks get a
    config-shaped :class:`~repro.net.retry.RetryPolicy`, and — when
    ``dead_letter_path`` is set — each webhook sink is wrapped in a
    :class:`~repro.stream.DeadLetterSink` spooling failed deliveries to
    disk for replay once the endpoint recovers. Local sinks are never
    wrapped: their failure domain *is* the disk the spool lives on.
    """
    from repro.stream import DeadLetterSink, JsonlSink, MemorySink, WebhookSink

    ft = config.fault_tolerance
    sinks = []
    webhooks = 0
    for sink in config.sinks:
        if sink.kind == "memory":
            sinks.append(MemorySink())
        elif sink.kind == "jsonl":
            sinks.append(JsonlSink(sink.path))
        elif sink.kind == "webhook":
            retry = None
            if ft is not None:
                from repro.net.retry import RetryPolicy

                retry = RetryPolicy(attempts=ft.retry_attempts)
            built = WebhookSink(sink.url, timeout=sink.timeout, retry=retry)
            if ft is not None and ft.dead_letter_path:
                from repro.net.retry import CircuitBreaker

                # One spool file per wrapped sink: replay's atomic
                # rewrite must own its file exclusively.
                path = ft.dead_letter_path
                if webhooks:
                    path = f"{path}.{webhooks}"
                built = DeadLetterSink(
                    built,
                    path,
                    breaker=CircuitBreaker(
                        failures=ft.breaker_failures,
                        reset_seconds=ft.breaker_reset_seconds,
                    ),
                )
            webhooks += 1
            sinks.append(built)
        else:  # pragma: no cover - parse_config rejects unknown kinds
            raise ValueError(f"unknown sink kind {sink.kind!r}")
    return sinks


def build_service(config: DeployConfig, *, store=None, source=None):
    """Cold-start the configured :class:`ScanService` from its artifact.

    ``source`` overrides the ``[model]`` section (the rollout launcher
    serves the production *tag* rather than the model section); when it
    names a store ref, ``store`` is opened from the config if not given.
    """
    from repro.serve.cache import FeatureCache
    from repro.serve.service import ScanService

    cache = FeatureCache(max_entries=config.serve.cache_entries)
    if source is None and config.model.path:
        return ScanService.from_artifact(
            config.model.path,
            cache=cache,
            threshold=config.serve.threshold,
            expected_fingerprint=config.model.expected_fingerprint or None,
        )
    if store is None:
        store = open_store(config)
    return ScanService.from_artifact(
        source if source is not None else config.model.tag,
        store=store,
        cache=cache,
        threshold=config.serve.threshold,
        expected_fingerprint=config.model.expected_fingerprint or None,
    )


def build_scanner(config: DeployConfig, service, *, sinks=None):
    """The configured :class:`StreamScanner` over a built service.

    Mirrors the monitor CLI's construction rules: a ``block`` policy is
    producer-paced (``auto_flush``), drop policies are consumer-paced so
    the bounded queue actually governs overflow, and the deadline flush
    bounds worst-case alert latency either way.
    """
    from repro.stream import StreamScanner

    stream = config.stream
    return StreamScanner(
        service,
        shards=stream.shards,
        max_batch=stream.batch_size,
        max_queue=stream.queue,
        policy=stream.policy,
        auto_flush=stream.policy == "block",
        flush_deadline_seconds=stream.deadline_seconds or None,
        threshold=config.serve.threshold,
        sinks=sinks if sinks is not None else build_sinks(config),
        dedup_addresses=stream.dedup_addresses,
        seed=config.source.seed,
    )


def build_fleet(config: DeployConfig, *, sinks=None):
    """The configured multi-process fleet (not yet started).

    Requires a ``[fleet]`` section; the caller (the ``fleet`` CLI)
    starts it (``manager.start()``) and owns the teardown. ``[stream]``
    knobs map onto the fleet's per-worker topology: ``stream.shards``
    becomes each worker's in-process shard count.
    """
    if config.fleet is None:
        raise ValueError(
            f"config {config.origin} has no [fleet] section; "
            "add one to launch a multi-process fleet"
        )
    from repro.net import FleetManager

    fleet = config.fleet
    ft = config.fault_tolerance
    supervision = {}
    if ft is not None:
        supervision = dict(
            supervise=ft.respawn,
            heartbeat_seconds=ft.heartbeat_seconds,
            max_respawns=ft.max_respawns,
            respawn_backoff_seconds=ft.backoff_seconds,
            respawn_backoff_max=ft.backoff_max_seconds,
        )
    return FleetManager(
        workers=fleet.workers,
        store_url="" if config.model.path else config.store.url,
        model_ref="" if config.model.path else config.model.tag,
        model_path=config.model.path,
        cache_dir=config.store.cache_dir,
        threshold=config.serve.threshold,
        worker_shards=config.stream.shards,
        cache_entries=config.serve.cache_entries,
        queue_depth=fleet.queue_depth,
        overflow=fleet.overflow,
        ship_features=fleet.ship_features,
        slots=fleet.slots,
        slot_bytes=fleet.slot_bytes,
        shared_cache=fleet.shared_cache,
        shared_cache_slots=fleet.shared_cache_slots,
        shared_cache_slot_bytes=fleet.shared_cache_slot_bytes,
        mmap=fleet.mmap,
        host=fleet.host,
        port=fleet.port,
        http_timeout=fleet.request_timeout,
        sinks=sinks if sinks is not None else build_sinks(config),
        **supervision,
    )


def build_loop(config: DeployConfig, scanner, store, *, label_of,
               on_invalidate=None):
    """The configured continuous-learning loop, attached to ``scanner``.

    Requires a ``[loop]`` section. The drift monitor comes from
    ``[loop]``; the promotion policy comes from ``[rollout]`` (its
    defaults when the section is absent) — the loop's auto-started
    shadow is an ordinary rollout and obeys the same thresholds an
    operator-started one would. ``label_of`` maps an address to its
    ground-truth label (0/1) or ``None`` for unlabeled traffic.
    """
    if config.loop is None:
        raise ValueError(
            f"config {config.origin} has no [loop] section; "
            "add one to run the continuous-learning loop"
        )
    from repro.deploy.config import RolloutConfig
    from repro.loop import DriftMonitor, LoopOrchestrator
    from repro.rollout.policy import (
        AdaptivePromotionPolicy,
        ManualHoldPolicy,
        MetricParityPolicy,
    )

    loop = config.loop
    rollout = config.rollout or RolloutConfig()
    if rollout.policy == "manual":
        policy = ManualHoldPolicy()
    elif rollout.policy == "adaptive":
        policy = AdaptivePromotionPolicy(
            min_events=rollout.min_events,
            max_lost_rate=rollout.max_lost_rate,
        )
    else:
        policy = MetricParityPolicy(
            min_events=rollout.min_events,
            promote_agreement=rollout.promote_agreement,
            abort_agreement=rollout.abort_agreement,
            max_mean_divergence=rollout.max_divergence,
        )
    monitor = DriftMonitor(
        window=loop.window,
        blocks=loop.blocks,
        alpha=loop.alpha,
        min_effect=loop.min_effect,
        confirm_checks=loop.confirm_checks,
    )
    return LoopOrchestrator(
        scanner,
        store,
        label_of=label_of,
        monitor=monitor,
        check_every=loop.check_every,
        grow=loop.grow,
        holdout=loop.holdout,
        policy=policy,
        retrain_mode=loop.retrain,
        store_url=config.store.url,
        cache_dir=config.store.cache_dir or None,
        candidate_tag=loop.candidate,
        production_tag=rollout.production,
        on_invalidate=on_invalidate,
    )


def build_replay_corpus(config: DeployConfig):
    """The synthetic campaign the ``[source]`` section describes."""
    if config.source.mode != "replay":
        raise ValueError(
            f"source.mode={config.source.mode!r} has no replay corpus; "
            "config-driven launch currently drives replay topologies "
            "(attach a live chain through repro.stream.EventBus instead)"
        )
    from repro.datagen.corpus import CorpusConfig, build_corpus

    return build_corpus(
        CorpusConfig(
            n_phishing=config.source.contracts // 2,
            n_benign=config.source.contracts // 2,
            seed=config.source.seed,
        )
    )
