"""Cross-knob dependency-violation rules over a deployment config.

Domain validation (:mod:`repro.deploy.config`) guarantees every knob is
individually sane; this module checks the *combinations* — the silent
failure modes that only appear when two or three knobs interact, the
way a pair of individually-valid DDS QoS policies can form an
unresolvable dependency chain (PAPERS.md). Each rule has a stable ID
(``D001``…), a severity, a rationale and a concrete fix, and the whole
catalog is evaluated statically by :func:`check_config` — no store is
opened, no socket touched, nothing launched (the analyser inspects the
specification, it never executes it).

Severities:

* ``ERROR`` — the topology is broken or lying: it will lose alerts,
  thrash, or can never do what the config says it does. Config-driven
  launch (``monitor --config`` / ``rollout start --config``) refuses to
  start on any ERROR.
* ``WARN`` — legal but almost certainly not what the operator meant;
  launch proceeds, ``check-config`` reports it.

The catalog (rationale + fix per rule) is documented for operators in
``docs/configuration.md``; :func:`rule_catalog` is the machine-readable
version the docs tests cross-check against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.deploy.config import (
    WARM_START_FAMILIES,
    DeployConfig,
    RolloutConfig,
)

__all__ = [
    "ERROR",
    "WARN",
    "Violation",
    "Rule",
    "RULES",
    "CheckReport",
    "check_config",
    "rule_catalog",
]

ERROR = "ERROR"
WARN = "WARN"

#: Sink kinds whose whole point is durable/forwarded delivery — losing
#: events in front of one of these is losing alerts, not just telemetry.
_DURABLE_SINKS = ("jsonl", "webhook")

#: Backpressure policies that shed events instead of pacing producers.
_DROP_POLICIES = ("drop_oldest", "drop_newest", "sample")


@dataclass(frozen=True)
class Violation:
    """One rule firing on one config."""

    rule_id: str
    severity: str
    title: str
    message: str
    fields: tuple[str, ...]
    fix: str

    def as_dict(self) -> dict:
        return {
            "rule_id": self.rule_id,
            "severity": self.severity,
            "title": self.title,
            "message": self.message,
            "fields": list(self.fields),
            "fix": self.fix,
        }

    def render(self) -> str:
        return (
            f"{self.severity:5s} {self.rule_id} [{self.title}] "
            f"{self.message}\n"
            f"      fields: {', '.join(self.fields)}\n"
            f"      fix: {self.fix}"
        )


@dataclass(frozen=True)
class Rule:
    """One cross-knob dependency rule (stable ID, fixed severity)."""

    rule_id: str
    severity: str
    title: str
    rationale: str
    fix: str
    predicate: object  # (DeployConfig) -> str | None  (violation message)
    fields: tuple[str, ...] = ()

    def check(self, config: DeployConfig) -> Violation | None:
        message = self.predicate(config)
        if message is None:
            return None
        return Violation(
            rule_id=self.rule_id,
            severity=self.severity,
            title=self.title,
            message=message,
            fields=self.fields,
            fix=self.fix,
        )


# --------------------------------------------------------------------- #
# Predicates — each returns a concrete message, or None when clean.
# --------------------------------------------------------------------- #


def _silent_alert_loss(c: DeployConfig):
    durable = [s.kind for s in c.sinks if s.kind in _DURABLE_SINKS]
    if c.stream.policy == "drop_newest" and durable:
        return (
            f"stream.policy='drop_newest' sheds the *freshest* deployments "
            f"— exactly the contracts victims are about to sign — while "
            f"{'/'.join(sorted(set(durable)))} sink(s) promise durable alert "
            f"delivery; shed events are never scored, so their alerts are "
            f"silently lost"
        )
    return None


def _audit_gap(c: DeployConfig):
    if c.stream.policy == "drop_oldest" and any(
        s.kind == "jsonl" for s in c.sinks
    ):
        return (
            "stream.policy='drop_oldest' sheds history under load, so the "
            "jsonl audit trail has silent gaps precisely during the bursts "
            "a post-mortem would need"
        )
    return None


def _cache_thrash(c: DeployConfig):
    working_set = c.stream.shards * c.stream.batch_size
    if c.serve.cache_entries < working_set:
        return (
            f"serve.cache_entries={c.serve.cache_entries} is smaller than "
            f"one flush cycle's working set (stream.shards={c.stream.shards} "
            f"x stream.batch_size={c.stream.batch_size} = {working_set}): "
            f"every micro-batch evicts the entries the next one needs — "
            f"guaranteed thrash, 0% steady-state hit rate"
        )
    return None


def _cache_headroom(c: DeployConfig):
    working_set = c.stream.shards * c.stream.batch_size
    if working_set <= c.serve.cache_entries < 2 * working_set:
        return (
            f"serve.cache_entries={c.serve.cache_entries} holds barely one "
            f"flush cycle (working set {working_set}); redelivered or "
            f"cloned bytecodes will mostly miss — give the LRU at least "
            f"2x the working set"
        )
    return None


def _noop_rollout(c: DeployConfig):
    if c.rollout is not None and c.rollout.candidate == c.rollout.production:
        return (
            f"rollout.candidate and rollout.production both resolve "
            f"{c.rollout.candidate!r}: the shadow scores a model against "
            f"itself, agreement is 1.0 by construction, and promotion "
            f"repoints the tag at the version it already serves — a no-op "
            f"rollout that *looks* like a successful validation"
        )
    return None


def _redundant_pulls(c: DeployConfig):
    remote = c.store.scheme in ("bucket", "http", "https")
    many_cold_starts = c.stream.shards > 1 or c.fleet is not None
    if remote and many_cold_starts and not c.store.cache_dir:
        what = (
            f"fleet.workers={c.fleet.workers} worker processes"
            if c.fleet is not None
            else f"stream.shards={c.stream.shards}"
        )
        return (
            f"store.url={c.store.url!r} is a remote backend serving "
            f"{what}, but store.cache_dir is unset: every process cold "
            f"start re-pulls the artifact into a throwaway spool instead "
            f"of a shared local cache"
        )
    return None


def _nondeterministic_replay(c: DeployConfig):
    if c.stream.policy == "sample" and c.source.mode == "replay":
        return (
            "stream.policy='sample' sheds by coin-flip, but source.mode="
            "'replay' exists to produce *reproducible* evaluations — the "
            "same campaign replayed twice scores different event sets"
        )
    return None


def _starved_block_queue(c: DeployConfig):
    if c.stream.policy == "block" and c.stream.queue < c.stream.batch_size:
        return (
            f"stream.queue={c.stream.queue} < stream.batch_size="
            f"{c.stream.batch_size} under policy='block': a full micro-"
            f"batch can never form before the queue overflows (the scanner "
            f"rejects this exact combination at construction, deep inside "
            f"worker setup)"
        )
    return None


def _starved_drop_queue(c: DeployConfig):
    if (
        c.stream.policy in _DROP_POLICIES
        and c.stream.queue < c.stream.batch_size
    ):
        return (
            f"stream.queue={c.stream.queue} < stream.batch_size="
            f"{c.stream.batch_size} under policy={c.stream.policy!r}: the "
            f"queue sheds before a batch can ever fill, so every flush is "
            f"an undersized batch and the drop counters absorb the "
            f"difference"
        )
    return None


def _unbounded_latency(c: DeployConfig):
    if c.stream.policy in _DROP_POLICIES and c.stream.deadline_seconds == 0:
        return (
            f"stream.policy={c.stream.policy!r} implies consumer-paced "
            f"intake (batches flush on the deadline, not per event), but "
            f"stream.deadline_seconds=0 disables deadline flushing: queued "
            f"events sit unscored until a drain, so alert latency is "
            f"unbounded"
        )
    return None


def _deadline_defeats_batching(c: DeployConfig):
    if (
        c.source.rate > 0
        and c.stream.deadline_seconds > 0
        and c.stream.deadline_seconds < 1.0 / c.source.rate
    ):
        return (
            f"stream.deadline_seconds={c.stream.deadline_seconds} is "
            f"shorter than one inter-event gap at source.rate="
            f"{c.source.rate}/s ({1.0 / c.source.rate:.3f}s): every batch "
            f"flushes with a single event, paying batching overhead for "
            f"none of the vectorization win"
        )
    return None


def _inverted_parity_band(c: DeployConfig):
    r = c.rollout
    if (
        r is not None
        and r.policy == "parity"
        and r.abort_agreement >= r.promote_agreement
    ):
        return (
            f"rollout.abort_agreement={r.abort_agreement} >= "
            f"rollout.promote_agreement={r.promote_agreement}: the parity "
            f"band is empty or inverted, so once min_events is reached "
            f"every candidate is either aborted at an agreement that "
            f"should promote it, or the two thresholds fight — no "
            f"candidate can be validated"
        )
    return None


def _undecidable_parity(c: DeployConfig):
    r = c.rollout
    if (
        r is not None
        and r.policy == "parity"
        and c.source.mode == "replay"
        and r.min_events > c.source.contracts
    ):
        return (
            f"rollout.min_events={r.min_events} exceeds the replay "
            f"campaign's unique-deployment floor (source.contracts="
            f"{c.source.contracts}): one replay may never reach the "
            f"evidence floor, leaving the rollout permanently holding"
        )
    return None


def _ephemeral_promotion(c: DeployConfig):
    if c.rollout is not None and c.store.scheme == "memory":
        return (
            f"store.url={c.store.url!r} is an in-process bucket but the "
            f"config plans a rollout: a promotion retags a store no other "
            f"process can see, and the new production version evaporates "
            f"with this process"
        )
    return None


def _alerts_unobservable(c: DeployConfig):
    if not c.sinks:
        return (
            "no [[sinks]] configured: flagged deployments exist only in "
            "process memory — detection runs, but nobody is told"
        )
    return None


def _degenerate_batching(c: DeployConfig):
    if c.stream.batch_size == 1 and c.stream.shards > 1:
        return (
            f"stream.batch_size=1 with stream.shards={c.stream.shards}: "
            f"every event is its own micro-batch, so the sharded workers "
            f"pay per-event dispatch overhead while the vectorized "
            f"inference engine gets batches of one"
        )
    return None


def _fleet_unreachable_store(c: DeployConfig):
    if c.fleet is not None and c.store.scheme == "memory":
        return (
            f"store.url={c.store.url!r} is an in-process bucket but "
            f"fleet.workers={c.fleet.workers} spawns worker *processes*: "
            f"a child cannot reach the parent's memory:// registry (under "
            f"spawn it sees an empty store; under fork, a diverging "
            f"snapshot), so workers cold-start from a store that does not "
            f"exist where they run"
        )
    return None


def _fleet_aliased_sharding(c: DeployConfig):
    import math

    if c.fleet is None or c.fleet.workers < 2 or c.stream.shards < 2:
        return None
    g = math.gcd(c.fleet.workers, c.stream.shards)
    if g > 1:
        return (
            f"fleet.workers={c.fleet.workers} and stream.shards="
            f"{c.stream.shards} share a factor of {g}: both hash "
            f"crc32(address), so worker w only ever receives addresses "
            f"with crc32 ≡ w (mod {g}) and exercises just "
            f"{c.stream.shards // g} of its {c.stream.shards} in-process "
            f"shard views — the rest sit idle while their siblings "
            f"absorb the skew"
        )
    return None


def _fleet_shed_alert_loss(c: DeployConfig):
    if c.fleet is None or c.fleet.overflow != "shed":
        return None
    durable = [s.kind for s in c.sinks if s.kind in _DURABLE_SINKS]
    if c.stream.policy == "block" and durable:
        return (
            f"fleet.overflow='shed' drops whole batches with HTTP 429 "
            f"while stream.policy='block' and "
            f"{'/'.join(sorted(set(durable)))} sink(s) declare a lossless, "
            f"durably-delivered topology: shed batches are never scored, "
            f"so their alerts vanish from a pipeline that promises not to "
            f"lose any"
        )
    return None


def _fleet_undersized_ring(c: DeployConfig):
    f = c.fleet
    if f is None or not f.ship_features or f.slots == 0:
        return None
    needed = f.workers * f.queue_depth
    if f.slots < needed:
        return (
            f"fleet.slots={f.slots} is below the worst-case in-flight "
            f"demand fleet.workers={f.workers} x fleet.queue_depth="
            f"{f.queue_depth} = {needed}: under full admission the ring "
            f"runs dry and batches silently fall back to inline feature "
            f"shipping, re-paying the serialization the ring exists to "
            f"avoid"
        )
    return None


#: EIP-170 contract-code size cap — the worst-case bytecode one scan
#: row can carry, and (decoded ids are at most one byte per code byte)
#: half the worst-case ring footprint of a shared-cache miss.
EIP170_MAX_CODE_BYTES = 24_576


def _shared_cache_thin_ring(c: DeployConfig):
    f = c.fleet
    if f is None or not f.shared_cache or not f.ship_features:
        return None
    # A shared-cache miss ships [code][ids] through one ring slot; a
    # cold cache makes the first batch all-miss, so the slot must hold
    # a full batch of worst-case rows or the cache warms through the
    # inline fallback it was meant to remove.
    needed = c.stream.batch_size * 2 * EIP170_MAX_CODE_BYTES
    if f.slot_bytes < needed:
        return (
            f"fleet.slot_bytes={f.slot_bytes} is below one cold batch "
            f"of worst-case feature rows: stream.batch_size="
            f"{c.stream.batch_size} x 2 x {EIP170_MAX_CODE_BYTES} "
            f"(EIP-170 code cap, code + decoded ids) = {needed}. The "
            f"shared cache turns first-sight batches into all-miss "
            f"bursts that overflow the ring slot and fall back to "
            f"inline shipping exactly while the cache is cold"
        )
    return None


def _respawn_cold_store(c: DeployConfig):
    ft = c.fault_tolerance
    if (
        ft is None
        or not ft.respawn
        or c.fleet is None
        or c.store.scheme not in ("bucket", "http", "https")
        or c.store.cache_dir
    ):
        return None
    return (
        f"fault_tolerance.respawn with a remote store "
        f"(store.url={c.store.url!r}) and no store.cache_dir: every "
        f"respawn re-pulls the artifact over the network, and a respawn "
        f"triggered *by* a store outage can never succeed — the warm "
        f"reload that supervision depends on needs a local spool to "
        f"reload from"
    )


def _dead_letter_in_store(c: DeployConfig):
    ft = c.fault_tolerance
    if ft is None or not ft.dead_letter_path or c.store.scheme != "file":
        return None
    import os.path

    root = c.store.url
    if root.startswith("file://"):
        root = root[len("file://"):]
    # Pure path algebra (normpath/abspath never touch the filesystem):
    # the analyser must stay static.
    store_root = os.path.normpath(os.path.abspath(root))
    spool = os.path.normpath(os.path.abspath(ft.dead_letter_path))
    if spool == store_root or spool.startswith(store_root + os.sep):
        return (
            f"fault_tolerance.dead_letter_path={ft.dead_letter_path!r} "
            f"resolves inside the model store at {c.store.url!r}: the "
            f"store is an immutable artifact surface, commonly a "
            f"read-only mount or a store-serve mirror that refuses "
            f"writes — spooling alerts into it fails exactly when the "
            f"spool is needed, and store GC can delete the spool"
        )
    return None


def _lagging_heartbeat(c: DeployConfig):
    ft = c.fault_tolerance
    if (
        ft is None
        or not ft.respawn
        or c.fleet is None
        or ft.heartbeat_seconds < c.fleet.request_timeout
    ):
        return None
    return (
        f"fault_tolerance.heartbeat_seconds={ft.heartbeat_seconds} is "
        f">= fleet.request_timeout={c.fleet.request_timeout}: the "
        f"supervisor probes less often than a request is allowed to "
        f"hang, so every crash is discovered by a client-visible "
        f"timeout before the heartbeat ever notices — the liveness "
        f"check guards nothing"
    )


def _circuit_open_alert_loss(c: DeployConfig):
    ft = c.fault_tolerance
    if ft is None or ft.dead_letter_path:
        return None
    webhooks = [s for s in c.sinks if s.kind == "webhook"]
    if not webhooks:
        return None
    return (
        f"a fault-tolerant topology delivers alerts to "
        f"{len(webhooks)} webhook sink(s) with no "
        f"fault_tolerance.dead_letter_path: when the webhook's circuit "
        f"opens, failed deliveries are only counted, not spooled — "
        f"alerts are dropped during exactly the outage window this "
        f"config exists to survive"
    )


def _loop_without_sink(c: DeployConfig):
    if c.loop is None:
        return None
    durable = [s.kind for s in c.sinks if s.kind in _DURABLE_SINKS]
    if not durable:
        return (
            "a [loop] topology autonomously retrains and repoints "
            "production, but no jsonl/webhook sink is configured: the "
            "loop's promotions change what every future alert means with "
            "no durable channel telling an operator the model changed "
            "under them"
        )
    return None


def _loop_window_below_evidence(c: DeployConfig):
    if c.loop is None:
        return None
    min_events = (
        c.rollout.min_events if c.rollout is not None
        else RolloutConfig.min_events
    )
    if c.loop.window < min_events:
        return (
            f"loop.window={c.loop.window} is below the rollout evidence "
            f"floor rollout.min_events={min_events}: the loop confirms "
            f"drift and retrains on less evidence than its own shadow "
            f"needs to even judge the candidate, so every triggered "
            f"rollout starts in a hold it may never leave"
        )
    return None


def _loop_unsupported_family(c: DeployConfig):
    if c.loop is None or not c.loop.model_family:
        return None
    if c.loop.model_family not in WARM_START_FAMILIES:
        return (
            f"loop.model_family={c.loop.model_family!r} cannot be "
            f"warm-started: fit_more grows fitted ensembles, and only "
            f"{', '.join(WARM_START_FAMILIES)} have trees to grow — "
            f"every drift trigger would fail the retrain and abort, "
            f"leaving a loop that detects but can never adapt"
        )
    return None


def _loop_subprocess_memory_store(c: DeployConfig):
    if (
        c.loop is not None
        and c.loop.retrain == "subprocess"
        and c.store.scheme == "memory"
    ):
        return (
            f"loop.retrain='subprocess' forks the retrain into a child "
            f"process, but store.url={c.store.url!r} is an in-process "
            f"bucket: the child's candidate registration lands in *its* "
            f"copy of the store and evaporates on exit — the parent "
            f"waits for a candidate tag that can never appear"
        )
    return None


#: The catalog. IDs are stable — tooling, dashboards and the docs rule
#: table key on them; new rules append, old rules never renumber.
RULES: tuple[Rule, ...] = (
    Rule(
        "D001", ERROR, "silent-alert-loss",
        "A drop_newest backpressure policy in front of durable alert "
        "sinks sheds the freshest deployments unscored; their alerts "
        "never existed as far as the sink can tell.",
        "use policy='block' (or drop_oldest for telemetry-only "
        "topologies), or remove the durable sink expectation",
        _silent_alert_loss,
        ("stream.policy", "sinks"),
    ),
    Rule(
        "D002", WARN, "audit-gap",
        "drop_oldest sheds history under load, so an append-only jsonl "
        "audit trail silently misses exactly the burst a post-mortem "
        "would study.",
        "use policy='block' for audited topologies, or accept and "
        "monitor the scanner's dropped counter",
        _audit_gap,
        ("stream.policy", "sinks"),
    ),
    Rule(
        "D003", ERROR, "cache-thrash",
        "A feature cache smaller than shards x batch_size is evicted "
        "wholesale every flush cycle: guaranteed thrash, zero "
        "steady-state hit rate.",
        "raise serve.cache_entries to at least stream.shards x "
        "stream.batch_size (2x for headroom)",
        _cache_thrash,
        ("serve.cache_entries", "stream.shards", "stream.batch_size"),
    ),
    Rule(
        "D004", WARN, "cache-headroom",
        "A cache holding barely one flush cycle serves redeliveries and "
        "clones mostly from misses.",
        "raise serve.cache_entries to >= 2x stream.shards x "
        "stream.batch_size",
        _cache_headroom,
        ("serve.cache_entries", "stream.shards", "stream.batch_size"),
    ),
    Rule(
        "D005", ERROR, "noop-rollout",
        "candidate == production shadow-validates a model against "
        "itself; perfect agreement is vacuous and promotion changes "
        "nothing while reporting success.",
        "point rollout.candidate at the new version's tag/digest",
        _noop_rollout,
        ("rollout.candidate", "rollout.production"),
    ),
    Rule(
        "D006", WARN, "redundant-pulls",
        "A remote store (bucket:// or http(s)://) serving a multi-shard "
        "monitor or a worker fleet without a local cache_dir re-pulls "
        "the artifact on every process cold start.",
        "set store.cache_dir to a host-local directory",
        _redundant_pulls,
        ("store.url", "store.cache_dir", "stream.shards", "fleet"),
    ),
    Rule(
        "D007", ERROR, "nondeterministic-replay",
        "sample backpressure on a replay timeline sheds by coin-flip: "
        "the evaluation is not reproducible run to run.",
        "use a deterministic policy (block/drop_oldest/drop_newest) for "
        "replay, or switch source.mode to 'live'",
        _nondeterministic_replay,
        ("stream.policy", "source.mode"),
    ),
    Rule(
        "D008", ERROR, "starved-block-queue",
        "queue < batch_size under policy='block' can never form a full "
        "micro-batch; the scanner rejects it at construction, deep "
        "inside worker setup.",
        "raise stream.queue to >= stream.batch_size",
        _starved_block_queue,
        ("stream.queue", "stream.batch_size", "stream.policy"),
    ),
    Rule(
        "D009", WARN, "starved-drop-queue",
        "queue < batch_size under a drop policy sheds before a batch "
        "can fill; every flush is undersized.",
        "raise stream.queue to >= stream.batch_size",
        _starved_drop_queue,
        ("stream.queue", "stream.batch_size", "stream.policy"),
    ),
    Rule(
        "D010", ERROR, "unbounded-latency",
        "A drop policy flushes on the deadline, not per event; with "
        "deadline flushing disabled, queued events wait for a drain and "
        "alert latency is unbounded.",
        "set stream.deadline_seconds > 0 (0.25 is the monitor default)",
        _unbounded_latency,
        ("stream.policy", "stream.deadline_seconds"),
    ),
    Rule(
        "D011", WARN, "deadline-defeats-batching",
        "A flush deadline shorter than one inter-event gap at the "
        "configured replay rate degenerates every micro-batch to a "
        "single event.",
        "raise stream.deadline_seconds above 1/source.rate, or raise "
        "the rate",
        _deadline_defeats_batching,
        ("stream.deadline_seconds", "source.rate"),
    ),
    Rule(
        "D012", ERROR, "inverted-parity-band",
        "abort_agreement >= promote_agreement leaves the parity policy "
        "no band to decide in; no candidate can validate.",
        "set rollout.abort_agreement strictly below "
        "rollout.promote_agreement",
        _inverted_parity_band,
        ("rollout.abort_agreement", "rollout.promote_agreement"),
    ),
    Rule(
        "D013", WARN, "undecidable-parity",
        "An evidence floor above the replay campaign's deployment count "
        "may leave the rollout permanently holding.",
        "lower rollout.min_events or raise source.contracts",
        _undecidable_parity,
        ("rollout.min_events", "source.contracts"),
    ),
    Rule(
        "D014", WARN, "ephemeral-promotion",
        "Promoting through a memory:// store retags state no other "
        "process can observe; the promotion evaporates with the "
        "process.",
        "use a file:// or bucket:// store for rollout topologies",
        _ephemeral_promotion,
        ("store.url", "rollout"),
    ),
    Rule(
        "D015", WARN, "alerts-unobservable",
        "A topology with no sinks scores traffic but tells no one.",
        "add at least one [[sinks]] entry (jsonl for an audit trail)",
        _alerts_unobservable,
        ("sinks",),
    ),
    Rule(
        "D016", WARN, "degenerate-batching",
        "batch_size=1 across multiple shards pays sharding overhead "
        "while denying the inference engine any batch to vectorize.",
        "raise stream.batch_size (16-64 is the serving sweet spot)",
        _degenerate_batching,
        ("stream.batch_size", "stream.shards"),
    ),
    Rule(
        "D017", ERROR, "fleet-unreachable-store",
        "A fleet crosses process boundaries, but a memory:// store "
        "lives inside exactly one process: workers cold-start against a "
        "store that is empty or a diverging snapshot where they run.",
        "use a file://, bucket:// or http(s):// store for fleet "
        "topologies (store-serve publishes a local store over HTTP)",
        _fleet_unreachable_store,
        ("store.url", "fleet.workers"),
    ),
    Rule(
        "D018", ERROR, "fleet-aliased-sharding",
        "Worker count and in-process shard count sharing a common "
        "factor alias the crc32 address hash: each worker can only ever "
        "reach a fixed residue class of its shard views, idling the "
        "rest and concentrating load on the survivors.",
        "pick coprime fleet.workers and stream.shards (e.g. 4 workers "
        "x 3 shards), or set stream.shards=1 and scale workers",
        _fleet_aliased_sharding,
        ("fleet.workers", "stream.shards"),
    ),
    Rule(
        "D019", ERROR, "fleet-shed-alert-loss",
        "fleet.overflow='shed' drops whole batches under load while "
        "stream.policy='block' plus durable sinks promise a lossless "
        "pipeline; the shed batches' alerts are silently lost.",
        "use fleet.overflow='block' for lossless topologies, or "
        "declare the lossy posture with a drop stream.policy",
        _fleet_shed_alert_loss,
        ("fleet.overflow", "stream.policy", "sinks"),
    ),
    Rule(
        "D020", WARN, "fleet-undersized-ring",
        "An explicitly-sized feature ring smaller than workers x "
        "queue_depth runs dry under full admission and silently falls "
        "back to inline feature shipping.",
        "raise fleet.slots to >= fleet.workers x fleet.queue_depth, or "
        "leave fleet.slots=0 for automatic sizing",
        _fleet_undersized_ring,
        ("fleet.slots", "fleet.workers", "fleet.queue_depth"),
    ),
    Rule(
        "D021", ERROR, "respawn-cold-store",
        "Supervised respawn with a remote store and no local cache "
        "re-pulls the artifact over the network on every respawn; a "
        "respawn caused by a store outage deadlocks against the very "
        "outage it is recovering from.",
        "set store.cache_dir so respawned workers warm-reload from the "
        "local spool",
        _respawn_cold_store,
        ("fault_tolerance.respawn", "store.url", "store.cache_dir"),
    ),
    Rule(
        "D022", ERROR, "dead-letter-in-store",
        "A dead-letter spool inside the model store root writes alert "
        "JSONL into an immutable artifact surface — commonly a "
        "read-only mount or store-serve mirror that refuses writes "
        "exactly when the spool is needed.",
        "point fault_tolerance.dead_letter_path at a writable path "
        "outside the store root",
        _dead_letter_in_store,
        ("fault_tolerance.dead_letter_path", "store.url"),
    ),
    Rule(
        "D023", ERROR, "lagging-heartbeat",
        "A heartbeat interval at or above the fleet request timeout "
        "discovers every crash only after a client-visible timeout has "
        "already fired: the liveness probe guards nothing.",
        "set fault_tolerance.heartbeat_seconds well below "
        "fleet.request_timeout (a quarter or less)",
        _lagging_heartbeat,
        ("fault_tolerance.heartbeat_seconds", "fleet.request_timeout"),
    ),
    Rule(
        "D024", WARN, "circuit-open-alert-loss",
        "Webhook sinks in a fault-tolerant topology with no dead-letter "
        "path drop alerts whenever the delivery circuit opens — during "
        "exactly the outage window this config exists to survive.",
        "set fault_tolerance.dead_letter_path to spool failed "
        "deliveries for replay",
        _circuit_open_alert_loss,
        ("fault_tolerance.dead_letter_path", "sinks"),
    ),
    Rule(
        "D025", WARN, "shared-cache-thin-ring",
        "A shared feature cache over a ring slot smaller than one "
        "cold batch of worst-case rows warms through the inline "
        "fallback: every first-sight batch is all-miss and overflows "
        "the slot it was supposed to ride.",
        "raise fleet.slot_bytes to >= stream.batch_size x 2 x 24576 "
        "(EIP-170 code cap, code + decoded ids), or lower "
        "stream.batch_size",
        _shared_cache_thin_ring,
        ("fleet.shared_cache", "fleet.slot_bytes", "stream.batch_size"),
    ),
    Rule(
        "D026", ERROR, "loop-without-sink",
        "A continuous-learning loop retrains and repoints production "
        "autonomously; with no durable sink, the model changes under "
        "every downstream consumer and nobody is told.",
        "add a jsonl or webhook [[sinks]] entry so loop promotions are "
        "observable, or drop the [loop] section",
        _loop_without_sink,
        ("loop", "sinks"),
    ),
    Rule(
        "D027", ERROR, "loop-window-below-evidence-floor",
        "A drift window smaller than the rollout's min_events floor "
        "triggers retrains whose shadow can never gather the evidence "
        "the promotion gate demands; the loop stalls in SHADOWING.",
        "raise loop.window to >= rollout.min_events, or lower the "
        "evidence floor",
        _loop_window_below_evidence,
        ("loop.window", "rollout.min_events"),
    ),
    Rule(
        "D028", ERROR, "warm-start-on-unsupported-model",
        "Declaring a production model family without fit_more support "
        "plans an incremental retrain that must fail on every drift "
        "trigger: the loop detects but can never adapt.",
        "serve a warm-startable ensemble (Random Forest, XGBoost, "
        "LightGBM, CatBoost), or clear loop.model_family",
        _loop_unsupported_family,
        ("loop.model_family", "model.tag"),
    ),
    Rule(
        "D029", ERROR, "loop-subprocess-memory-store",
        "A forked retrain child registers its candidate in a copy of a "
        "memory:// store that dies with the child; the parent's loop "
        "waits on a tag that can never appear.",
        "use a file:// or bucket:// store, or set loop.retrain='inline' "
        "for single-process topologies",
        _loop_subprocess_memory_store,
        ("loop.retrain", "store.url"),
    ),
)


@dataclass(frozen=True)
class CheckReport:
    """Every violation one config triggered, ready to render."""

    config: DeployConfig
    violations: tuple[Violation, ...]

    @property
    def errors(self) -> tuple[Violation, ...]:
        return tuple(v for v in self.violations if v.severity == ERROR)

    @property
    def warnings(self) -> tuple[Violation, ...]:
        return tuple(v for v in self.violations if v.severity == WARN)

    @property
    def ok(self) -> bool:
        """No ERROR-severity violations (warnings allowed)."""
        return not self.errors

    def as_dict(self) -> dict:
        return {
            "config": self.config.origin,
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "violations": [v.as_dict() for v in self.violations],
        }

    def render_text(self) -> str:
        lines = [f"check-config {self.config.origin}"]
        for violation in self.violations:
            lines.append(violation.render())
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
            + ("" if self.violations else " — topology is clean")
        )
        return "\n".join(lines)


def check_config(config: DeployConfig) -> CheckReport:
    """Run the whole rule catalog over one parsed config.

    Pure function of the config object: no filesystem writes, no store
    or network connections, nothing launched. ERRORs first, then WARNs,
    each group in rule-ID order.
    """
    violations = [
        violation
        for rule in RULES
        if (violation := rule.check(config)) is not None
    ]
    violations.sort(key=lambda v: (v.severity != ERROR, v.rule_id))
    return CheckReport(config=config, violations=tuple(violations))


def rule_catalog() -> list[dict]:
    """Machine-readable catalog (ID, severity, title, rationale, fix)."""
    return [
        {
            "rule_id": rule.rule_id,
            "severity": rule.severity,
            "title": rule.title,
            "rationale": rule.rationale,
            "fix": rule.fix,
            "fields": list(rule.fields),
        }
        for rule in RULES
    ]
