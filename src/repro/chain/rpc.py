"""In-process JSON-RPC endpoint (the ``eth_getCode`` surface).

The BEM extracts bytecode "via a JSON-RPC API" (Fig. 1-➌). To exercise the
identical code path offline, :class:`JsonRpcServer` implements the JSON-RPC
2.0 envelope over a simulated chain, and :class:`JsonRpcClient` provides
the typed convenience wrappers the BEM calls. Requests and responses are
real JSON strings, so (de)serialization bugs are caught the same way they
would be against a live node.

Supported methods: ``eth_getCode``, ``eth_blockNumber``, ``eth_chainId``,
``eth_getTransactionByHash``, ``web3_clientVersion``.
"""

from __future__ import annotations

import json
from typing import Any

from repro.chain.blockchain import Blockchain, ChainError

__all__ = ["JsonRpcServer", "JsonRpcClient", "JsonRpcError"]

_PARSE_ERROR = -32700
_INVALID_REQUEST = -32600
_METHOD_NOT_FOUND = -32601
_INVALID_PARAMS = -32602
_SERVER_ERROR = -32000


class JsonRpcError(Exception):
    """Raised by the client when the server answers with an error object."""

    def __init__(self, code: int, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class JsonRpcServer:
    """Serve JSON-RPC 2.0 requests against a simulated chain."""

    CLIENT_VERSION = "PhishingHookSim/1.0.0"

    def __init__(self, chain: Blockchain, chain_id: int = 1):
        self._chain = chain
        self._chain_id = chain_id

    def handle(self, request_text: str) -> str:
        """Process one JSON-RPC request string, return the response string."""
        try:
            request = json.loads(request_text)
        except json.JSONDecodeError:
            return self._error(None, _PARSE_ERROR, "parse error")
        if not isinstance(request, dict) or request.get("jsonrpc") != "2.0":
            return self._error(None, _INVALID_REQUEST, "invalid request")
        request_id = request.get("id")
        method = request.get("method")
        params = request.get("params", [])
        if not isinstance(method, str):
            return self._error(request_id, _INVALID_REQUEST, "missing method")
        handler = self._dispatch_table().get(method)
        if handler is None:
            return self._error(
                request_id, _METHOD_NOT_FOUND, f"method {method!r} not found"
            )
        try:
            result = handler(params)
        except (ChainError, ValueError, IndexError, TypeError) as exc:
            return self._error(request_id, _INVALID_PARAMS, str(exc))
        except Exception as exc:  # noqa: BLE001 - report as server error
            return self._error(request_id, _SERVER_ERROR, str(exc))
        return json.dumps({"jsonrpc": "2.0", "id": request_id, "result": result})

    # ------------------------------------------------------------------ #

    def _dispatch_table(self):
        return {
            "eth_getCode": self._eth_get_code,
            "eth_blockNumber": self._eth_block_number,
            "eth_chainId": self._eth_chain_id,
            "eth_getTransactionByHash": self._eth_get_transaction,
            "web3_clientVersion": self._client_version,
        }

    def _eth_get_code(self, params: list[Any]) -> str:
        if not params:
            raise ValueError("eth_getCode requires [address, block]")
        address = params[0]
        code = self._chain.get_code(address)
        return "0x" + code.hex()

    def _eth_block_number(self, params: list[Any]) -> str:
        return hex(self._chain.head_block)

    def _eth_chain_id(self, params: list[Any]) -> str:
        return hex(self._chain_id)

    def _eth_get_transaction(self, params: list[Any]) -> dict[str, Any] | None:
        if not params:
            raise ValueError("eth_getTransactionByHash requires [hash]")
        try:
            transaction = self._chain.get_transaction(params[0])
        except ChainError:
            return None
        return {
            "hash": transaction.tx_hash,
            "from": transaction.sender,
            "to": None,
            "creates": transaction.contract_address,
            "blockNumber": hex(transaction.block_number),
        }

    def _client_version(self, params: list[Any]) -> str:
        return self.CLIENT_VERSION

    @staticmethod
    def _error(request_id: Any, code: int, message: str) -> str:
        return json.dumps(
            {
                "jsonrpc": "2.0",
                "id": request_id,
                "error": {"code": code, "message": message},
            }
        )


class JsonRpcClient:
    """Typed wrappers over a :class:`JsonRpcServer` (or compatible handler).

    ``transport`` is any callable mapping a request string to a response
    string, so tests can interpose fault injection.
    """

    def __init__(self, server: JsonRpcServer | None = None, transport=None):
        if (server is None) == (transport is None):
            raise ValueError("provide exactly one of server / transport")
        self._transport = transport or server.handle
        self._next_id = 0

    def call(self, method: str, params: list[Any] | None = None) -> Any:
        """Issue one JSON-RPC call, returning the decoded ``result``."""
        self._next_id += 1
        request = json.dumps(
            {
                "jsonrpc": "2.0",
                "id": self._next_id,
                "method": method,
                "params": params or [],
            }
        )
        response = json.loads(self._transport(request))
        if "error" in response:
            error = response["error"]
            raise JsonRpcError(error.get("code", 0), error.get("message", ""))
        return response.get("result")

    # Convenience wrappers ------------------------------------------------ #

    def get_code(self, address: str, block: str = "latest") -> bytes:
        result = self.call("eth_getCode", [address, block])
        return bytes.fromhex(result[2:])

    def block_number(self) -> int:
        return int(self.call("eth_blockNumber"), 16)

    def chain_id(self) -> int:
        return int(self.call("eth_chainId"), 16)

    def client_version(self) -> str:
        return self.call("web3_clientVersion")

    def get_transaction(self, tx_hash: str) -> dict[str, Any] | None:
        return self.call("eth_getTransactionByHash", [tx_hash])
