"""In-process JSON-RPC endpoint (the ``eth_getCode`` surface).

The BEM extracts bytecode "via a JSON-RPC API" (Fig. 1-➌). To exercise the
identical code path offline, :class:`JsonRpcServer` implements the JSON-RPC
2.0 envelope over a simulated chain, and :class:`JsonRpcClient` provides
the typed convenience wrappers the BEM calls. Requests and responses are
real JSON strings, so (de)serialization bugs are caught the same way they
would be against a live node.

Supported methods: ``eth_getCode``, ``eth_blockNumber``, ``eth_chainId``,
``eth_getTransactionByHash``, ``web3_clientVersion``, plus the
subscription plane the streaming pipeline consumes: ``eth_subscribe`` /
``eth_unsubscribe`` (kinds ``newHeads`` and ``newContracts``) and
``eth_getFilterChanges`` to drain a subscription's buffered events. The
transport is pull-based (no socket to push on), so subscriptions follow
the filter protocol: subscribe once, poll for changes; each buffer is
bounded and drops its oldest events under backpressure (the drop count is
reported alongside every drain).
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any

from repro.chain.blockchain import Blockchain, ChainError, DeployEvent

__all__ = ["JsonRpcServer", "JsonRpcClient", "JsonRpcError"]

_PARSE_ERROR = -32700
_INVALID_REQUEST = -32600
_METHOD_NOT_FOUND = -32601
_INVALID_PARAMS = -32602
_SERVER_ERROR = -32000
_FILTER_NOT_FOUND = -32001

#: Subscription kinds accepted by ``eth_subscribe``.
SUBSCRIPTION_KINDS = ("newHeads", "newContracts")


class _RpcMethodError(Exception):
    """Internal: a handler failing with an explicit JSON-RPC error code."""

    def __init__(self, code: int, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


class _Subscription:
    """One filter: a bounded buffer of pending events plus a drop count."""

    def __init__(self, kind: str, max_pending: int):
        self.kind = kind
        self.pending: deque = deque(maxlen=max_pending)
        self.dropped = 0

    def push(self, payload: dict) -> None:
        if len(self.pending) == self.pending.maxlen:
            self.dropped += 1
        self.pending.append(payload)

    def drain(self) -> list[dict]:
        events = list(self.pending)
        self.pending.clear()
        return events


class JsonRpcError(Exception):
    """Raised by the client when the server answers with an error object."""

    def __init__(self, code: int, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class JsonRpcServer:
    """Serve JSON-RPC 2.0 requests against a simulated chain."""

    CLIENT_VERSION = "PhishingHookSim/1.0.0"

    def __init__(
        self,
        chain: Blockchain,
        chain_id: int = 1,
        max_pending_per_filter: int = 4096,
        max_filters: int = 1024,
    ):
        if max_pending_per_filter < 1:
            raise ValueError("max_pending_per_filter must be positive")
        if max_filters < 1:
            raise ValueError("max_filters must be positive")
        self._chain = chain
        self._chain_id = chain_id
        self._max_pending = max_pending_per_filter
        self._max_filters = max_filters
        self._subscriptions: dict[str, _Subscription] = {}
        self._next_subscription = 0
        self._listening = False

    def handle(self, request_text: str) -> str:
        """Process one JSON-RPC request string, return the response string."""
        try:
            request = json.loads(request_text)
        except json.JSONDecodeError:
            return self._error(None, _PARSE_ERROR, "parse error")
        if not isinstance(request, dict) or request.get("jsonrpc") != "2.0":
            return self._error(None, _INVALID_REQUEST, "invalid request")
        request_id = request.get("id")
        method = request.get("method")
        params = request.get("params", [])
        if not isinstance(method, str):
            return self._error(request_id, _INVALID_REQUEST, "missing method")
        handler = self._dispatch_table().get(method)
        if handler is None:
            return self._error(
                request_id, _METHOD_NOT_FOUND, f"method {method!r} not found"
            )
        try:
            result = handler(params)
        except _RpcMethodError as exc:
            return self._error(request_id, exc.code, exc.message)
        except (ChainError, ValueError, IndexError, TypeError) as exc:
            return self._error(request_id, _INVALID_PARAMS, str(exc))
        except Exception as exc:  # noqa: BLE001 - report as server error
            return self._error(request_id, _SERVER_ERROR, str(exc))
        return json.dumps({"jsonrpc": "2.0", "id": request_id, "result": result})

    # ------------------------------------------------------------------ #

    def _dispatch_table(self):
        return {
            "eth_getCode": self._eth_get_code,
            "eth_blockNumber": self._eth_block_number,
            "eth_chainId": self._eth_chain_id,
            "eth_getTransactionByHash": self._eth_get_transaction,
            "web3_clientVersion": self._client_version,
            "eth_subscribe": self._eth_subscribe,
            "eth_unsubscribe": self._eth_unsubscribe,
            "eth_getFilterChanges": self._eth_get_filter_changes,
        }

    # Subscription plane ------------------------------------------------- #

    def _on_deploy(self, event: DeployEvent) -> None:
        for subscription in self._subscriptions.values():
            if subscription.kind == "newHeads":
                if event.block_is_new:
                    subscription.push(
                        {
                            "number": hex(event.block.number),
                            "timestamp": hex(event.block.timestamp),
                        }
                    )
            else:  # newContracts
                subscription.push(
                    {
                        "address": event.account.address,
                        "code": event.account.code_hex,
                        "blockNumber": hex(event.transaction.block_number),
                        "timestamp": hex(event.transaction.timestamp),
                        "transactionHash": event.transaction.tx_hash,
                        "sequence": event.sequence,
                    }
                )

    def _eth_subscribe(self, params: list[Any]) -> str:
        if not params or not isinstance(params[0], str):
            raise ValueError("eth_subscribe requires [kind]")
        kind = params[0]
        if kind not in SUBSCRIPTION_KINDS:
            raise ValueError(
                f"unknown subscription kind {kind!r}; "
                f"supported: {', '.join(SUBSCRIPTION_KINDS)}"
            )
        if len(self._subscriptions) >= self._max_filters:
            # Real nodes expire idle filters; offline we stay deterministic
            # and instead refuse new ones once abandoned filters pile up.
            raise _RpcMethodError(
                _SERVER_ERROR,
                f"too many filters (max {self._max_filters}); "
                "unsubscribe unused ones",
            )
        if not self._listening:
            self._chain.add_listener(self._on_deploy)
            self._listening = True
        self._next_subscription += 1
        subscription_id = hex(self._next_subscription)
        self._subscriptions[subscription_id] = _Subscription(
            kind, self._max_pending
        )
        return subscription_id

    def _eth_unsubscribe(self, params: list[Any]) -> bool:
        if not params:
            raise ValueError("eth_unsubscribe requires [subscription_id]")
        removed = self._subscriptions.pop(params[0], None) is not None
        if not self._subscriptions and self._listening:
            self._chain.remove_listener(self._on_deploy)
            self._listening = False
        return removed

    def _eth_get_filter_changes(self, params: list[Any]) -> dict[str, Any]:
        if not params:
            raise ValueError("eth_getFilterChanges requires [subscription_id]")
        subscription = self._subscriptions.get(params[0])
        if subscription is None:
            raise _RpcMethodError(
                _FILTER_NOT_FOUND, f"filter {params[0]!r} not found"
            )
        dropped = subscription.dropped
        subscription.dropped = 0
        return {"events": subscription.drain(), "dropped": dropped}

    def _eth_get_code(self, params: list[Any]) -> str:
        if not params:
            raise ValueError("eth_getCode requires [address, block]")
        address = params[0]
        code = self._chain.get_code(address)
        return "0x" + code.hex()

    def _eth_block_number(self, params: list[Any]) -> str:
        return hex(self._chain.head_block)

    def _eth_chain_id(self, params: list[Any]) -> str:
        return hex(self._chain_id)

    def _eth_get_transaction(self, params: list[Any]) -> dict[str, Any] | None:
        if not params:
            raise ValueError("eth_getTransactionByHash requires [hash]")
        try:
            transaction = self._chain.get_transaction(params[0])
        except ChainError:
            return None
        return {
            "hash": transaction.tx_hash,
            "from": transaction.sender,
            "to": None,
            "creates": transaction.contract_address,
            "blockNumber": hex(transaction.block_number),
        }

    def _client_version(self, params: list[Any]) -> str:
        return self.CLIENT_VERSION

    @staticmethod
    def _error(request_id: Any, code: int, message: str) -> str:
        return json.dumps(
            {
                "jsonrpc": "2.0",
                "id": request_id,
                "error": {"code": code, "message": message},
            }
        )


class JsonRpcClient:
    """Typed wrappers over a :class:`JsonRpcServer` (or compatible handler).

    ``transport`` is any callable mapping a request string to a response
    string, so tests can interpose fault injection.
    """

    def __init__(self, server: JsonRpcServer | None = None, transport=None):
        if (server is None) == (transport is None):
            raise ValueError("provide exactly one of server / transport")
        self._transport = transport or server.handle
        self._next_id = 0

    def call(self, method: str, params: list[Any] | None = None) -> Any:
        """Issue one JSON-RPC call, returning the decoded ``result``."""
        self._next_id += 1
        request = json.dumps(
            {
                "jsonrpc": "2.0",
                "id": self._next_id,
                "method": method,
                "params": params or [],
            }
        )
        response = json.loads(self._transport(request))
        if "error" in response:
            error = response["error"]
            raise JsonRpcError(error.get("code", 0), error.get("message", ""))
        return response.get("result")

    # Convenience wrappers ------------------------------------------------ #

    def get_code(self, address: str, block: str = "latest") -> bytes:
        result = self.call("eth_getCode", [address, block])
        return bytes.fromhex(result[2:])

    def block_number(self) -> int:
        return int(self.call("eth_blockNumber"), 16)

    def chain_id(self) -> int:
        return int(self.call("eth_chainId"), 16)

    def client_version(self) -> str:
        return self.call("web3_clientVersion")

    def get_transaction(self, tx_hash: str) -> dict[str, Any] | None:
        return self.call("eth_getTransactionByHash", [tx_hash])

    def subscribe(self, kind: str) -> str:
        """Open a ``newHeads`` / ``newContracts`` filter; returns its id."""
        return self.call("eth_subscribe", [kind])

    def unsubscribe(self, subscription_id: str) -> bool:
        return self.call("eth_unsubscribe", [subscription_id])

    def filter_changes(self, subscription_id: str) -> tuple[list, int]:
        """Drain a filter: ``(events, dropped_since_last_drain)``."""
        result = self.call("eth_getFilterChanges", [subscription_id])
        return result["events"], result["dropped"]
