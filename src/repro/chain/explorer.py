"""Stand-in for etherscan.io's label service.

etherscan.io flags phishing smart contracts with the label ``"Phish/Hack"``
(Fig. 1-➋); PhishingHook scrapes that flag for every candidate address.
This simulated explorer exposes the same lookup, plus two realism knobs the
paper's threat discussion motivates:

* *label lag* — a contract is only flagged some time after deployment
  (community reports take a while), and
* *label noise* — a configurable fraction of flags is dropped or spuriously
  added, so the pipeline can be stress-tested against imperfect oracles.
"""

from __future__ import annotations

import hashlib

from repro.chain.blockchain import Blockchain, ChainError

__all__ = ["Explorer", "PHISH_HACK_LABEL"]

#: The exact label string etherscan uses for phishing contracts.
PHISH_HACK_LABEL = "Phish/Hack"


def _stable_unit_interval(address: str, salt: str) -> float:
    """Deterministic pseudo-random float in [0, 1) from an address."""
    digest = hashlib.sha3_256((salt + address.lower()).encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class Explorer:
    """Label oracle over a simulated chain.

    Args:
        chain: The ledger whose contracts can be labeled.
        label_lag_seconds: Flags only become visible this long after
            deployment (0 disables the lag).
        false_negative_rate: Fraction of true phishing flags hidden.
        false_positive_rate: Fraction of benign contracts spuriously flagged.
    """

    def __init__(
        self,
        chain: Blockchain,
        label_lag_seconds: int = 0,
        false_negative_rate: float = 0.0,
        false_positive_rate: float = 0.0,
    ):
        for name, rate in (
            ("false_negative_rate", false_negative_rate),
            ("false_positive_rate", false_positive_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        self._chain = chain
        self._labels: dict[str, str] = {}
        self.label_lag_seconds = label_lag_seconds
        self.false_negative_rate = false_negative_rate
        self.false_positive_rate = false_positive_rate

    # ------------------------------------------------------------------ #
    # Label administration (what community reports / etherscan staff do)
    # ------------------------------------------------------------------ #

    def flag_phishing(self, address: str) -> None:
        """Mark ``address`` with the ``Phish/Hack`` label."""
        self.set_label(address, PHISH_HACK_LABEL)

    def set_label(self, address: str, label: str) -> None:
        # Labels are accepted for any address string; etherscan labels EOAs too.
        self._labels[address.lower()] = label

    # ------------------------------------------------------------------ #
    # Scraping surface (what PhishingHook's data gathering consumes)
    # ------------------------------------------------------------------ #

    def get_label(self, address: str, at_timestamp: int | None = None) -> str | None:
        """The public label of ``address``, or ``None``.

        ``at_timestamp`` simulates scraping at a particular time: with a
        configured label lag, recently deployed contracts are unflagged.
        Noise rates deterministically hide/add flags per address.
        """
        key = address.lower()
        label = self._labels.get(key)

        if label == PHISH_HACK_LABEL:
            if self._lag_hides(key, at_timestamp):
                return None
            if (
                self.false_negative_rate > 0.0
                and _stable_unit_interval(key, "fn") < self.false_negative_rate
            ):
                return None
            return label
        if label is not None:
            return label
        if (
            self.false_positive_rate > 0.0
            and _stable_unit_interval(key, "fp") < self.false_positive_rate
        ):
            return PHISH_HACK_LABEL
        return None

    def is_phishing(self, address: str, at_timestamp: int | None = None) -> bool:
        """True when the visible label equals ``Phish/Hack``."""
        return self.get_label(address, at_timestamp) == PHISH_HACK_LABEL

    def scrape(
        self, addresses: list[str], at_timestamp: int | None = None
    ) -> dict[str, bool]:
        """Batch lookup: address → flagged?, as the BEM's crawler does."""
        return {
            address: self.is_phishing(address, at_timestamp)
            for address in addresses
        }

    def flagged_addresses(self) -> list[str]:
        """All addresses carrying the ``Phish/Hack`` label (ground truth)."""
        return sorted(
            address
            for address, label in self._labels.items()
            if label == PHISH_HACK_LABEL
        )

    def _lag_hides(self, address: str, at_timestamp: int | None) -> bool:
        if not self.label_lag_seconds or at_timestamp is None:
            return False
        account = self._chain.get_account(address)
        if account is None:
            return False
        return at_timestamp < account.deployed_at + self.label_lag_seconds
