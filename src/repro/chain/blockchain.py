"""A minimal simulated Ethereum ledger.

Holds exactly the state the PhishingHook pipeline touches: contract
accounts (address → deployed bytecode), the contract-creation transactions
that produced them, and block metadata (number, timestamp). Everything is
deterministic given the caller-supplied addresses/timestamps, so tests and
benchmarks are reproducible bit-for-bit.

Addresses are 20-byte values handled as ``0x``-prefixed lowercase hex
strings at the API boundary, mirroring real tooling.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.chain.timeline import block_number_at
from repro.evm.disassembler import normalize_bytecode

__all__ = [
    "Account",
    "Block",
    "Transaction",
    "DeployEvent",
    "Blockchain",
    "ChainError",
]


class ChainError(Exception):
    """Raised for invalid ledger operations (unknown hashes, bad addresses)."""


def _normalize_address(address: str) -> str:
    text = address.lower()
    if not text.startswith("0x"):
        text = "0x" + text
    body = text[2:]
    if len(body) != 40:
        raise ChainError(f"address must be 20 bytes, got {address!r}")
    try:
        bytes.fromhex(body)
    except ValueError:
        raise ChainError(f"address is not hex: {address!r}")
    return text


def derive_address(seed: bytes | str) -> str:
    """Deterministically derive a 20-byte address from a seed."""
    if isinstance(seed, str):
        seed = seed.encode()
    return "0x" + hashlib.sha3_256(seed).hexdigest()[:40]


@dataclass(frozen=True)
class Account:
    """A contract account: address plus deployed (runtime) bytecode."""

    address: str
    code: bytes
    deployed_at: int  # unix timestamp

    @property
    def code_hex(self) -> str:
        return "0x" + self.code.hex()


@dataclass(frozen=True)
class Transaction:
    """A contract-creation transaction."""

    tx_hash: str
    sender: str
    contract_address: str
    block_number: int
    timestamp: int


@dataclass
class Block:
    """Block metadata; transactions are creation txs included in it."""

    number: int
    timestamp: int
    transactions: list[str] = field(default_factory=list)


@dataclass(frozen=True)
class DeployEvent:
    """Push notification for one deployment, in ledger-append order.

    ``sequence`` is the 0-based position in the chain's deployment history;
    ``block_is_new`` is True when this deployment opened its block, so
    new-heads subscribers can be notified exactly once per block.
    """

    sequence: int
    account: Account
    transaction: Transaction
    block: Block
    block_is_new: bool


class Blockchain:
    """The simulated ledger.

    Example:
        >>> chain = Blockchain()
        >>> address = chain.deploy(b"\\x60\\x01\\x00", timestamp=1700000000)
        >>> chain.get_code(address).hex()
        '600100'
    """

    def __init__(self) -> None:
        self._accounts: dict[str, Account] = {}
        self._transactions: dict[str, Transaction] = {}
        self._by_contract: dict[str, Transaction] = {}
        self._blocks: dict[int, Block] = {}
        self._head = 0
        self._listeners: list = []
        self._deploy_count = 0

    # ------------------------------------------------------------------ #
    # Event plumbing
    # ------------------------------------------------------------------ #

    def add_listener(self, listener) -> None:
        """Register ``listener(event: DeployEvent)``, fired on every deploy.

        Listeners run synchronously inside :meth:`deploy`, in registration
        order, after the ledger state is updated — so a listener observes
        the deployment it is being told about. A listener raising
        propagates to the deployer (fail-loud; wrap if you need isolation).
        """
        self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        """Unregister a listener; unknown listeners are ignored."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def deploy(
        self,
        code: bytes | str,
        timestamp: int,
        address: str | None = None,
        sender: str | None = None,
    ) -> str:
        """Record a contract deployment; returns the contract address.

        The address defaults to a hash of (code, timestamp, deploy count),
        so repeated identical deployments (minimal proxy clones) receive
        distinct addresses while sharing bytecode — the duplication the
        paper's dataset-construction step must de-duplicate.
        """
        raw = normalize_bytecode(code)
        if address is None:
            address = derive_address(
                raw + timestamp.to_bytes(8, "big") + len(self._accounts).to_bytes(8, "big")
            )
        address = _normalize_address(address)
        if address in self._accounts:
            raise ChainError(f"address {address} already has code")
        sender = _normalize_address(sender) if sender else derive_address(address)

        block_number = block_number_at(timestamp)
        account = Account(address=address, code=raw, deployed_at=timestamp)
        tx_hash = "0x" + hashlib.sha3_256(
            (address + str(timestamp)).encode()
        ).hexdigest()
        transaction = Transaction(
            tx_hash=tx_hash,
            sender=sender,
            contract_address=address,
            block_number=block_number,
            timestamp=timestamp,
        )
        block_is_new = block_number not in self._blocks
        block = self._blocks.setdefault(
            block_number, Block(number=block_number, timestamp=timestamp)
        )
        block.transactions.append(tx_hash)

        self._accounts[address] = account
        self._transactions[tx_hash] = transaction
        self._by_contract[address] = transaction
        self._head = max(self._head, block_number)
        sequence = self._deploy_count
        self._deploy_count += 1
        if self._listeners:
            event = DeployEvent(
                sequence=sequence,
                account=account,
                transaction=transaction,
                block=block,
                block_is_new=block_is_new,
            )
            for listener in list(self._listeners):
                listener(event)
        return address

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def get_code(self, address: str) -> bytes:
        """Deployed bytecode at ``address`` (empty bytes for EOAs)."""
        account = self._accounts.get(_normalize_address(address))
        return account.code if account else b""

    def get_account(self, address: str) -> Account | None:
        return self._accounts.get(_normalize_address(address))

    def get_transaction(self, tx_hash: str) -> Transaction:
        try:
            return self._transactions[tx_hash]
        except KeyError:
            raise ChainError(f"unknown transaction {tx_hash}")

    def get_creation_transaction(self, address: str) -> Transaction | None:
        """The transaction that deployed ``address`` — an O(1) index lookup
        (alert paths must not pay an O(transactions) linear scan)."""
        return self._by_contract.get(_normalize_address(address))

    def get_block(self, number: int) -> Block | None:
        return self._blocks.get(number)

    @property
    def head_block(self) -> int:
        """Height of the most recent block containing a deployment."""
        return self._head

    @property
    def contract_count(self) -> int:
        return len(self._accounts)

    def accounts(self) -> list[Account]:
        """All contract accounts, ordered by deployment time."""
        return sorted(self._accounts.values(), key=lambda a: (a.deployed_at, a.address))

    def transactions(self) -> list[Transaction]:
        """All creation transactions, ordered by (block, hash)."""
        return sorted(
            self._transactions.values(), key=lambda t: (t.block_number, t.tx_hash)
        )

    def __contains__(self, address: str) -> bool:
        try:
            return _normalize_address(address) in self._accounts
        except ChainError:
            return False

    def __len__(self) -> int:
        return len(self._accounts)
