"""Stand-in for the Google BigQuery public Ethereum dataset.

The paper's data-gathering phase (Fig. 1-➊) pulls a raw, *unlabeled* list
of contract creations in a time window from BigQuery. This client exposes
the query surface that phase needs, backed by a simulated
:class:`~repro.chain.blockchain.Blockchain`, including BigQuery-flavoured
niceties: paginated result sets and a dry-run byte estimate.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.chain.blockchain import Blockchain

__all__ = ["ContractRow", "QueryJob", "BigQueryClient"]

#: Approximate bytes billed per row; only used by the dry-run estimate.
_BYTES_PER_ROW = 128


@dataclass(frozen=True)
class ContractRow:
    """One row of the ``crypto_ethereum.contracts`` public table."""

    address: str
    block_number: int
    block_timestamp: int


@dataclass
class QueryJob:
    """A finished query: rows plus job accounting metadata."""

    rows: list[ContractRow]
    total_rows: int
    bytes_processed: int

    def __iter__(self) -> Iterator[ContractRow]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


class BigQueryClient:
    """Query contract creations from the simulated public dataset.

    Example:
        >>> chain = Blockchain()
        >>> __ = chain.deploy(b"\\x00", timestamp=1700000000)
        >>> client = BigQueryClient(chain)
        >>> client.total_contract_count()
        1
    """

    def __init__(self, chain: Blockchain):
        self._chain = chain

    def total_contract_count(self) -> int:
        """Total contracts in the dataset (the paper quotes 68,681,183)."""
        return self._chain.contract_count

    def list_contracts(
        self,
        start_timestamp: int | None = None,
        end_timestamp: int | None = None,
        limit: int | None = None,
        offset: int = 0,
    ) -> QueryJob:
        """Contracts deployed in ``[start_timestamp, end_timestamp)``.

        Rows are ordered by (timestamp, address) so pagination with
        ``limit``/``offset`` is stable.
        """
        if offset < 0:
            raise ValueError("offset must be non-negative")
        rows = [
            ContractRow(
                address=account.address,
                block_number=transaction.block_number,
                block_timestamp=account.deployed_at,
            )
            for account, transaction in self._iter_creations()
            if (start_timestamp is None or account.deployed_at >= start_timestamp)
            and (end_timestamp is None or account.deployed_at < end_timestamp)
        ]
        total = len(rows)
        window = rows[offset : offset + limit if limit is not None else None]
        return QueryJob(
            rows=window,
            total_rows=total,
            bytes_processed=total * _BYTES_PER_ROW,
        )

    def dry_run(
        self,
        start_timestamp: int | None = None,
        end_timestamp: int | None = None,
    ) -> int:
        """Bytes the query would process (BigQuery's cost estimate)."""
        return self.list_contracts(start_timestamp, end_timestamp).bytes_processed

    def _iter_creations(self):
        transactions = {
            t.contract_address: t for t in self._chain.transactions()
        }
        for account in self._chain.accounts():
            yield account, transactions[account.address]
