"""Simulated Ethereum data plane.

PhishingHook's data-gathering phase talks to three external services:
Google BigQuery (raw contract lists), etherscan.io (labels) and a JSON-RPC
endpoint (``eth_getCode``). This subpackage provides offline, deterministic
stand-ins exposing the same surfaces (substitutions S1/S2 in DESIGN.md):

* :mod:`repro.chain.blockchain` — a minimal ledger holding contract
  accounts, creation transactions, blocks and timestamps,
* :mod:`repro.chain.bigquery` — the public-dataset query service,
* :mod:`repro.chain.explorer` — the label service (``Phish/Hack`` flags),
* :mod:`repro.chain.rpc` — an in-process JSON-RPC server and client.
"""

from repro.chain.bigquery import BigQueryClient, ContractRow
from repro.chain.blockchain import (
    Account,
    Block,
    Blockchain,
    ChainError,
    DeployEvent,
    Transaction,
)
from repro.chain.explorer import Explorer, PHISH_HACK_LABEL
from repro.chain.rpc import JsonRpcClient, JsonRpcError, JsonRpcServer
from repro.chain.timeline import (
    MONTHS,
    month_index,
    month_label,
    month_to_timestamp,
    timestamp_to_month,
)

__all__ = [
    "Account",
    "Block",
    "Blockchain",
    "ChainError",
    "DeployEvent",
    "Transaction",
    "BigQueryClient",
    "ContractRow",
    "Explorer",
    "PHISH_HACK_LABEL",
    "JsonRpcClient",
    "JsonRpcError",
    "JsonRpcServer",
    "MONTHS",
    "month_index",
    "month_label",
    "month_to_timestamp",
    "timestamp_to_month",
]
