"""The study window: October 2023 – October 2024 (13 months).

The paper limits its BigQuery search to contracts deployed in this window
(§III, Fig. 2). This module maps between month indices (0 = 2023-10,
12 = 2024-10), human labels and unix timestamps, and approximates block
numbers at Ethereum's ~12s slot cadence from the Shanghai anchor block.
"""

from __future__ import annotations

import calendar
import datetime

__all__ = [
    "MONTHS",
    "N_MONTHS",
    "month_label",
    "month_index",
    "month_to_timestamp",
    "timestamp_to_month",
    "timestamp_in_month",
    "block_number_at",
]

#: First month of the study window.
_START_YEAR, _START_MONTH = 2023, 10

#: Number of months in the window (2023-10 .. 2024-10 inclusive).
N_MONTHS = 13

#: Anchor: the paper pins "Ethereum starting from the Shanghai update at
#: block 17034870" (§II). Shanghai activated 2023-04-12T22:27:35Z.
_SHANGHAI_BLOCK = 17_034_870
_SHANGHAI_TIMESTAMP = 1_681_338_455
_SECONDS_PER_BLOCK = 12


def _year_month(index: int) -> tuple[int, int]:
    if not 0 <= index < N_MONTHS:
        raise ValueError(f"month index {index} outside study window [0, {N_MONTHS})")
    total = (_START_YEAR * 12 + _START_MONTH - 1) + index
    return total // 12, total % 12 + 1


def month_label(index: int) -> str:
    """Human label for a month index, e.g. ``month_label(0) == "2023-10"``."""
    year, month = _year_month(index)
    return f"{year:04d}-{month:02d}"


#: Ordered labels of the 13 study months.
MONTHS = tuple(month_label(i) for i in range(N_MONTHS))


def month_index(label: str) -> int:
    """Inverse of :func:`month_label`."""
    try:
        return MONTHS.index(label)
    except ValueError:
        raise ValueError(f"{label!r} not in study window {MONTHS[0]}..{MONTHS[-1]}")


def month_to_timestamp(index: int, fraction: float = 0.0) -> int:
    """Unix timestamp ``fraction`` of the way through month ``index``."""
    if not 0.0 <= fraction < 1.0 + 1e-9:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    year, month = _year_month(index)
    start = datetime.datetime(year, month, 1, tzinfo=datetime.timezone.utc)
    days = calendar.monthrange(year, month)[1]
    seconds = min(fraction, 1.0) * days * 86400
    return int(start.timestamp() + seconds)


def timestamp_to_month(timestamp: int) -> int:
    """Month index containing ``timestamp``.

    Raises:
        ValueError: If the timestamp falls outside the study window.
    """
    moment = datetime.datetime.fromtimestamp(timestamp, tz=datetime.timezone.utc)
    index = (moment.year * 12 + moment.month - 1) - (
        _START_YEAR * 12 + _START_MONTH - 1
    )
    if not 0 <= index < N_MONTHS:
        raise ValueError(
            f"timestamp {timestamp} ({moment:%Y-%m}) outside study window"
        )
    return index


def timestamp_in_month(timestamp: int) -> bool:
    """True when ``timestamp`` lies inside the study window."""
    try:
        timestamp_to_month(timestamp)
    except ValueError:
        return False
    return True


def block_number_at(timestamp: int) -> int:
    """Approximate mainnet block height at ``timestamp`` (~12 s slots)."""
    if timestamp < _SHANGHAI_TIMESTAMP:
        raise ValueError("timestamp precedes the Shanghai update")
    return _SHANGHAI_BLOCK + (timestamp - _SHANGHAI_TIMESTAMP) // _SECONDS_PER_BLOCK
