"""Gradient-boosted decision trees: XGBoost / LightGBM / CatBoost styles.

All three boost the logistic loss with second-order statistics
(gradient ``g = p - y``, hessian ``h = p (1 - p)``) and share the gain
formula ``½ [G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)]``. They differ in the
tree-construction strategy, mirroring the distinguishing design choice of
each library the paper benchmarks:

* :class:`XGBoostClassifier` — exact greedy splits, level-wise growth to a
  depth bound,
* :class:`LightGBMClassifier` — features pre-binned into quantile
  histograms, best-first *leaf-wise* growth to a leaf-count bound,
* :class:`CatBoostClassifier` — *oblivious* (symmetric) trees: every node
  at a level shares one (feature, threshold) condition.

Inference is vectorized end to end: each fitted tree finalizes its node
lists into flat numpy arrays and predicts through the level-synchronous
descent of :mod:`repro.ml.flat`; ``decision_function`` stacks the whole
booster into one :class:`~repro.ml.flat.FlatEnsemble` so a batch costs
O(max_depth) numpy steps for *all* trees at once (oblivious trees are
index-arithmetic already). The boosting fit itself benefits too — every
round scores the training set through the same engine.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.ml.base import Classifier, check_array, check_X_y
from repro.ml.flat import FlatEnsemble, level_descent

_SINGLE_ROOT = np.zeros(1, dtype=np.int64)

__all__ = ["XGBoostClassifier", "LightGBMClassifier", "CatBoostClassifier"]

_EPS = 1e-12


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -60, 60)))


def _leaf_weight(G: float, H: float, reg_lambda: float) -> float:
    return -G / (H + reg_lambda + _EPS)


def _split_score(G: float, H: float, reg_lambda: float) -> float:
    return G * G / (H + reg_lambda + _EPS)


# --------------------------------------------------------------------- #
# Exact splitter (XGBoost style)
# --------------------------------------------------------------------- #


def _best_exact_split(X, g, h, rows, reg_lambda, min_child_samples):
    """Best (feature, threshold, gain) on raw feature values."""
    n = len(rows)
    G_total, H_total = g[rows].sum(), h[rows].sum()
    parent = _split_score(G_total, H_total, reg_lambda)
    best = None
    best_gain = 1e-9
    for feature in range(X.shape[1]):
        values = X[rows, feature]
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        g_cum = np.cumsum(g[rows][order])
        h_cum = np.cumsum(h[rows][order])
        boundaries = np.nonzero(sorted_values[:-1] < sorted_values[1:])[0]
        if len(boundaries) == 0:
            continue
        n_left = boundaries + 1
        valid = (n_left >= min_child_samples) & (n - n_left >= min_child_samples)
        boundaries = boundaries[valid]
        if len(boundaries) == 0:
            continue
        G_left = g_cum[boundaries]
        H_left = h_cum[boundaries]
        gains = (
            _split_score(G_left, H_left, reg_lambda)
            + _split_score(G_total - G_left, H_total - H_left, reg_lambda)
            - parent
        )
        arg = int(np.argmax(gains))
        if gains[arg] > best_gain:
            boundary = boundaries[arg]
            best_gain = float(gains[arg])
            threshold = 0.5 * (sorted_values[boundary] + sorted_values[boundary + 1])
            best = (feature, float(threshold), best_gain)
    return best


class _ExactTree:
    """Level-wise regression tree on (g, h)."""

    def __init__(self, max_depth, reg_lambda, min_child_samples):
        self.max_depth = max_depth
        self.reg_lambda = reg_lambda
        self.min_child_samples = min_child_samples

    def fit(self, X, g, h):
        self.features: list[int] = []
        self.thresholds: list[float] = []
        self.lefts: list[int] = []
        self.rights: list[int] = []
        self.weights: list[float] = []

        def build(rows, depth) -> int:
            node = len(self.features)
            self.features.append(-1)
            self.thresholds.append(0.0)
            self.lefts.append(-1)
            self.rights.append(-1)
            self.weights.append(
                _leaf_weight(g[rows].sum(), h[rows].sum(), self.reg_lambda)
            )
            if depth >= self.max_depth or len(rows) < 2 * self.min_child_samples:
                return node
            split = _best_exact_split(
                X, g, h, rows, self.reg_lambda, self.min_child_samples
            )
            if split is None:
                return node
            feature, threshold, __ = split
            mask = X[rows, feature] <= threshold
            left = build(rows[mask], depth + 1)
            right = build(rows[~mask], depth + 1)
            self.features[node] = feature
            self.thresholds[node] = threshold
            self.lefts[node] = left
            self.rights[node] = right
            return node

        build(np.arange(len(g)), 0)
        self.features = np.asarray(self.features, dtype=np.int64)
        self.thresholds = np.asarray(self.thresholds, dtype=np.float64)
        self.lefts = np.asarray(self.lefts, dtype=np.int64)
        self.rights = np.asarray(self.rights, dtype=np.int64)
        self.weights = np.asarray(self.weights, dtype=np.float64)
        return self

    def predict(self, X) -> np.ndarray:
        leaves = level_descent(
            X, self.lefts, self.rights, self.features, self.thresholds,
            _SINGLE_ROOT,
        )[:, 0]
        return self.weights[leaves]

    def to_state(self) -> dict:
        return {
            "features": self.features,
            "thresholds": self.thresholds,
            "lefts": self.lefts,
            "rights": self.rights,
            "weights": self.weights,
        }

    @classmethod
    def from_state(cls, state: dict, **params) -> "_ExactTree":
        tree = cls(**params)
        tree.features = np.asarray(state["features"], dtype=np.int64)
        tree.thresholds = np.asarray(state["thresholds"], dtype=np.float64)
        tree.lefts = np.asarray(state["lefts"], dtype=np.int64)
        tree.rights = np.asarray(state["rights"], dtype=np.int64)
        tree.weights = np.asarray(state["weights"], dtype=np.float64)
        return tree


# --------------------------------------------------------------------- #
# Histogram machinery (LightGBM / CatBoost styles)
# --------------------------------------------------------------------- #


class _Binner:
    """Quantile binning of raw features into uint8 bin ids."""

    def __init__(self, max_bins: int):
        self.max_bins = max_bins

    def fit(self, X) -> "_Binner":
        # One quantile pass over every column at once; per-feature edge
        # lists stay ragged only because duplicate quantiles collapse.
        quantiles = np.quantile(
            X, np.linspace(0, 1, self.max_bins + 1)[1:-1], axis=0
        )
        self.edges_ = [
            np.unique(quantiles[:, feature]) for feature in range(X.shape[1])
        ]
        return self

    def transform(self, X) -> np.ndarray:
        """Raw values → bin ids, one ``np.searchsorted`` per feature column."""
        binned = np.empty(X.shape, dtype=np.int64)
        for feature, edges in enumerate(self.edges_):
            binned[:, feature] = np.searchsorted(edges, X[:, feature], side="left")
        return binned

    @property
    def n_bins(self) -> int:
        return self.max_bins

    def to_state(self) -> dict:
        return {"max_bins": int(self.max_bins), "edges": list(self.edges_)}

    @classmethod
    def from_state(cls, state: dict) -> "_Binner":
        binner = cls(int(state["max_bins"]))
        binner.edges_ = [
            np.asarray(edges, dtype=np.float64) for edges in state["edges"]
        ]
        return binner


def _histogram_gains(binned, g, h, rows, n_bins, reg_lambda, min_child):
    """Per-(feature, bin) split gains for one leaf.

    Returns (gains, G_left, H_left) arrays of shape (n_features, n_bins-1);
    invalid splits carry -inf gain.
    """
    n_features = binned.shape[1]
    G_total, H_total = g[rows].sum(), h[rows].sum()
    parent = _split_score(G_total, H_total, reg_lambda)
    gains = np.full((n_features, n_bins - 1), -np.inf)
    for feature in range(n_features):
        bins = binned[rows, feature]
        G_bin = np.bincount(bins, weights=g[rows], minlength=n_bins)
        H_bin = np.bincount(bins, weights=h[rows], minlength=n_bins)
        C_bin = np.bincount(bins, minlength=n_bins)
        G_left = np.cumsum(G_bin)[:-1]
        H_left = np.cumsum(H_bin)[:-1]
        C_left = np.cumsum(C_bin)[:-1]
        C_right = len(rows) - C_left
        valid = (C_left >= min_child) & (C_right >= min_child)
        if not valid.any():
            continue
        score = (
            _split_score(G_left, H_left, reg_lambda)
            + _split_score(G_total - G_left, H_total - H_left, reg_lambda)
            - parent
        )
        gains[feature, valid] = score[valid]
    return gains


class _LeafwiseTree:
    """Best-first (leaf-wise) tree over binned features."""

    def __init__(self, num_leaves, reg_lambda, min_child_samples, n_bins):
        self.num_leaves = num_leaves
        self.reg_lambda = reg_lambda
        self.min_child_samples = min_child_samples
        self.n_bins = n_bins

    def fit(self, binned, g, h):
        self.features = [-1]
        self.bins = [0]
        self.lefts = [-1]
        self.rights = [-1]
        self.weights = [
            _leaf_weight(g.sum(), h.sum(), self.reg_lambda)
        ]
        counter = 0
        heap: list = []

        def push(node, rows):
            nonlocal counter
            gains = _histogram_gains(
                binned, g, h, rows, self.n_bins, self.reg_lambda,
                self.min_child_samples,
            )
            best_flat = int(np.argmax(gains))
            best_gain = gains.flat[best_flat]
            if np.isfinite(best_gain) and best_gain > 1e-9:
                feature, split_bin = divmod(best_flat, self.n_bins - 1)
                counter += 1
                heapq.heappush(
                    heap, (-best_gain, counter, node, rows, feature, split_bin)
                )

        push(0, np.arange(len(g)))
        n_leaves = 1
        while heap and n_leaves < self.num_leaves:
            __, __, node, rows, feature, split_bin = heapq.heappop(heap)
            mask = binned[rows, feature] <= split_bin
            left_rows, right_rows = rows[mask], rows[~mask]
            left, right = len(self.features), len(self.features) + 1
            for child_rows in (left_rows, right_rows):
                self.features.append(-1)
                self.bins.append(0)
                self.lefts.append(-1)
                self.rights.append(-1)
                self.weights.append(
                    _leaf_weight(
                        g[child_rows].sum(), h[child_rows].sum(), self.reg_lambda
                    )
                )
            self.features[node] = feature
            self.bins[node] = split_bin
            self.lefts[node] = left
            self.rights[node] = right
            n_leaves += 1
            push(left, left_rows)
            push(right, right_rows)
        self.features = np.asarray(self.features, dtype=np.int64)
        self.bins = np.asarray(self.bins, dtype=np.float64)
        self.lefts = np.asarray(self.lefts, dtype=np.int64)
        self.rights = np.asarray(self.rights, dtype=np.int64)
        self.weights = np.asarray(self.weights, dtype=np.float64)
        return self

    def predict_binned(self, binned) -> np.ndarray:
        leaves = level_descent(
            binned, self.lefts, self.rights, self.features, self.bins,
            _SINGLE_ROOT,
        )[:, 0]
        return self.weights[leaves]

    def to_state(self) -> dict:
        return {
            "features": self.features,
            "bins": self.bins,
            "lefts": self.lefts,
            "rights": self.rights,
            "weights": self.weights,
        }

    @classmethod
    def from_state(cls, state: dict, **params) -> "_LeafwiseTree":
        tree = cls(**params)
        tree.features = np.asarray(state["features"], dtype=np.int64)
        tree.bins = np.asarray(state["bins"], dtype=np.float64)
        tree.lefts = np.asarray(state["lefts"], dtype=np.int64)
        tree.rights = np.asarray(state["rights"], dtype=np.int64)
        tree.weights = np.asarray(state["weights"], dtype=np.float64)
        return tree


class _ObliviousTree:
    """Symmetric tree: one (feature, bin) condition per level."""

    def __init__(self, depth, reg_lambda, min_child_samples, n_bins):
        self.depth = depth
        self.reg_lambda = reg_lambda
        self.min_child_samples = min_child_samples
        self.n_bins = n_bins

    def fit(self, binned, g, h):
        self.conditions: list[tuple[int, int]] = []
        leaves = [np.arange(len(g))]
        for __ in range(self.depth):
            total_gain = np.zeros((binned.shape[1], self.n_bins - 1))
            any_valid = np.zeros_like(total_gain, dtype=bool)
            for rows in leaves:
                if len(rows) == 0:
                    continue
                gains = _histogram_gains(
                    binned, g, h, rows, self.n_bins, self.reg_lambda,
                    self.min_child_samples,
                )
                finite = np.isfinite(gains)
                total_gain[finite] += gains[finite]
                any_valid |= finite
            total_gain[~any_valid] = -np.inf
            best_flat = int(np.argmax(total_gain))
            if not np.isfinite(total_gain.flat[best_flat]):
                break
            feature, split_bin = divmod(best_flat, self.n_bins - 1)
            self.conditions.append((feature, split_bin))
            next_leaves = []
            for rows in leaves:
                mask = binned[rows, feature] <= split_bin
                next_leaves.append(rows[mask])
                next_leaves.append(rows[~mask])
            leaves = next_leaves
        self.leaf_weights = np.array(
            [
                _leaf_weight(g[rows].sum(), h[rows].sum(), self.reg_lambda)
                if len(rows)
                else 0.0
                for rows in leaves
            ]
        )
        return self

    def predict_binned(self, binned) -> np.ndarray:
        index = np.zeros(len(binned), dtype=np.int64)
        for feature, split_bin in self.conditions:
            goes_right = binned[:, feature] > split_bin
            index = index * 2 + goes_right
        return self.leaf_weights[index]

    def to_state(self) -> dict:
        return {
            "conditions": [[int(f), int(b)] for f, b in self.conditions],
            "leaf_weights": self.leaf_weights,
        }

    @classmethod
    def from_state(cls, state: dict, **params) -> "_ObliviousTree":
        tree = cls(**params)
        tree.conditions = [(int(f), int(b)) for f, b in state["conditions"]]
        tree.leaf_weights = np.asarray(state["leaf_weights"], dtype=np.float64)
        return tree


# --------------------------------------------------------------------- #
# Boosting drivers
# --------------------------------------------------------------------- #


class _BoostedClassifier(Classifier):
    """Shared logistic-loss boosting loop."""

    n_estimators: int
    learning_rate: float

    def _setup(self, X):  # pragma: no cover - interface
        raise NotImplementedError

    def _fit_tree(self, X, g, h):  # pragma: no cover - interface
        raise NotImplementedError

    def _tree_predict(self, tree, X):  # pragma: no cover - interface
        raise NotImplementedError

    def _rebuild_tree(self, state):  # pragma: no cover - interface
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        if not getattr(self, "trees_", None):
            raise RuntimeError("booster is not fitted; call fit() first")
        state = {
            "base_score": float(self.base_score_),
            "n_features": int(self.n_features_),
            "trees": [tree.to_state() for tree in self.trees_],
        }
        binner = getattr(self, "binner_", None)
        if binner is not None:
            state["binner"] = binner.to_state()
        return state

    def load_state(self, state: dict) -> "_BoostedClassifier":
        self.base_score_ = float(state["base_score"])
        self.n_features_ = int(state["n_features"])
        if state.get("binner") is not None:
            self.binner_ = _Binner.from_state(state["binner"])
        self.trees_ = [self._rebuild_tree(s) for s in state["trees"]]
        # Stack the booster into the flat inference engine now — a loaded
        # model is serve-ready without paying compilation in the first
        # scored batch (oblivious trees need none and return None).
        self._flat = None
        self.compile_flat()
        return self

    def fit(self, X, y) -> "_BoostedClassifier":
        X, y = check_X_y(X, y)
        X = self._setup(X)
        self.n_features_ = X.shape[1]
        self._flat: FlatEnsemble | None = None
        positive_rate = np.clip(y.mean(), 1e-6, 1 - 1e-6)
        self.base_score_ = float(np.log(positive_rate / (1 - positive_rate)))
        raw = np.full(len(y), self.base_score_)
        self.trees_ = []
        for __ in range(self.n_estimators):
            p = _sigmoid(raw)
            g = p - y
            h = np.maximum(p * (1 - p), 1e-6)
            tree = self._fit_tree(X, g, h)
            self.trees_.append(tree)
            raw += self.learning_rate * self._tree_predict(tree, X)
        return self

    def fit_more(self, X, y, n_more: int) -> "_BoostedClassifier":
        """Continue boosting for ``n_more`` rounds on new data.

        The incremental-retrain primitive: existing trees, the fitted
        base score and (for binned boosters) the quantile binner are all
        frozen — only the new rounds train, on the *new* window, starting
        from the fitted ensemble's raw margin. Freezing the binner is
        what makes continuation well-defined: rebinning on the new
        window would silently re-map the thresholds every old tree
        splits on.

        Raises:
            RuntimeError: If the booster is not fitted.
            ValueError: If ``n_more < 1`` or the feature count changed.
        """
        if not getattr(self, "trees_", None):
            raise RuntimeError("booster is not fitted; call fit() first")
        if n_more < 1:
            raise ValueError("n_more must be >= 1")
        X, y = check_X_y(X, y)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"fit_more expects {self.n_features_} features, "
                f"got {X.shape[1]}"
            )
        # Raw margins of the fitted ensemble on the new window — computed
        # through decision_function so the frozen binner transforms the
        # raw features exactly as inference does.
        raw = self.decision_function(X)
        X = self._prepare(check_array(X))
        self._flat = None
        for __ in range(int(n_more)):
            p = _sigmoid(raw)
            g = p - y
            h = np.maximum(p * (1 - p), 1e-6)
            tree = self._fit_tree(X, g, h)
            self.trees_.append(tree)
            raw += self.learning_rate * self._tree_predict(tree, X)
        self.n_estimators = len(self.trees_)
        return self

    def compile_flat(self) -> FlatEnsemble | None:
        """The booster as one stacked :class:`FlatEnsemble` (cached).

        Returns ``None`` for tree types without node arrays (oblivious
        trees descend by index arithmetic and need no compilation).
        """
        if getattr(self, "_flat", None) is not None:
            return self._flat
        trees = getattr(self, "trees_", None)
        if not trees or not hasattr(trees[0], "lefts"):
            return None
        threshold_attr = "thresholds" if hasattr(trees[0], "thresholds") else "bins"
        self._flat = FlatEnsemble.from_regression_trees(
            trees, self.n_features_, threshold_attr=threshold_attr
        )
        return self._flat

    def decision_function(self, X) -> np.ndarray:
        X = check_array(X)
        X = self._prepare(X)
        flat = self.compile_flat()
        if flat is not None:
            # One descent for every (sample, tree) pair; contributions are
            # added in boosting order — bit-identical to the loop below.
            return flat.decision_sum(X, self.learning_rate, self.base_score_)
        raw = np.full(len(X), self.base_score_)
        for tree in self.trees_:
            raw += self.learning_rate * self._tree_predict(tree, X)
        return raw

    def _prepare(self, X):
        return X

    def predict_proba(self, X) -> np.ndarray:
        p = _sigmoid(self.decision_function(X))
        return np.column_stack([1 - p, p])


class XGBoostClassifier(_BoostedClassifier):
    """Exact greedy, level-wise second-order boosting."""

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.3,
        max_depth: int = 4,
        reg_lambda: float = 1.0,
        min_child_samples: int = 2,
    ):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.reg_lambda = reg_lambda
        self.min_child_samples = min_child_samples

    def _setup(self, X):
        return X

    def _fit_tree(self, X, g, h):
        return _ExactTree(
            self.max_depth, self.reg_lambda, self.min_child_samples
        ).fit(X, g, h)

    def _tree_predict(self, tree, X):
        return tree.predict(X)

    def _rebuild_tree(self, state):
        return _ExactTree.from_state(
            state, max_depth=self.max_depth, reg_lambda=self.reg_lambda,
            min_child_samples=self.min_child_samples,
        )


class LightGBMClassifier(_BoostedClassifier):
    """Histogram-binned, leaf-wise second-order boosting."""

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        num_leaves: int = 15,
        max_bins: int = 32,
        reg_lambda: float = 1.0,
        min_child_samples: int = 2,
    ):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.num_leaves = num_leaves
        self.max_bins = max_bins
        self.reg_lambda = reg_lambda
        self.min_child_samples = min_child_samples

    def _setup(self, X):
        self.binner_ = _Binner(self.max_bins).fit(X)
        return self.binner_.transform(X)

    def _prepare(self, X):
        return self.binner_.transform(X)

    def _fit_tree(self, X, g, h):
        return _LeafwiseTree(
            self.num_leaves, self.reg_lambda, self.min_child_samples,
            self.max_bins,
        ).fit(X, g, h)

    def _tree_predict(self, tree, X):
        return tree.predict_binned(X)

    def _rebuild_tree(self, state):
        return _LeafwiseTree.from_state(
            state, num_leaves=self.num_leaves, reg_lambda=self.reg_lambda,
            min_child_samples=self.min_child_samples, n_bins=self.max_bins,
        )


class CatBoostClassifier(_BoostedClassifier):
    """Oblivious-tree second-order boosting."""

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        depth: int = 4,
        max_bins: int = 32,
        reg_lambda: float = 1.0,
        min_child_samples: int = 2,
    ):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.depth = depth
        self.max_bins = max_bins
        self.reg_lambda = reg_lambda
        self.min_child_samples = min_child_samples

    def _setup(self, X):
        self.binner_ = _Binner(self.max_bins).fit(X)
        return self.binner_.transform(X)

    def _prepare(self, X):
        return self.binner_.transform(X)

    def _fit_tree(self, X, g, h):
        return _ObliviousTree(
            self.depth, self.reg_lambda, self.min_child_samples, self.max_bins
        ).fit(X, g, h)

    def _tree_predict(self, tree, X):
        return tree.predict_binned(X)

    def _rebuild_tree(self, state):
        return _ObliviousTree.from_state(
            state, depth=self.depth, reg_lambda=self.reg_lambda,
            min_child_samples=self.min_child_samples, n_bins=self.max_bins,
        )
