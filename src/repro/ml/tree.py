"""CART decision trees (gini impurity), numpy-vectorized split search.

The fitted tree is exposed as flat parallel arrays (``children_left_`` …)
— the representation both the exact TreeSHAP implementation in
:mod:`repro.analysis.shap_values` and the vectorized inference engine in
:mod:`repro.ml.flat` consume. Single-tree inference (:meth:`apply`) runs
through the engine's level-synchronous descent; the seed per-row traversal
is retained as :func:`apply_per_row` — the bit-identical reference the
equivalence tests and throughput benchmark compare against.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier, check_array, check_X_y
from repro.ml.flat import LEAF, level_descent, max_leaf_depth, reference_apply

__all__ = ["DecisionTreeClassifier", "best_gini_split", "apply_per_row"]

_SINGLE_ROOT = np.zeros(1, dtype=np.int64)


def apply_per_row(tree: "DecisionTreeClassifier", X) -> np.ndarray:
    """Reference leaf lookup: the seed's per-row Python ``while`` loop."""
    return reference_apply(
        check_array(X),
        tree.children_left_,
        tree.children_right_,
        tree.feature_,
        tree.threshold_,
    )


def best_gini_split(
    X: np.ndarray,
    y: np.ndarray,
    feature_indices: np.ndarray,
    min_samples_leaf: int,
) -> tuple[int, float, float] | None:
    """Best (feature, threshold, gain) over candidate features, or None.

    Gain is the decrease in gini impurity; thresholds are midpoints
    between consecutive distinct feature values.
    """
    n = len(y)
    total_pos = int(y.sum())
    parent_gini = 1.0 - (total_pos / n) ** 2 - ((n - total_pos) / n) ** 2
    best: tuple[int, float, float] | None = None
    best_gain = 1e-12

    for feature in feature_indices:
        values = X[:, feature]
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        cumulative_pos = np.cumsum(y[order])

        boundaries = np.nonzero(sorted_values[:-1] < sorted_values[1:])[0]
        if len(boundaries) == 0:
            continue
        n_left = boundaries + 1
        n_right = n - n_left
        valid = (n_left >= min_samples_leaf) & (n_right >= min_samples_leaf)
        boundaries = boundaries[valid]
        if len(boundaries) == 0:
            continue
        n_left = n_left[valid]
        n_right = n_right[valid]

        left_pos = cumulative_pos[boundaries]
        right_pos = total_pos - left_pos
        gini_left = 1.0 - (left_pos / n_left) ** 2 - (
            (n_left - left_pos) / n_left
        ) ** 2
        gini_right = 1.0 - (right_pos / n_right) ** 2 - (
            (n_right - right_pos) / n_right
        ) ** 2
        weighted = (n_left * gini_left + n_right * gini_right) / n
        gains = parent_gini - weighted

        arg = int(np.argmax(gains))
        if gains[arg] > best_gain:
            boundary = boundaries[arg]
            threshold = 0.5 * (
                sorted_values[boundary] + sorted_values[boundary + 1]
            )
            best_gain = float(gains[arg])
            best = (int(feature), float(threshold), best_gain)
    return best


class DecisionTreeClassifier(Classifier):
    """Binary CART tree.

    Args:
        max_depth: Depth bound (None = unbounded).
        min_samples_split: Minimum samples to attempt a split.
        min_samples_leaf: Minimum samples on each side of a split.
        max_features: Features examined per split: None (all), "sqrt",
            an int count, or a float fraction.
        random_state: Seed for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        random_state: int | None = None,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

    # ------------------------------------------------------------------ #

    def _n_candidate_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if isinstance(self.max_features, float):
            return max(1, int(self.max_features * n_features))
        return max(1, min(int(self.max_features), n_features))

    def fit(self, X, y, sample_indices=None) -> "DecisionTreeClassifier":
        X, y = check_X_y(X, y)
        if sample_indices is not None:
            X, y = X[sample_indices], y[sample_indices]
        self.n_features_ = X.shape[1]
        rng = np.random.default_rng(self.random_state)
        k = self._n_candidate_features(self.n_features_)

        children_left: list[int] = []
        children_right: list[int] = []
        feature: list[int] = []
        threshold: list[float] = []
        value: list[list[float]] = []
        n_node_samples: list[int] = []

        def new_node() -> int:
            children_left.append(LEAF)
            children_right.append(LEAF)
            feature.append(LEAF)
            threshold.append(0.0)
            value.append([0.0, 0.0])
            n_node_samples.append(0)
            return len(children_left) - 1

        # Iterative construction: stack of (node_id, row_indices, depth).
        root = new_node()
        stack = [(root, np.arange(len(y)), 0)]
        while stack:
            node, rows, depth = stack.pop()
            labels = y[rows]
            positives = int(labels.sum())
            n = len(rows)
            n_node_samples[node] = n
            value[node] = [float(n - positives) / n, float(positives) / n]

            if (
                positives == 0
                or positives == n
                or n < self.min_samples_split
                or (self.max_depth is not None and depth >= self.max_depth)
            ):
                continue
            if k < self.n_features_:
                candidates = rng.choice(self.n_features_, size=k, replace=False)
            else:
                candidates = np.arange(self.n_features_)
            split = best_gini_split(
                X[rows], labels, candidates, self.min_samples_leaf
            )
            if split is None:
                continue
            split_feature, split_threshold, __ = split
            mask = X[rows, split_feature] <= split_threshold
            left_id, right_id = new_node(), new_node()
            children_left[node] = left_id
            children_right[node] = right_id
            feature[node] = split_feature
            threshold[node] = split_threshold
            stack.append((left_id, rows[mask], depth + 1))
            stack.append((right_id, rows[~mask], depth + 1))

        self.children_left_ = np.asarray(children_left, dtype=np.int64)
        self.children_right_ = np.asarray(children_right, dtype=np.int64)
        self.feature_ = np.asarray(feature, dtype=np.int64)
        self.threshold_ = np.asarray(threshold, dtype=np.float64)
        self.value_ = np.asarray(value, dtype=np.float64)
        self.n_node_samples_ = np.asarray(n_node_samples, dtype=np.int64)
        return self

    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        if not hasattr(self, "children_left_"):
            raise RuntimeError("tree is not fitted; call fit() first")
        return {
            "children_left": self.children_left_,
            "children_right": self.children_right_,
            "feature": self.feature_,
            "threshold": self.threshold_,
            "value": self.value_,
            "n_node_samples": self.n_node_samples_,
            "n_features": int(self.n_features_),
        }

    def load_state(self, state: dict) -> "DecisionTreeClassifier":
        self.children_left_ = np.asarray(state["children_left"], dtype=np.int64)
        self.children_right_ = np.asarray(state["children_right"], dtype=np.int64)
        self.feature_ = np.asarray(state["feature"], dtype=np.int64)
        self.threshold_ = np.asarray(state["threshold"], dtype=np.float64)
        self.value_ = np.asarray(state["value"], dtype=np.float64)
        self.n_node_samples_ = np.asarray(state["n_node_samples"], dtype=np.int64)
        self.n_features_ = int(state["n_features"])
        return self

    # ------------------------------------------------------------------ #

    @property
    def node_count(self) -> int:
        return len(self.children_left_)

    @property
    def max_depth_reached(self) -> int:
        """Deepest node, via a vectorized breadth-first frontier sweep."""
        return max_leaf_depth(
            self.children_left_, self.children_right_, self.feature_,
            _SINGLE_ROOT,
        )

    def apply(self, X) -> np.ndarray:
        """Leaf index reached by each sample (level-synchronous descent)."""
        X = check_array(X)
        return level_descent(
            X,
            self.children_left_,
            self.children_right_,
            self.feature_,
            self.threshold_,
            _SINGLE_ROOT,
        )[:, 0]

    def predict_proba(self, X) -> np.ndarray:
        return self.value_[self.apply(X)]

    @property
    def feature_importances_(self) -> np.ndarray:
        """Impurity-decrease importances, normalized to sum to 1.

        One vectorized pass over the internal nodes; repeated features
        accumulate via ``np.add.at`` in node order, matching the former
        per-node Python loop float-for-float.
        """
        importances = np.zeros(self.n_features_)
        internal = self.children_left_ != LEAF
        if not internal.any():
            return importances
        total = self.n_node_samples_[0]
        left = self.children_left_[internal]
        right = self.children_right_[internal]

        p = self.value_[:, 1]
        gini = 1.0 - p * p - (1.0 - p) ** 2
        decrease = (
            self.n_node_samples_[internal] * gini[internal]
            - self.n_node_samples_[left] * gini[left]
            - self.n_node_samples_[right] * gini[right]
        )
        np.add.at(importances, self.feature_[internal], decrease / total)
        if importances.sum() > 0:
            importances /= importances.sum()
        return importances
