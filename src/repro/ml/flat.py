"""Flat-array vectorized ensemble inference engine.

Any fitted tree ensemble — a :class:`~repro.ml.forest.RandomForestClassifier`,
the XGBoost/LightGBM-style boosted trees in :mod:`repro.ml.gbdt`, or a single
:class:`~repro.ml.tree.DecisionTreeClassifier` — compiles into one set of
contiguous stacked node arrays (``children_left`` / ``children_right`` /
``feature`` / ``threshold`` / ``value`` plus per-tree root offsets). Inference
then runs as **level-synchronous descent**: one :func:`np.where` step advances
*every* (sample, tree) pair a level at once, so a batched ``predict_proba``
costs O(max_depth) numpy operations instead of O(rows × trees × depth) Python
loop iterations.

Numerical contract: the engine is **bit-identical** to the per-row reference
traversal. Descent uses the same ``x[feature] <= threshold`` comparison on the
same float64 values, and per-tree leaf values are accumulated *sequentially in
tree order* (one vectorized add per tree, not a pairwise ``np.sum`` over the
tree axis), matching the reference ``for tree in trees: total += ...`` loop
float-for-float.

TreeSHAP contract: compilation is view-preserving. :meth:`FlatEnsemble.tree_view`
returns the ``i``-th tree as an object exposing the exact per-tree attribute
names (``children_left_`` …, local node ids, ``LEAF`` sentinels,
``n_node_samples_`` when stacked) that the exact TreeSHAP implementation in
:mod:`repro.analysis.shap_values` consumes, so explanations can be computed
from either representation interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "LEAF",
    "FlatEnsemble",
    "level_descent",
    "max_leaf_depth",
    "reference_apply",
    "precompile",
]

#: Sentinel used in the flat arrays for leaves (shared with repro.ml.tree).
LEAF = -1

#: Rows per descent chunk: bounds the (rows × trees) int64 temporaries to a
#: few MB regardless of batch size.
DESCENT_CHUNK_ROWS = 8192


def level_descent(
    X: np.ndarray,
    children_left: np.ndarray,
    children_right: np.ndarray,
    feature: np.ndarray,
    threshold: np.ndarray,
    roots: np.ndarray,
    chunk_rows: int = DESCENT_CHUNK_ROWS,
    consecutive_children: bool | None = None,
) -> np.ndarray:
    """Vectorized root→leaf descent over every (sample, tree) pair.

    Args:
        X: ``(n_samples, n_features)`` feature matrix (float or binned
            int; must be NaN-free — every classifier validates upstream).
        children_left / children_right / feature / threshold: Stacked node
            arrays; child ids are *global* (already offset per tree) and
            ``LEAF`` marks leaves in ``feature`` and both child arrays.
        roots: ``(n_trees,)`` global root node id per tree.
        chunk_rows: Sample-chunk size bounding temporary memory.
        consecutive_children: Whether ``right == left + 1`` for every
            internal node (the CART and leaf-wise builders allocate
            children adjacently), enabling a one-gather child step.
            ``None`` detects it with one O(nodes) pass.

    Returns:
        ``(n_samples, n_trees)`` global node id of the leaf each sample
        reaches in each tree.
    """
    X = np.asarray(X)
    if consecutive_children is None:
        internal = feature != LEAF
        consecutive_children = bool(
            np.array_equal(children_right[internal], children_left[internal] + 1)
        )
    n_samples = len(X)
    if n_samples <= chunk_rows:
        return _descend(
            X, children_left, children_right, feature, threshold, roots,
            consecutive_children,
        )
    out = np.empty((n_samples, len(roots)), dtype=np.int64)
    for start in range(0, n_samples, chunk_rows):
        stop = start + chunk_rows
        out[start:stop] = _descend(
            X[start:stop], children_left, children_right, feature, threshold,
            roots, consecutive_children,
        )
    return out


def _descend(X, children_left, children_right, feature, threshold, roots,
             consecutive_children):
    n_samples = len(X)
    n_trees = len(roots)
    leaves = np.repeat(roots[None, :], n_samples, axis=0).ravel()
    # Active-set descent: each level only touches (sample, tree) pairs
    # still at internal nodes, so total work is the sum of root→leaf path
    # lengths rather than n_samples × n_trees × max_depth. Pairs scatter
    # into the output exactly once, when they settle on a leaf; the split
    # feature of the next level is carried over from the settledness probe
    # so each level costs one gather into X and one into each node array.
    index = np.nonzero(feature[leaves] != LEAF)[0]
    samples = np.repeat(np.arange(n_samples), n_trees)[index]
    current = leaves[index]
    split_feature = feature[current]
    while index.size:
        if consecutive_children:
            # right child = left child + 1, and x > t ⟺ ¬(x ≤ t) on the
            # NaN-free inputs the classifiers validate — bit-identical to
            # the reference ``<=`` branch at one gather instead of two.
            go_right = X[samples, split_feature] > threshold[current]
            advanced = children_left[current] + go_right
        else:
            go_left = X[samples, split_feature] <= threshold[current]
            advanced = np.where(
                go_left, children_left[current], children_right[current]
            )
        next_feature = feature[advanced]
        settled = next_feature == LEAF
        if settled.any():
            leaves[index[settled]] = advanced[settled]
            alive = ~settled
            index = index[alive]
            samples = samples[alive]
            current = advanced[alive]
            split_feature = next_feature[alive]
        else:
            current = advanced
            split_feature = next_feature
    return leaves.reshape(n_samples, n_trees)


def max_leaf_depth(
    children_left: np.ndarray,
    children_right: np.ndarray,
    feature: np.ndarray,
    roots: np.ndarray,
) -> int:
    """Longest root→leaf path (in edges), by vectorized frontier sweep.

    This is the iteration bound for parked descent and the
    ``max_depth_reached`` of a single tree (pass a one-element root).
    """
    internal = feature != LEAF
    depth = 0
    frontier = roots[internal[roots]]
    while frontier.size:
        depth += 1
        children = np.concatenate(
            (children_left[frontier], children_right[frontier])
        )
        frontier = children[internal[children]]
    return depth


def reference_apply(
    X: np.ndarray,
    children_left: np.ndarray,
    children_right: np.ndarray,
    feature: np.ndarray,
    threshold: np.ndarray,
    root: int = 0,
) -> np.ndarray:
    """The seed per-row, per-node Python traversal (one tree).

    Kept as the ground-truth reference the equivalence tests and
    ``benchmarks/bench_predict_throughput.py`` measure the engine against.
    """
    leaves = np.empty(len(X), dtype=np.int64)
    for row in range(len(X)):
        node = root
        while children_left[node] != LEAF:
            if X[row, feature[node]] <= threshold[node]:
                node = children_left[node]
            else:
                node = children_right[node]
        leaves[row] = node
    return leaves


class _TreeView:
    """One tree of a :class:`FlatEnsemble`, in per-tree attribute naming.

    Exposes ``children_left_`` / ``children_right_`` / ``feature_`` /
    ``threshold_`` / ``value_`` (and ``n_node_samples_`` / ``n_features_``
    when available) with *local* node ids — the exact contract
    :func:`repro.analysis.shap_values.tree_shap_values` traverses.
    """

    def __init__(self, flat: "FlatEnsemble", index: int):
        start, stop = flat.offsets[index], flat.offsets[index + 1]
        shift = np.int64(start)
        left = flat.children_left[start:stop].copy()
        right = flat.children_right[start:stop].copy()
        left[left != LEAF] -= shift
        right[right != LEAF] -= shift
        self.children_left_ = left
        self.children_right_ = right
        self.feature_ = flat.feature[start:stop]
        self.threshold_ = flat.threshold[start:stop]
        self.value_ = flat.value[start:stop]
        if flat.n_node_samples is not None:
            self.n_node_samples_ = flat.n_node_samples[start:stop]
        self.n_features_ = flat.n_features


@dataclass
class FlatEnsemble:
    """A fitted ensemble compiled to contiguous stacked node arrays.

    Attributes:
        children_left / children_right: ``(total_nodes,)`` global child ids
            (``LEAF`` for leaves).
        feature: ``(total_nodes,)`` split feature (``LEAF`` for leaves).
        threshold: ``(total_nodes,)`` split threshold (bin id for binned
            trees, stored as float64 — exact for the small integer bins).
        value: ``(total_nodes, n_outputs)`` leaf/node payload — class
            fractions for CART trees, a single leaf-weight column for
            boosted regression trees.
        offsets: ``(n_trees + 1,)`` prefix of per-tree node counts; tree
            ``i`` occupies rows ``offsets[i]:offsets[i+1]`` and its root is
            ``offsets[i]``.
        n_features: Feature-space width the ensemble was fitted on.
        n_node_samples: Optional ``(total_nodes,)`` per-node training-sample
            counts (stacked for CART trees; TreeSHAP weighs paths with it).
    """

    children_left: np.ndarray
    children_right: np.ndarray
    feature: np.ndarray
    threshold: np.ndarray
    value: np.ndarray
    offsets: np.ndarray
    n_features: int
    n_node_samples: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Compilation
    # ------------------------------------------------------------------ #

    @classmethod
    def from_arrays(
        cls,
        per_tree: list[tuple],
        n_features: int,
        n_node_samples: list[np.ndarray] | None = None,
    ) -> "FlatEnsemble":
        """Stack per-tree ``(left, right, feature, threshold, value)`` tuples.

        Child ids in the inputs are tree-local; stacking offsets every
        non-``LEAF`` id by the tree's base so descent runs on global ids.
        """
        counts = [len(arrays[0]) for arrays in per_tree]
        offsets = np.zeros(len(per_tree) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        lefts, rights, features, thresholds, values = [], [], [], [], []
        for base, (left, right, feature, threshold, value) in zip(
            offsets[:-1], per_tree
        ):
            left = np.asarray(left, dtype=np.int64).copy()
            right = np.asarray(right, dtype=np.int64).copy()
            left[left != LEAF] += base
            right[right != LEAF] += base
            lefts.append(left)
            rights.append(right)
            features.append(np.asarray(feature, dtype=np.int64))
            thresholds.append(np.asarray(threshold, dtype=np.float64))
            value = np.asarray(value, dtype=np.float64)
            if value.ndim == 1:
                value = value[:, None]
            values.append(value)
        return cls(
            children_left=np.concatenate(lefts),
            children_right=np.concatenate(rights),
            feature=np.concatenate(features),
            threshold=np.concatenate(thresholds),
            value=np.concatenate(values),
            offsets=offsets,
            n_features=n_features,
            n_node_samples=(
                np.concatenate(
                    [np.asarray(s, dtype=np.int64) for s in n_node_samples]
                )
                if n_node_samples is not None
                else None
            ),
        )

    @classmethod
    def from_cart_trees(cls, trees: list) -> "FlatEnsemble":
        """Compile fitted :class:`~repro.ml.tree.DecisionTreeClassifier` trees."""
        return cls.from_arrays(
            [
                (
                    tree.children_left_,
                    tree.children_right_,
                    tree.feature_,
                    tree.threshold_,
                    tree.value_,
                )
                for tree in trees
            ],
            n_features=trees[0].n_features_,
            n_node_samples=[tree.n_node_samples_ for tree in trees],
        )

    @classmethod
    def from_regression_trees(
        cls, trees: list, n_features: int, threshold_attr: str = "thresholds"
    ) -> "FlatEnsemble":
        """Compile the gbdt module's regression trees (scalar leaf weights).

        ``threshold_attr`` selects raw thresholds (:class:`_ExactTree`) or
        split-bin ids (:class:`_LeafwiseTree`, ``"bins"``).
        """
        return cls.from_arrays(
            [
                (
                    tree.lefts,
                    tree.rights,
                    tree.features,
                    getattr(tree, threshold_attr),
                    tree.weights,
                )
                for tree in trees
            ],
            n_features=n_features,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def n_trees(self) -> int:
        return len(self.offsets) - 1

    @property
    def node_count(self) -> int:
        return len(self.children_left)

    @property
    def roots(self) -> np.ndarray:
        return self.offsets[:-1]

    def tree_view(self, index: int) -> _TreeView:
        """Tree ``index`` under the per-tree (TreeSHAP) attribute contract."""
        return _TreeView(self, index)

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #

    def _descent_tables(self) -> tuple:
        """Leaf-parked node tables + depth bound (built once, cached).

        Leaves are rewritten to self-loop — ``left = right = self``,
        ``threshold = +inf`` (every finite x goes left), ``feature = 0`` —
        so the descent loop needs no per-level settledness bookkeeping at
        all: it runs exactly ``max_depth`` data-independent iterations and
        settled pairs park in place. Bit-identity is unaffected; internal
        nodes keep their original comparisons.
        """
        cached = self.__dict__.get("_tables")
        if cached is not None:
            return cached
        leaf = self.feature == LEAF
        node_ids = np.arange(self.node_count, dtype=np.int64)
        left = np.where(leaf, node_ids, self.children_left)
        right = np.where(leaf, node_ids, self.children_right)
        feat = np.where(leaf, 0, self.feature)
        thr = np.where(leaf, np.inf, self.threshold)
        internal = ~leaf
        consecutive = bool(
            np.array_equal(
                self.children_right[internal], self.children_left[internal] + 1
            )
        )
        depth = max_leaf_depth(
            self.children_left, self.children_right, self.feature, self.roots
        )
        self.__dict__["_tables"] = (left, right, feat, thr, consecutive, depth)
        return self.__dict__["_tables"]

    def apply(self, X, chunk_rows: int = DESCENT_CHUNK_ROWS) -> np.ndarray:
        """``(n_samples, n_trees)`` global leaf ids (level-synchronous).

        Runs the leaf-parked full-set descent: ``max_depth`` branch-free
        numpy iterations over every (sample, tree) pair, chunked over
        samples to bound temporaries.
        """
        left, right, feat, thr, consecutive, depth = self._descent_tables()
        X = np.asarray(X)
        n_samples = len(X)
        if n_samples <= chunk_rows:
            return self._parked_descent(X, left, right, feat, thr, consecutive, depth)
        out = np.empty((n_samples, self.n_trees), dtype=np.int64)
        for start in range(0, n_samples, chunk_rows):
            stop = start + chunk_rows
            out[start:stop] = self._parked_descent(
                X[start:stop], left, right, feat, thr, consecutive, depth
            )
        return out

    def _parked_descent(self, X, left, right, feat, thr, consecutive, depth):
        nodes = np.repeat(self.roots[None, :], len(X), axis=0)
        rows = np.arange(len(X))[:, None]
        for __ in range(depth):
            go_right = X[rows, feat[nodes]] > thr[nodes]
            if consecutive:
                # right = left + 1 on internal nodes; parked leaves have
                # threshold +inf so go_right is always False there.
                nodes = left[nodes] + go_right
            else:
                nodes = np.where(go_right, right[nodes], left[nodes])
        return nodes

    def accumulate_values(self, X) -> np.ndarray:
        """Sum of per-tree leaf ``value`` rows, ``(n_samples, n_outputs)``.

        Trees are accumulated sequentially in tree order so the result is
        bit-identical to the reference per-tree ``+=`` loop.
        """
        leaves = self.apply(X)
        total = np.zeros((len(leaves), self.value.shape[1]))
        for tree_index in range(self.n_trees):
            total += self.value[leaves[:, tree_index]]
        return total

    def predict_proba_mean(self, X) -> np.ndarray:
        """Forest-style probability: mean of per-tree class fractions."""
        return self.accumulate_values(X) / self.n_trees

    def decision_sum(self, X, learning_rate: float, base_score: float) -> np.ndarray:
        """Boosting-style raw score: ``base + lr * Σ_t weight_t`` per sample.

        Per-tree contributions are added in boosting order (bit-identical to
        the reference sequential loop, which scales *each* tree by the
        learning rate before adding).
        """
        leaves = self.apply(X)
        raw = np.full(len(leaves), base_score)
        for tree_index in range(self.n_trees):
            raw += learning_rate * self.value[leaves[:, tree_index], 0]
        return raw


def precompile(model) -> int:
    """Force flat compilation of every ensemble reachable from ``model``.

    Walks detector wrappers (``classifier_`` on HSC detectors, ``model`` /
    ``_model`` on services) and calls ``compile_flat()`` wherever exposed, so
    serve/stream cold starts and evaluation folds pay the (cheap, one-off)
    array stacking at fit time rather than inside the first scored batch.

    Returns:
        Number of compiled ensembles reached (0 for models with no flat
        representation — compilation is strictly additive).
    """
    count = 0
    seen: set[int] = set()
    stack = [model]
    while stack:
        node = stack.pop()
        if node is None or id(node) in seen:
            continue
        seen.add(id(node))
        compile_flat = getattr(node, "compile_flat", None)
        if callable(compile_flat):
            if compile_flat() is not None:
                count += 1
            continue
        for attr in ("classifier_", "model", "_model"):
            stack.append(getattr(node, attr, None))
    return count
