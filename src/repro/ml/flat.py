"""Flat-array vectorized ensemble inference engine.

Any fitted tree ensemble — a :class:`~repro.ml.forest.RandomForestClassifier`,
the XGBoost/LightGBM-style boosted trees in :mod:`repro.ml.gbdt`, or a single
:class:`~repro.ml.tree.DecisionTreeClassifier` — compiles into one set of
contiguous stacked node arrays (``children_left`` / ``children_right`` /
``feature`` / ``threshold`` / ``value`` plus per-tree root offsets). Inference
then runs as **level-synchronous descent**: one :func:`np.where` step advances
*every* (sample, tree) pair a level at once, so a batched ``predict_proba``
costs O(max_depth) numpy operations instead of O(rows × trees × depth) Python
loop iterations.

Numerical contract: the engine is **bit-identical** to the per-row reference
traversal. Descent uses the same ``x[feature] <= threshold`` comparison on the
same float64 values, and per-tree leaf values are accumulated *sequentially in
tree order* (one vectorized add per tree, not a pairwise ``np.sum`` over the
tree axis), matching the reference ``for tree in trees: total += ...`` loop
float-for-float.

Compact kernels: :meth:`FlatEnsemble.use_kernel` swaps the descent for a
restructured raw-speed variant — ``float32`` (float32 thresholds/inputs)
or ``quantized`` (uint16 thresholds and inputs under a per-feature affine
scale). Narrow dtypes alone buy little (the gathers are bound by numpy's
indexing machinery, not bandwidth), so the compact kernels also sort
trees by depth and shrink the per-level working suffix as shallow trees
finish, address X through one flat linear index, and run every gather as
``np.take(..., mode="clip")`` into preallocated buffers — together worth
~2× on realistic forests. Only the *routing* changes width: leaf values
are always gathered and accumulated in float64 in tree order, so when a
compact descent lands every sample on the same leaves, predictions stay
bit-identical. Because rounding can flip a near-threshold comparison,
installation is gated: the kernel measures ``predict_proba`` divergence
and label flips against the float64 path on a caller-supplied eval matrix
and falls back to float64 when either exceeds its bound.

TreeSHAP contract: compilation is view-preserving. :meth:`FlatEnsemble.tree_view`
returns the ``i``-th tree as an object exposing the exact per-tree attribute
names (``children_left_`` …, local node ids, ``LEAF`` sentinels,
``n_node_samples_`` when stacked) that the exact TreeSHAP implementation in
:mod:`repro.analysis.shap_values` consumes, so explanations can be computed
from either representation interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "LEAF",
    "KERNELS",
    "KernelReport",
    "FlatEnsemble",
    "level_descent",
    "max_leaf_depth",
    "reference_apply",
    "precompile",
    "compact_precompile",
]

#: Sentinel used in the flat arrays for leaves (shared with repro.ml.tree).
LEAF = -1

#: Rows per descent chunk: bounds the (rows × trees) int64 temporaries to a
#: few MB regardless of batch size.
DESCENT_CHUNK_ROWS = 8192

#: Descent kernel widths (see :meth:`FlatEnsemble.use_kernel`).
KERNELS = ("float64", "float32", "quantized")

#: Quantized kernel geometry: thresholds land in ``[0, _QUANT_BUCKETS]``,
#: inputs clip to ``_QUANT_MAX_X`` (one above the largest threshold code,
#: so "x above every split" still routes right), and parked leaves sit at
#: ``_QUANT_LEAF`` — unreachable by any clipped input, so parked pairs
#: never move.
_QUANT_BUCKETS = 65533
_QUANT_MAX_X = 65534
_QUANT_LEAF = 65535


@dataclass(frozen=True)
class KernelReport:
    """Outcome of one :meth:`FlatEnsemble.use_kernel` installation.

    ``active`` is what actually serves: the requested kernel when the
    measured deltas were within bounds, ``"float64"`` after a fallback
    (``fallback_reason`` says why). ``max_divergence`` is NaN for an
    ungated install (no eval matrix supplied).
    """

    requested: str
    active: str
    max_divergence: float
    label_flips: int
    fallback_reason: str | None = None

    @property
    def fell_back(self) -> bool:
        return self.requested != self.active


@dataclass(frozen=True)
class _CompactTable:
    """Precomputed state for one compact descent kernel.

    Trees appear sorted by their own max depth (``order`` maps sorted
    position → original tree index); ``starts[level]`` is the first
    sorted tree whose descent is still running at that level, so the
    kernel shrinks its working suffix as shallow trees finish.
    """

    left: np.ndarray
    right: np.ndarray
    feat: np.ndarray
    thr: np.ndarray
    lo: np.ndarray | None
    inv_scale: np.ndarray | None
    order: np.ndarray
    roots_sorted: np.ndarray
    starts: np.ndarray
    consecutive: bool
    depth: int


def level_descent(
    X: np.ndarray,
    children_left: np.ndarray,
    children_right: np.ndarray,
    feature: np.ndarray,
    threshold: np.ndarray,
    roots: np.ndarray,
    chunk_rows: int = DESCENT_CHUNK_ROWS,
    consecutive_children: bool | None = None,
) -> np.ndarray:
    """Vectorized root→leaf descent over every (sample, tree) pair.

    Args:
        X: ``(n_samples, n_features)`` feature matrix (float or binned
            int; must be NaN-free — every classifier validates upstream).
        children_left / children_right / feature / threshold: Stacked node
            arrays; child ids are *global* (already offset per tree) and
            ``LEAF`` marks leaves in ``feature`` and both child arrays.
        roots: ``(n_trees,)`` global root node id per tree.
        chunk_rows: Sample-chunk size bounding temporary memory.
        consecutive_children: Whether ``right == left + 1`` for every
            internal node (the CART and leaf-wise builders allocate
            children adjacently), enabling a one-gather child step.
            ``None`` detects it with one O(nodes) pass.

    Returns:
        ``(n_samples, n_trees)`` global node id of the leaf each sample
        reaches in each tree.
    """
    X = np.asarray(X)
    if consecutive_children is None:
        internal = feature != LEAF
        consecutive_children = bool(
            np.array_equal(children_right[internal], children_left[internal] + 1)
        )
    n_samples = len(X)
    if n_samples <= chunk_rows:
        return _descend(
            X, children_left, children_right, feature, threshold, roots,
            consecutive_children,
        )
    out = np.empty((n_samples, len(roots)), dtype=np.int64)
    for start in range(0, n_samples, chunk_rows):
        stop = start + chunk_rows
        out[start:stop] = _descend(
            X[start:stop], children_left, children_right, feature, threshold,
            roots, consecutive_children,
        )
    return out


def _descend(X, children_left, children_right, feature, threshold, roots,
             consecutive_children):
    n_samples = len(X)
    n_trees = len(roots)
    leaves = np.repeat(roots[None, :], n_samples, axis=0).ravel()
    # Active-set descent: each level only touches (sample, tree) pairs
    # still at internal nodes, so total work is the sum of root→leaf path
    # lengths rather than n_samples × n_trees × max_depth. Pairs scatter
    # into the output exactly once, when they settle on a leaf; the split
    # feature of the next level is carried over from the settledness probe
    # so each level costs one gather into X and one into each node array.
    index = np.nonzero(feature[leaves] != LEAF)[0]
    samples = np.repeat(np.arange(n_samples), n_trees)[index]
    current = leaves[index]
    split_feature = feature[current]
    while index.size:
        if consecutive_children:
            # right child = left child + 1, and x > t ⟺ ¬(x ≤ t) on the
            # NaN-free inputs the classifiers validate — bit-identical to
            # the reference ``<=`` branch at one gather instead of two.
            go_right = X[samples, split_feature] > threshold[current]
            advanced = children_left[current] + go_right
        else:
            go_left = X[samples, split_feature] <= threshold[current]
            advanced = np.where(
                go_left, children_left[current], children_right[current]
            )
        next_feature = feature[advanced]
        settled = next_feature == LEAF
        if settled.any():
            leaves[index[settled]] = advanced[settled]
            alive = ~settled
            index = index[alive]
            samples = samples[alive]
            current = advanced[alive]
            split_feature = next_feature[alive]
        else:
            current = advanced
            split_feature = next_feature
    return leaves.reshape(n_samples, n_trees)


def max_leaf_depth(
    children_left: np.ndarray,
    children_right: np.ndarray,
    feature: np.ndarray,
    roots: np.ndarray,
) -> int:
    """Longest root→leaf path (in edges), by vectorized frontier sweep.

    This is the iteration bound for parked descent and the
    ``max_depth_reached`` of a single tree (pass a one-element root).
    """
    internal = feature != LEAF
    depth = 0
    frontier = roots[internal[roots]]
    while frontier.size:
        depth += 1
        children = np.concatenate(
            (children_left[frontier], children_right[frontier])
        )
        frontier = children[internal[children]]
    return depth


def reference_apply(
    X: np.ndarray,
    children_left: np.ndarray,
    children_right: np.ndarray,
    feature: np.ndarray,
    threshold: np.ndarray,
    root: int = 0,
) -> np.ndarray:
    """The seed per-row, per-node Python traversal (one tree).

    Kept as the ground-truth reference the equivalence tests and
    ``benchmarks/bench_predict_throughput.py`` measure the engine against.
    """
    leaves = np.empty(len(X), dtype=np.int64)
    for row in range(len(X)):
        node = root
        while children_left[node] != LEAF:
            if X[row, feature[node]] <= threshold[node]:
                node = children_left[node]
            else:
                node = children_right[node]
        leaves[row] = node
    return leaves


class _TreeView:
    """One tree of a :class:`FlatEnsemble`, in per-tree attribute naming.

    Exposes ``children_left_`` / ``children_right_`` / ``feature_`` /
    ``threshold_`` / ``value_`` (and ``n_node_samples_`` / ``n_features_``
    when available) with *local* node ids — the exact contract
    :func:`repro.analysis.shap_values.tree_shap_values` traverses.
    """

    def __init__(self, flat: "FlatEnsemble", index: int):
        start, stop = flat.offsets[index], flat.offsets[index + 1]
        shift = np.int64(start)
        left = flat.children_left[start:stop].copy()
        right = flat.children_right[start:stop].copy()
        left[left != LEAF] -= shift
        right[right != LEAF] -= shift
        self.children_left_ = left
        self.children_right_ = right
        self.feature_ = flat.feature[start:stop]
        self.threshold_ = flat.threshold[start:stop]
        self.value_ = flat.value[start:stop]
        if flat.n_node_samples is not None:
            self.n_node_samples_ = flat.n_node_samples[start:stop]
        self.n_features_ = flat.n_features


@dataclass
class FlatEnsemble:
    """A fitted ensemble compiled to contiguous stacked node arrays.

    Attributes:
        children_left / children_right: ``(total_nodes,)`` global child ids
            (``LEAF`` for leaves).
        feature: ``(total_nodes,)`` split feature (``LEAF`` for leaves).
        threshold: ``(total_nodes,)`` split threshold (bin id for binned
            trees, stored as float64 — exact for the small integer bins).
        value: ``(total_nodes, n_outputs)`` leaf/node payload — class
            fractions for CART trees, a single leaf-weight column for
            boosted regression trees.
        offsets: ``(n_trees + 1,)`` prefix of per-tree node counts; tree
            ``i`` occupies rows ``offsets[i]:offsets[i+1]`` and its root is
            ``offsets[i]``.
        n_features: Feature-space width the ensemble was fitted on.
        n_node_samples: Optional ``(total_nodes,)`` per-node training-sample
            counts (stacked for CART trees; TreeSHAP weighs paths with it).
    """

    children_left: np.ndarray
    children_right: np.ndarray
    feature: np.ndarray
    threshold: np.ndarray
    value: np.ndarray
    offsets: np.ndarray
    n_features: int
    n_node_samples: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Compilation
    # ------------------------------------------------------------------ #

    @classmethod
    def from_arrays(
        cls,
        per_tree: list[tuple],
        n_features: int,
        n_node_samples: list[np.ndarray] | None = None,
    ) -> "FlatEnsemble":
        """Stack per-tree ``(left, right, feature, threshold, value)`` tuples.

        Child ids in the inputs are tree-local; stacking offsets every
        non-``LEAF`` id by the tree's base so descent runs on global ids.
        """
        counts = [len(arrays[0]) for arrays in per_tree]
        offsets = np.zeros(len(per_tree) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        lefts, rights, features, thresholds, values = [], [], [], [], []
        for base, (left, right, feature, threshold, value) in zip(
            offsets[:-1], per_tree
        ):
            left = np.asarray(left, dtype=np.int64).copy()
            right = np.asarray(right, dtype=np.int64).copy()
            left[left != LEAF] += base
            right[right != LEAF] += base
            lefts.append(left)
            rights.append(right)
            features.append(np.asarray(feature, dtype=np.int64))
            thresholds.append(np.asarray(threshold, dtype=np.float64))
            value = np.asarray(value, dtype=np.float64)
            if value.ndim == 1:
                value = value[:, None]
            values.append(value)
        return cls(
            children_left=np.concatenate(lefts),
            children_right=np.concatenate(rights),
            feature=np.concatenate(features),
            threshold=np.concatenate(thresholds),
            value=np.concatenate(values),
            offsets=offsets,
            n_features=n_features,
            n_node_samples=(
                np.concatenate(
                    [np.asarray(s, dtype=np.int64) for s in n_node_samples]
                )
                if n_node_samples is not None
                else None
            ),
        )

    @classmethod
    def from_cart_trees(cls, trees: list) -> "FlatEnsemble":
        """Compile fitted :class:`~repro.ml.tree.DecisionTreeClassifier` trees."""
        return cls.from_arrays(
            [
                (
                    tree.children_left_,
                    tree.children_right_,
                    tree.feature_,
                    tree.threshold_,
                    tree.value_,
                )
                for tree in trees
            ],
            n_features=trees[0].n_features_,
            n_node_samples=[tree.n_node_samples_ for tree in trees],
        )

    @classmethod
    def from_regression_trees(
        cls, trees: list, n_features: int, threshold_attr: str = "thresholds"
    ) -> "FlatEnsemble":
        """Compile the gbdt module's regression trees (scalar leaf weights).

        ``threshold_attr`` selects raw thresholds (:class:`_ExactTree`) or
        split-bin ids (:class:`_LeafwiseTree`, ``"bins"``).
        """
        return cls.from_arrays(
            [
                (
                    tree.lefts,
                    tree.rights,
                    tree.features,
                    getattr(tree, threshold_attr),
                    tree.weights,
                )
                for tree in trees
            ],
            n_features=n_features,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def n_trees(self) -> int:
        return len(self.offsets) - 1

    @property
    def node_count(self) -> int:
        return len(self.children_left)

    @property
    def roots(self) -> np.ndarray:
        return self.offsets[:-1]

    def tree_view(self, index: int) -> _TreeView:
        """Tree ``index`` under the per-tree (TreeSHAP) attribute contract."""
        return _TreeView(self, index)

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #

    def _descent_tables(self) -> tuple:
        """Leaf-parked node tables + depth bound (built once, cached).

        Leaves are rewritten to self-loop — ``left = right = self``,
        ``threshold = +inf`` (every finite x goes left), ``feature = 0`` —
        so the descent loop needs no per-level settledness bookkeeping at
        all: it runs exactly ``max_depth`` data-independent iterations and
        settled pairs park in place. Bit-identity is unaffected; internal
        nodes keep their original comparisons.
        """
        cached = self.__dict__.get("_tables")
        if cached is not None:
            return cached
        leaf = self.feature == LEAF
        node_ids = np.arange(self.node_count, dtype=np.int64)
        left = np.where(leaf, node_ids, self.children_left)
        right = np.where(leaf, node_ids, self.children_right)
        feat = np.where(leaf, 0, self.feature)
        thr = np.where(leaf, np.inf, self.threshold)
        internal = ~leaf
        consecutive = bool(
            np.array_equal(
                self.children_right[internal], self.children_left[internal] + 1
            )
        )
        depth = max_leaf_depth(
            self.children_left, self.children_right, self.feature, self.roots
        )
        self.__dict__["_tables"] = (left, right, feat, thr, consecutive, depth)
        return self.__dict__["_tables"]

    # ------------------------------------------------------------------ #
    # Compact kernels
    # ------------------------------------------------------------------ #

    @property
    def kernel(self) -> str:
        """The descent kernel serving :meth:`apply` (default float64)."""
        return self.__dict__.get("_kernel", "float64")

    @property
    def kernel_report(self) -> KernelReport | None:
        """Report of the last :meth:`use_kernel` call, if any."""
        return self.__dict__.get("_kernel_report")

    def _compact_tables(self, kernel: str) -> "_CompactTable":
        """Depth-sorted leaf-parked tables (built once per kernel).

        Compact descent owes its speedup to three structural changes, not
        just narrow dtypes (narrowing alone is a wash — gathers at this
        scale are bound by indexing machinery, not bandwidth):

        * trees are sorted by their own max depth and the per-level loop
          only touches the still-descending suffix, so total gather work
          is Σ depth_t instead of n_trees × max(depth_t);
        * every gather is ``np.take(..., mode="clip")`` into a
          preallocated buffer — ``take`` with bounds-checking disabled is
          ~2× faster than fancy indexing and ``out=`` avoids re-faulting
          fresh pages each level;
        * X is addressed through one flat linear index
          (``row * n_features + feat``), replacing the slow 2-D
          fancy-index path.

        Node ids stay int64: numpy converts non-``intp`` index arrays on
        every gather, which costs more than the halved traffic saves.
        """
        key = f"_tables_{kernel}"
        cached = self.__dict__.get(key)
        if cached is not None:
            return cached
        left, right, feat64, thr, consecutive, depth = (
            self._descent_tables()
        )
        tree_depths = np.array([
            max_leaf_depth(
                self.children_left, self.children_right, self.feature,
                self.offsets[index:index + 1],
            )
            for index in range(self.n_trees)
        ], dtype=np.int64)
        order = np.argsort(tree_depths, kind="stable")
        # starts[level] = first sorted tree still descending at `level`.
        starts = np.searchsorted(
            tree_depths[order], np.arange(1, depth + 1), side="left"
        )
        if kernel == "float32":
            # +inf on parked leaves survives the cast, so parking still
            # holds; near-threshold rounding is what the gate measures.
            thr_c: np.ndarray = thr.astype(np.float32)
            lo = inv_scale = None
        else:
            thr_c, lo, inv_scale = self._quantized_thresholds(feat64, thr)
        table = _CompactTable(
            left=left,
            right=right,
            feat=feat64,
            thr=thr_c,
            lo=lo,
            inv_scale=inv_scale,
            order=order,
            roots_sorted=self.roots[order],
            starts=starts,
            consecutive=consecutive,
            depth=depth,
        )
        self.__dict__[key] = table
        return table

    def _quantized_thresholds(self, feat64, thr):
        """Per-feature affine uint16 codes for every node threshold.

        Feature ``f``'s splits span ``[lo_f, hi_f]``; codes are
        ``floor((t - lo_f) / scale_f)`` with ``scale_f`` sized so the
        span covers ``_QUANT_BUCKETS`` buckets. An input quantized the
        same way preserves ``x > t`` exactly unless x and t share a
        bucket — the sub-bucket resolution the accuracy gate prices.
        """
        leaf = self.feature == LEAF
        lo = np.full(self.n_features, np.inf)
        hi = np.full(self.n_features, -np.inf)
        internal_feat = self.feature[~leaf]
        internal_thr = self.threshold[~leaf]
        np.minimum.at(lo, internal_feat, internal_thr)
        np.maximum.at(hi, internal_feat, internal_thr)
        unsplit = ~np.isfinite(lo)
        lo[unsplit] = 0.0
        hi[unsplit] = 1.0
        span = hi - lo
        span[span == 0.0] = 1.0
        inv_scale = _QUANT_BUCKETS / span
        codes = np.floor((thr - lo[feat64]) * inv_scale[feat64])
        codes = np.clip(codes, 0, _QUANT_MAX_X)
        qthr = np.where(leaf, _QUANT_LEAF, codes).astype(np.uint16)
        return qthr, lo, inv_scale

    def _compact_input(self, X, kernel: str, lo, inv_scale) -> np.ndarray:
        X = np.asarray(X)
        if kernel == "float32":
            return X.astype(np.float32, copy=False)
        quantized = np.floor((X - lo) * inv_scale)
        return np.clip(quantized, 0, _QUANT_MAX_X).astype(np.uint16)

    def use_kernel(
        self,
        kernel: str,
        X_eval: np.ndarray | None = None,
        *,
        max_divergence: float = 1e-6,
        max_label_flips: int = 0,
        threshold: float = 0.5,
    ) -> KernelReport:
        """Install a descent kernel, gated by measured accuracy delta.

        With ``X_eval``, the compact kernel's ``predict_proba_mean`` is
        compared against the float64 path: installation proceeds only
        when the max absolute divergence and the number of thresholded
        label flips stay within bounds, otherwise the ensemble keeps
        (or reverts to) float64 and the report says why. Without
        ``X_eval`` the kernel installs ungated — an explicit caller
        choice, recorded as NaN divergence.
        """
        if kernel not in KERNELS:
            raise ValueError(
                f"unknown descent kernel {kernel!r}; "
                f"choose one of {KERNELS}"
            )
        if kernel == "float64":
            report = KernelReport("float64", "float64", 0.0, 0)
        elif X_eval is None:
            self._compact_tables(kernel)
            report = KernelReport(kernel, kernel, float("nan"), 0)
        else:
            reference = self._proba_with("float64", X_eval)
            compact = self._proba_with(kernel, X_eval)
            divergence = float(np.max(np.abs(reference - compact)))
            flips = int(np.count_nonzero(
                (reference[:, -1] >= threshold)
                != (compact[:, -1] >= threshold)
            ))
            if divergence <= max_divergence and flips <= max_label_flips:
                report = KernelReport(kernel, kernel, divergence, flips)
            else:
                report = KernelReport(
                    kernel, "float64", divergence, flips,
                    fallback_reason=(
                        f"measured divergence {divergence:.3g} "
                        f"(bound {max_divergence:.3g}) with {flips} label "
                        f"flip(s) (bound {max_label_flips})"
                    ),
                )
        self.__dict__["_kernel"] = report.active
        self.__dict__["_kernel_report"] = report
        return report

    def _proba_with(self, kernel: str, X) -> np.ndarray:
        previous = self.kernel
        self.__dict__["_kernel"] = kernel
        try:
            return self.predict_proba_mean(X)
        finally:
            self.__dict__["_kernel"] = previous

    def apply(
        self,
        X,
        chunk_rows: int = DESCENT_CHUNK_ROWS,
        kernel: str | None = None,
    ) -> np.ndarray:
        """``(n_samples, n_trees)`` global leaf ids (level-synchronous).

        Runs the leaf-parked full-set descent: ``max_depth`` branch-free
        numpy iterations over every (sample, tree) pair, chunked over
        samples to bound temporaries. ``kernel`` overrides the installed
        descent width for this call.
        """
        kernel = kernel or self.kernel
        if kernel == "float64":
            left, right, feat, thr, consecutive, depth = (
                self._descent_tables()
            )
            roots = self.roots
            X = np.asarray(X)
            descend = lambda chunk: self._parked_descent(  # noqa: E731
                chunk, left, right, feat, thr, roots, consecutive, depth
            )
        else:
            table = self._compact_tables(kernel)
            X = self._compact_input(X, kernel, table.lo, table.inv_scale)
            descend = lambda chunk: self._compact_descent(  # noqa: E731
                chunk, table
            )
        n_samples = len(X)
        if n_samples <= chunk_rows:
            return descend(X)
        out = np.empty((n_samples, self.n_trees), dtype=np.int64)
        for start in range(0, n_samples, chunk_rows):
            stop = start + chunk_rows
            out[start:stop] = descend(X[start:stop])
        return out

    def _parked_descent(self, X, left, right, feat, thr, roots, consecutive,
                        depth):
        nodes = np.repeat(roots[None, :], len(X), axis=0)
        rows = np.arange(len(X))[:, None]
        for __ in range(depth):
            go_right = X[rows, feat[nodes]] > thr[nodes]
            if consecutive:
                # right = left + 1 on internal nodes; parked leaves have
                # threshold +inf so go_right is always False there.
                nodes = left[nodes] + go_right
            else:
                nodes = np.where(go_right, right[nodes], left[nodes])
        return nodes

    def _compact_descent(self, X, table: "_CompactTable") -> np.ndarray:
        # Transposed working set: nodes is (n_trees, n_samples) with trees
        # sorted by depth, so the still-descending suffix nodes[s:] stays
        # C-contiguous as shallow trees park out of the loop. All gathers
        # are take/clip into preallocated buffers (indices are in range by
        # construction; clip just disarms the bounds-check path).
        n_samples = len(X)
        n_trees = self.n_trees
        x_flat = np.ascontiguousarray(X).reshape(-1)
        nodes = np.repeat(table.roots_sorted[:, None], n_samples, axis=1)
        row_base = np.arange(n_samples, dtype=np.int64) * self.n_features
        fv = np.empty((n_trees, n_samples), dtype=np.int64)
        xv = np.empty((n_trees, n_samples), dtype=x_flat.dtype)
        tv = np.empty((n_trees, n_samples), dtype=table.thr.dtype)
        gr = np.empty((n_trees, n_samples), dtype=bool)
        lv = np.empty((n_trees, n_samples), dtype=np.int64)
        for level in range(table.depth):
            s = table.starts[level]
            nd = nodes[s:]
            f, x, t, g, l = fv[s:], xv[s:], tv[s:], gr[s:], lv[s:]
            np.take(table.feat, nd, out=f, mode="clip")
            np.take(table.thr, nd, out=t, mode="clip")
            np.add(f, row_base, out=f)
            np.take(x_flat, f, out=x, mode="clip")
            # Parked leaves never fire: float32 keeps the +inf threshold,
            # quantized parks at the reserved top code no input reaches.
            np.greater(x, t, out=g)
            np.take(table.left, nd, out=l, mode="clip")
            if table.consecutive:
                np.add(l, g, out=nd)
            else:
                rv = np.take(table.right, nd, mode="clip")
                nd[...] = np.where(g, rv, l)
        leaves = np.empty((n_samples, n_trees), dtype=np.int64)
        leaves[:, table.order] = nodes.T
        return leaves

    def accumulate_values(self, X) -> np.ndarray:
        """Sum of per-tree leaf ``value`` rows, ``(n_samples, n_outputs)``.

        Trees are accumulated sequentially in tree order so the result is
        bit-identical to the reference per-tree ``+=`` loop.
        """
        leaves = self.apply(X)
        total = np.zeros((len(leaves), self.value.shape[1]))
        for tree_index in range(self.n_trees):
            total += self.value[leaves[:, tree_index]]
        return total

    def predict_proba_mean(self, X) -> np.ndarray:
        """Forest-style probability: mean of per-tree class fractions."""
        return self.accumulate_values(X) / self.n_trees

    def decision_sum(self, X, learning_rate: float, base_score: float) -> np.ndarray:
        """Boosting-style raw score: ``base + lr * Σ_t weight_t`` per sample.

        Per-tree contributions are added in boosting order (bit-identical to
        the reference sequential loop, which scales *each* tree by the
        learning rate before adding).
        """
        leaves = self.apply(X)
        raw = np.full(len(leaves), base_score)
        for tree_index in range(self.n_trees):
            raw += learning_rate * self.value[leaves[:, tree_index], 0]
        return raw


def precompile(model) -> int:
    """Force flat compilation of every ensemble reachable from ``model``.

    Walks detector wrappers (``classifier_`` on HSC detectors, ``model`` /
    ``_model`` on services) and calls ``compile_flat()`` wherever exposed, so
    serve/stream cold starts and evaluation folds pay the (cheap, one-off)
    array stacking at fit time rather than inside the first scored batch.

    Returns:
        Number of compiled ensembles reached (0 for models with no flat
        representation — compilation is strictly additive).
    """
    count = 0
    seen: set[int] = set()
    stack = [model]
    while stack:
        node = stack.pop()
        if node is None or id(node) in seen:
            continue
        seen.add(id(node))
        compile_flat = getattr(node, "compile_flat", None)
        if callable(compile_flat):
            if compile_flat() is not None:
                count += 1
            continue
        for attr in ("classifier_", "model", "_model"):
            stack.append(getattr(node, attr, None))
    return count


def compact_precompile(
    model,
    kernel: str,
    X_eval: np.ndarray | None = None,
    *,
    max_divergence: float = 1e-6,
    max_label_flips: int = 0,
    threshold: float = 0.5,
) -> list[KernelReport]:
    """Install a compact kernel on every flat ensemble under ``model``.

    Walks the same wrapper attributes as :func:`precompile` and calls
    :meth:`FlatEnsemble.use_kernel` on each compiled ensemble. ``X_eval``
    must already be in the *classifier's* feature space (run the
    detector's extractor over an eval batch first); each ensemble gates
    independently, so a mixed stack can end up part-compact,
    part-float64. Returns one report per ensemble reached.
    """
    reports: list[KernelReport] = []
    seen: set[int] = set()
    stack = [model]
    while stack:
        node = stack.pop()
        if node is None or id(node) in seen:
            continue
        seen.add(id(node))
        compile_flat = getattr(node, "compile_flat", None)
        if callable(compile_flat):
            flat = compile_flat()
            if flat is not None:
                reports.append(flat.use_kernel(
                    kernel,
                    X_eval,
                    max_divergence=max_divergence,
                    max_label_flips=max_label_flips,
                    threshold=threshold,
                ))
            continue
        for attr in ("classifier_", "model", "_model"):
            stack.append(getattr(node, attr, None))
    return reports
