"""k-nearest neighbours (brute-force Euclidean, chunked + vectorized)."""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier, check_array, check_X_y

__all__ = ["KNeighborsClassifier"]


class KNeighborsClassifier(Classifier):
    """Majority vote over the k nearest training samples.

    The whole query batch is scored with broadcast linear algebra: one
    (chunk × train) squared-distance matrix via the expansion
    ``||a-b||² = a² - 2ab + b²``, ``np.argpartition`` for the neighbour
    sets, and a single weighted-vote reduction — no per-row Python loop.
    Queries are processed in row chunks so the distance matrix stays
    bounded at ``chunk_size × n_train`` floats regardless of batch size.

    Args:
        n_neighbors: Vote size; clamped to the training-set size at fit.
        weights: "uniform" or "distance" (inverse-distance weighting).
        chunk_size: Query rows per distance-matrix block.
    """

    def __init__(
        self,
        n_neighbors: int = 5,
        weights: str = "uniform",
        chunk_size: int = 2048,
    ):
        if weights not in ("uniform", "distance"):
            raise ValueError(f"unknown weighting {weights!r}")
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.n_neighbors = n_neighbors
        self.weights = weights
        self.chunk_size = chunk_size

    def fit(self, X, y) -> "KNeighborsClassifier":
        self.X_, self.y_ = check_X_y(X, y)
        return self

    def state_dict(self) -> dict:
        if not hasattr(self, "X_"):
            raise RuntimeError("classifier is not fitted; call fit() first")
        return {"X": self.X_, "y": self.y_}

    def load_state(self, state: dict) -> "KNeighborsClassifier":
        self.X_ = np.asarray(state["X"], dtype=np.float64)
        self.y_ = np.asarray(state["y"], dtype=np.int64)
        return self

    def predict_proba(self, X) -> np.ndarray:
        if not hasattr(self, "X_"):
            raise RuntimeError("classifier is not fitted; call fit() first")
        X = check_array(X)
        k = min(self.n_neighbors, len(self.X_))
        train_norms = np.sum(self.X_**2, axis=1)
        probabilities = np.empty((len(X), 2))
        for start in range(0, len(X), self.chunk_size):
            chunk = X[start : start + self.chunk_size]
            squared = (
                np.sum(chunk**2, axis=1, keepdims=True)
                - 2.0 * chunk @ self.X_.T
                + train_norms
            )
            squared = np.maximum(squared, 0.0)
            neighbors = np.argpartition(squared, k - 1, axis=1)[:, :k]
            votes = self.y_[neighbors]
            if self.weights == "distance":
                distances = np.sqrt(
                    np.take_along_axis(squared, neighbors, axis=1)
                )
                vote_weights = 1.0 / (distances + 1e-9)
            else:
                vote_weights = np.ones_like(votes, dtype=np.float64)
            positive = (vote_weights * votes).sum(axis=1)
            total = vote_weights.sum(axis=1)
            rate = positive / total
            probabilities[start : start + self.chunk_size] = np.column_stack(
                [1 - rate, rate]
            )
        return probabilities
