"""k-nearest neighbours (brute-force Euclidean)."""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier, check_array, check_X_y

__all__ = ["KNeighborsClassifier"]


class KNeighborsClassifier(Classifier):
    """Majority vote over the k nearest training samples.

    Args:
        n_neighbors: Vote size; clamped to the training-set size at fit.
        weights: "uniform" or "distance" (inverse-distance weighting).
    """

    def __init__(self, n_neighbors: int = 5, weights: str = "uniform"):
        if weights not in ("uniform", "distance"):
            raise ValueError(f"unknown weighting {weights!r}")
        self.n_neighbors = n_neighbors
        self.weights = weights

    def fit(self, X, y) -> "KNeighborsClassifier":
        self.X_, self.y_ = check_X_y(X, y)
        return self

    def predict_proba(self, X) -> np.ndarray:
        X = check_array(X)
        if not hasattr(self, "X_"):
            raise RuntimeError("classifier is not fitted; call fit() first")
        k = min(self.n_neighbors, len(self.X_))
        # Pairwise squared distances via the expansion ||a-b||² = a² - 2ab + b².
        squared = (
            np.sum(X**2, axis=1, keepdims=True)
            - 2.0 * X @ self.X_.T
            + np.sum(self.X_**2, axis=1)
        )
        squared = np.maximum(squared, 0.0)
        neighbors = np.argpartition(squared, k - 1, axis=1)[:, :k]
        probabilities = np.empty((len(X), 2))
        for row in range(len(X)):
            votes = self.y_[neighbors[row]]
            if self.weights == "distance":
                distances = np.sqrt(squared[row, neighbors[row]])
                vote_weights = 1.0 / (distances + 1e-9)
            else:
                vote_weights = np.ones(k)
            positive = vote_weights[votes == 1].sum()
            total = vote_weights.sum()
            probabilities[row] = [1 - positive / total, positive / total]
        return probabilities
