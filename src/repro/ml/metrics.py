"""Binary classification metrics (Accuracy, F1, Precision, Recall).

These four metrics are the paper's evaluation currency (Table II and every
figure); phishing is the positive class (label 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "confusion_matrix",
    "classification_metrics",
    "Metrics",
]


def _validate(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("empty label arrays")
    return y_true, y_pred


def confusion_matrix(y_true, y_pred) -> np.ndarray:
    """2×2 matrix ``[[TN, FP], [FN, TP]]``."""
    y_true, y_pred = _validate(y_true, y_pred)
    matrix = np.zeros((2, 2), dtype=np.int64)
    for true_label in (0, 1):
        for predicted in (0, 1):
            matrix[true_label, predicted] = int(
                np.sum((y_true == true_label) & (y_pred == predicted))
            )
    return matrix


def accuracy_score(y_true, y_pred) -> float:
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def precision_score(y_true, y_pred, positive: int = 1) -> float:
    """TP / (TP + FP); 0 when nothing is predicted positive."""
    y_true, y_pred = _validate(y_true, y_pred)
    predicted_positive = y_pred == positive
    if not predicted_positive.any():
        return 0.0
    return float(np.mean(y_true[predicted_positive] == positive))


def recall_score(y_true, y_pred, positive: int = 1) -> float:
    """TP / (TP + FN); 0 when the class is absent from y_true."""
    y_true, y_pred = _validate(y_true, y_pred)
    actual_positive = y_true == positive
    if not actual_positive.any():
        return 0.0
    return float(np.mean(y_pred[actual_positive] == positive))


def f1_score(y_true, y_pred, positive: int = 1) -> float:
    """Harmonic mean of precision and recall."""
    precision = precision_score(y_true, y_pred, positive)
    recall = recall_score(y_true, y_pred, positive)
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


@dataclass(frozen=True)
class Metrics:
    """The paper's four headline metrics for one evaluation."""

    accuracy: float
    f1: float
    precision: float
    recall: float

    def as_dict(self) -> dict[str, float]:
        return {
            "accuracy": self.accuracy,
            "f1": self.f1,
            "precision": self.precision,
            "recall": self.recall,
        }

    def __str__(self) -> str:
        return (
            f"acc={self.accuracy:.4f} f1={self.f1:.4f} "
            f"prec={self.precision:.4f} rec={self.recall:.4f}"
        )


def classification_metrics(y_true, y_pred, positive: int = 1) -> Metrics:
    """Compute all four paper metrics at once."""
    return Metrics(
        accuracy=accuracy_score(y_true, y_pred),
        f1=f1_score(y_true, y_pred, positive),
        precision=precision_score(y_true, y_pred, positive),
        recall=recall_score(y_true, y_pred, positive),
    )
