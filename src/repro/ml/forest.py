"""Random Forest: bagged CART trees with per-split feature subsampling.

The paper's best model overall (§IV-D): 93.63% accuracy on the phishing
task at paper scale.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier, check_array, check_X_y
from repro.ml.tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier(Classifier):
    """Ensemble of CART trees on bootstrap samples.

    Args:
        n_estimators: Number of trees.
        max_depth: Per-tree depth bound.
        min_samples_leaf: Per-tree leaf size bound.
        max_features: Features per split (default "sqrt", as in sklearn).
        bootstrap: Sample rows with replacement per tree.
        random_state: Master seed (trees receive derived seeds).
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        bootstrap: bool = True,
        random_state: int | None = 0,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state

    def fit(self, X, y) -> "RandomForestClassifier":
        X, y = check_X_y(X, y)
        rng = np.random.default_rng(self.random_state)
        n = len(y)
        self.trees_: list[DecisionTreeClassifier] = []
        for __ in range(self.n_estimators):
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            if self.bootstrap:
                rows = rng.integers(0, n, size=n)
            else:
                rows = np.arange(n)
            tree.fit(X, y, sample_indices=rows)
            self.trees_.append(tree)
        return self

    def predict_proba(self, X) -> np.ndarray:
        X = check_array(X)
        if not getattr(self, "trees_", None):
            raise RuntimeError("forest is not fitted; call fit() first")
        probabilities = np.zeros((len(X), 2))
        for tree in self.trees_:
            probabilities += tree.predict_proba(X)
        return probabilities / len(self.trees_)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Mean impurity-decrease importance across trees."""
        if not getattr(self, "trees_", None):
            raise RuntimeError("forest is not fitted; call fit() first")
        stacked = np.stack([tree.feature_importances_ for tree in self.trees_])
        return stacked.mean(axis=0)
