"""Random Forest: bagged CART trees with per-split feature subsampling.

The paper's best model overall (§IV-D): 93.63% accuracy on the phishing
task at paper scale.

Training can fan the trees out across a process pool (``n_jobs``). The
per-tree randomness — derived seed and bootstrap rows — is drawn from the
master generator *up front, in the serial order*, then shipped to the
workers, so a parallel fit reproduces the serial fit bit-for-bit under the
same ``random_state``. Inference goes through the flat engine
(:mod:`repro.ml.flat`): the fitted trees compile once into stacked node
arrays and ``predict_proba`` accumulates every tree's leaf values with
O(depth) vectorized descent steps instead of 100 per-tree Python
traversals.
"""

from __future__ import annotations

import os

import numpy as np

from collections.abc import Sequence

from repro.ml.base import Classifier, check_array, check_X_y
from repro.ml.flat import FlatEnsemble
from repro.ml.tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]

# Per-process training context for pool workers: the feature matrix and
# labels are shipped once per worker (pool initializer), not once per tree.
_WORKER_CONTEXT: dict = {}


def _init_fit_worker(X, y, tree_params):
    _WORKER_CONTEXT["X"] = X
    _WORKER_CONTEXT["y"] = y
    _WORKER_CONTEXT["tree_params"] = tree_params


def _fit_one_tree(task):
    seed, rows = task
    tree = DecisionTreeClassifier(
        random_state=seed, **_WORKER_CONTEXT["tree_params"]
    )
    return tree.fit(
        _WORKER_CONTEXT["X"], _WORKER_CONTEXT["y"], sample_indices=rows
    )


class _StackedTrees(Sequence):
    """``trees_`` for a loaded forest: per-tree views built on demand.

    A cold-started forest serves straight off the stacked
    :class:`FlatEnsemble` arrays; the per-tree
    :class:`DecisionTreeClassifier` objects exist only for analysis
    paths (``feature_importances_``, TreeSHAP). Building them eagerly
    on every load copies — and, under ``mmap_mode="r"``, faults in —
    node data serving never touches, so each tree materializes on
    first access and is cached.
    """

    def __init__(self, flat: FlatEnsemble, tree_params: dict):
        self._flat = flat
        self._params = tree_params
        self._built: list[DecisionTreeClassifier | None] = (
            [None] * flat.n_trees
        )

    def __len__(self) -> int:
        return len(self._built)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        tree = self._built[index]
        if tree is None:
            flat = self._flat
            view = flat.tree_view(index)
            tree = DecisionTreeClassifier(**self._params)
            tree.children_left_ = view.children_left_
            tree.children_right_ = view.children_right_
            tree.feature_ = np.asarray(view.feature_, dtype=np.int64)
            tree.threshold_ = np.asarray(view.threshold_, dtype=np.float64)
            tree.value_ = np.asarray(view.value_, dtype=np.float64)
            samples = getattr(view, "n_node_samples_", None)
            if samples is not None:
                tree.n_node_samples_ = np.asarray(samples, dtype=np.int64)
            tree.n_features_ = flat.n_features
            self._built[index] = tree
        return tree


class RandomForestClassifier(Classifier):
    """Ensemble of CART trees on bootstrap samples.

    Args:
        n_estimators: Number of trees.
        max_depth: Per-tree depth bound.
        min_samples_leaf: Per-tree leaf size bound.
        max_features: Features per split (default "sqrt", as in sklearn).
        bootstrap: Sample rows with replacement per tree.
        random_state: Master seed (trees receive derived seeds).
        n_jobs: Worker processes for :meth:`fit`. ``None``/1 trains
            serially in-process; negative counts from the CPU total as
            in sklearn (``-1`` = all CPUs, ``-2`` = all but one); 0 is
            invalid. Results are bit-identical across all settings
            (seeds/rows pre-derived).
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        bootstrap: bool = True,
        random_state: int | None = 0,
        n_jobs: int | None = None,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.n_jobs = n_jobs

    # ------------------------------------------------------------------ #

    def _tree_params(self) -> dict:
        return {
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
        }

    def _effective_jobs(self) -> int:
        if self.n_jobs is None:
            return 1
        jobs = int(self.n_jobs)
        if jobs < 0:
            # sklearn semantics: -1 = all CPUs, -2 = all but one, …
            jobs = max(1, (os.cpu_count() or 1) + 1 + jobs)
        elif jobs == 0:
            raise ValueError("n_jobs must be nonzero (use None for serial)")
        return max(1, min(jobs, self.n_estimators))

    def fit(self, X, y) -> "RandomForestClassifier":
        X, y = check_X_y(X, y)
        rng = np.random.default_rng(self.random_state)
        n = len(y)
        # Derive every tree's (seed, bootstrap rows) up front, in the
        # order the serial loop drew them — the parallel path must consume
        # the master generator identically to stay bit-reproducible.
        tasks = []
        for __ in range(self.n_estimators):
            seed = int(rng.integers(0, 2**31 - 1))
            rows = rng.integers(0, n, size=n) if self.bootstrap else np.arange(n)
            tasks.append((seed, rows))

        jobs = self._effective_jobs()
        trees = self._fit_parallel(X, y, tasks, jobs) if jobs > 1 else None
        if trees is None:
            params = self._tree_params()
            trees = [
                DecisionTreeClassifier(random_state=seed, **params).fit(
                    X, y, sample_indices=rows
                )
                for seed, rows in tasks
            ]
        self.trees_: list[DecisionTreeClassifier] = trees
        self._flat: FlatEnsemble | None = None
        return self

    def fit_more(self, X, y, n_more: int) -> "RandomForestClassifier":
        """Grow ``n_more`` trees on new data, keeping the fitted ones.

        The incremental-retrain primitive for the continuous-learning
        loop: instead of refitting all ``n_estimators`` trees from
        scratch on every drift window, the already-fitted ensemble is
        kept verbatim and only the new trees train — on the *new*
        window. Determinism: each new tree's generator is seeded with
        ``(random_state, absolute_tree_index)``, so growing 40 trees in
        one call or in two calls of 20 produces identical forests, and a
        warm-started model round-trips :meth:`state_dict` bit-for-bit.

        Raises:
            RuntimeError: If the forest is not fitted.
            ValueError: If ``n_more < 1``.
        """
        if not getattr(self, "trees_", None):
            raise RuntimeError("forest is not fitted; call fit() first")
        if n_more < 1:
            raise ValueError("n_more must be >= 1")
        X, y = check_X_y(X, y)
        # Materialize lazily-built views (a loaded forest's trees_ is a
        # _StackedTrees sequence) so the grown list is a plain list.
        existing = list(self.trees_)
        n = len(y)
        # One generator per absolute tree index, seeded (random_state,
        # index): tree 27's randomness is the same whether it grew in
        # one call of 40 or two calls of 20.
        tasks = []
        for offset in range(int(n_more)):
            index = len(existing) + offset
            seed = (
                None
                if self.random_state is None
                else (int(self.random_state), index)
            )
            rng = np.random.default_rng(seed)
            tree_seed = int(rng.integers(0, 2**31 - 1))
            rows = (
                rng.integers(0, n, size=n)
                if self.bootstrap
                else np.arange(n)
            )
            tasks.append((tree_seed, rows))

        jobs = max(1, min(self._effective_jobs(), len(tasks)))
        grown = self._fit_parallel(X, y, tasks, jobs) if jobs > 1 else None
        if grown is None:
            params = self._tree_params()
            grown = [
                DecisionTreeClassifier(random_state=s, **params).fit(
                    X, y, sample_indices=rows
                )
                for s, rows in tasks
            ]
        self.trees_ = existing + grown
        self.n_estimators = len(self.trees_)
        self._flat = None
        return self

    def _fit_parallel(self, X, y, tasks, jobs) -> list | None:
        """Train trees on a process pool; None falls back to serial.

        Only pool-infrastructure failures (no fork/spawn available, pool
        broken mid-flight) trigger the serial fallback — an exception
        raised by the tree-fitting code itself propagates unchanged.
        """
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        try:
            with ProcessPoolExecutor(
                max_workers=jobs,
                initializer=_init_fit_worker,
                initargs=(X, y, self._tree_params()),
            ) as pool:
                chunk = max(1, len(tasks) // (4 * jobs))
                return list(pool.map(_fit_one_tree, tasks, chunksize=chunk))
        except (OSError, BrokenProcessPool):
            return None

    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """Fitted state: the *stacked* flat-engine arrays, not per-tree ones.

        Persisting the :class:`~repro.ml.flat.FlatEnsemble` representation
        makes a loaded forest serve-ready immediately — ``load_state``
        installs the arrays as the compiled ensemble, so the first
        ``predict_proba`` after a cold start pays zero recompilation.
        """
        flat = self.compile_flat()
        return {
            "flat": {
                "children_left": flat.children_left,
                "children_right": flat.children_right,
                "feature": flat.feature,
                "threshold": flat.threshold,
                "value": flat.value,
                "offsets": flat.offsets,
                "n_features": int(flat.n_features),
                "n_node_samples": flat.n_node_samples,
            }
        }

    def load_state(self, state: dict) -> "RandomForestClassifier":
        arrays = state["flat"]
        flat = FlatEnsemble(
            children_left=np.asarray(arrays["children_left"], dtype=np.int64),
            children_right=np.asarray(arrays["children_right"], dtype=np.int64),
            feature=np.asarray(arrays["feature"], dtype=np.int64),
            threshold=np.asarray(arrays["threshold"], dtype=np.float64),
            value=np.asarray(arrays["value"], dtype=np.float64),
            offsets=np.asarray(arrays["offsets"], dtype=np.int64),
            n_features=int(arrays["n_features"]),
            n_node_samples=(
                np.asarray(arrays["n_node_samples"], dtype=np.int64)
                if arrays.get("n_node_samples") is not None
                else None
            ),
        )
        # Per-tree objects are rebuilt lazily as views over the stacked
        # arrays — feature_importances_ and TreeSHAP keep working — while
        # the flat ensemble itself is installed pre-compiled. Laziness
        # matters for cold starts: serving only descends the stacked
        # arrays, so a loaded (especially mmap-loaded) forest should not
        # pay per-tree copies — or page in per-tree data — it never uses.
        self.trees_ = _StackedTrees(flat, self._tree_params())
        self._flat = flat
        return self

    def compile_flat(self) -> FlatEnsemble:
        """The stacked-array representation (compiled once, cached).

        Raises:
            RuntimeError: If the forest is not fitted.
        """
        if not getattr(self, "trees_", None):
            raise RuntimeError("forest is not fitted; call fit() first")
        if getattr(self, "_flat", None) is None:
            self._flat = FlatEnsemble.from_cart_trees(self.trees_)
        return self._flat

    def predict_proba(self, X) -> np.ndarray:
        # Not-fitted must surface before any array validation/compilation.
        if not getattr(self, "trees_", None):
            raise RuntimeError("forest is not fitted; call fit() first")
        X = check_array(X)
        return self.compile_flat().predict_proba_mean(X)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Mean impurity-decrease importance across trees."""
        if not getattr(self, "trees_", None):
            raise RuntimeError("forest is not fitted; call fit() first")
        stacked = np.stack([tree.feature_importances_ for tree in self.trees_])
        return stacked.mean(axis=0)
