"""Estimator protocol: parameter introspection, cloning, validation."""

from __future__ import annotations

import inspect

import numpy as np

__all__ = [
    "Estimator",
    "Classifier",
    "clone",
    "check_X_y",
    "check_array",
    "init_param_names",
]


def init_param_names(cls) -> list[str]:
    """Constructor keyword-argument names of ``cls`` (sklearn convention).

    The single introspection behind ``get_params`` across the ml and
    models layers and constructor capture in :mod:`repro.artifacts` —
    one definition so parameter handling can never diverge between
    round-trip equality and artifact restore.
    """
    signature = inspect.signature(cls.__init__)
    return [
        name
        for name, parameter in signature.parameters.items()
        if name != "self"
        and parameter.kind
        in (parameter.POSITIONAL_OR_KEYWORD, parameter.KEYWORD_ONLY)
    ]


class Estimator:
    """Base class providing sklearn-style parameter handling.

    Subclasses must accept all hyperparameters as keyword arguments of
    ``__init__`` and store them under the same attribute names; learned
    state uses a trailing underscore (``classes_`` …) by convention.
    """

    @classmethod
    def _param_names(cls) -> list[str]:
        return init_param_names(cls)

    def get_params(self) -> dict:
        """Current hyperparameter values, keyed by name."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params) -> "Estimator":
        """Update hyperparameters; unknown names raise ``ValueError``."""
        valid = set(self._param_names())
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"{type(self).__name__} has no parameter {name!r}"
                )
            setattr(self, name, value)
        return self

    # ------------------------------------------------------------------ #
    # Persistence protocol (see repro.artifacts)
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """Fitted state as a tree of dicts/lists/arrays/scalars.

        The returned tree must round-trip through
        :mod:`repro.artifacts.format` — keys are strings, leaves are
        numpy arrays, bytes, or JSON scalars. Hyperparameters are *not*
        part of the state (they travel via :meth:`get_params`).

        Raises:
            RuntimeError: If the estimator is not fitted.
            NotImplementedError: If the estimator has no persistence.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement state_dict()"
        )

    def load_state(self, state: dict) -> "Estimator":
        """Restore fitted state produced by :meth:`state_dict` in place.

        After this, prediction methods must be bit-identical to the
        estimator the state was captured from.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement load_state()"
        )


def clone(estimator: Estimator) -> Estimator:
    """A fresh, unfitted copy with identical hyperparameters."""
    return type(estimator)(**estimator.get_params())


class Classifier(Estimator):
    """Binary classifier protocol used across PhishingHook."""

    def fit(self, X, y) -> "Classifier":  # pragma: no cover - interface
        raise NotImplementedError

    def predict_proba(self, X) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def predict(self, X) -> np.ndarray:
        """Class labels from probabilities (argmax)."""
        return np.argmax(self.predict_proba(X), axis=1)

    def score(self, X, y) -> float:
        """Plain accuracy."""
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))


def check_array(X) -> np.ndarray:
    """Coerce to a 2-D float array."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1:
        X = X.reshape(1, -1)
    if X.ndim != 2:
        raise ValueError(f"expected 2-D feature matrix, got shape {X.shape}")
    if not np.all(np.isfinite(X)):
        raise ValueError("feature matrix contains NaN or inf")
    return X


def check_X_y(X, y) -> tuple[np.ndarray, np.ndarray]:
    """Validate a training pair: 2-D X, integer {0,1} y of matching length."""
    X = check_array(X)
    y = np.asarray(y)
    if y.ndim != 1 or len(y) != len(X):
        raise ValueError(
            f"labels must be 1-D of length {len(X)}, got shape {y.shape}"
        )
    classes = np.unique(y)
    if not np.all(np.isin(classes, (0, 1))):
        raise ValueError(f"binary labels in {{0,1}} required, got {classes}")
    return X, y.astype(np.int64)
