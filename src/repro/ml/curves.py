"""Threshold-free evaluation curves: ROC, precision–recall, AUC.

The paper reports threshold-at-0.5 metrics (Table II). For the deployment
scenario it motivates — wallets warning users *before* they sign — the
operating threshold is a product decision, so this module adds the
standard threshold-free view: ROC and precision–recall curves, the areas
under them, and utilities to pick an operating point under a constraint
(e.g. "highest recall at ≥99% precision"). Phishing is the positive class
(label 1) throughout, matching :mod:`repro.ml.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "roc_curve",
    "precision_recall_curve",
    "auc",
    "roc_auc_score",
    "average_precision_score",
    "OperatingPoint",
    "operating_point_at_precision",
    "operating_point_at_fpr",
    "detection_error_tradeoff",
]


def _validate_scores(y_true, scores) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    scores = np.asarray(scores, dtype=float)
    if y_true.shape != scores.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs scores {scores.shape}"
        )
    if y_true.ndim != 1 or y_true.size == 0:
        raise ValueError("y_true must be a non-empty 1-D array")
    if not np.isin(y_true, (0, 1)).all():
        raise ValueError("y_true must contain only 0/1 labels")
    if not np.isfinite(scores).all():
        raise ValueError("scores must be finite")
    return y_true, scores


def _cumulative_counts(y_true: np.ndarray, scores: np.ndarray):
    """True/false positive counts at every distinct score threshold.

    Thresholds are returned in decreasing order; position ``i`` counts
    samples with ``score >= thresholds[i]`` predicted positive.
    """
    order = np.argsort(-scores, kind="stable")
    sorted_scores = scores[order]
    sorted_true = y_true[order]
    # Collapse runs of equal scores: only the last index of each run is a
    # realisable threshold (a classifier cannot split ties).
    distinct = np.nonzero(np.diff(sorted_scores))[0]
    cut = np.concatenate([distinct, [y_true.size - 1]])
    tps = np.cumsum(sorted_true)[cut]
    fps = 1 + cut - tps
    return sorted_scores[cut], tps.astype(float), fps.astype(float)


def roc_curve(y_true, scores) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """False-positive rate, true-positive rate and decreasing thresholds.

    The curve starts at (0, 0) — nothing flagged — and ends at (1, 1).
    Requires both classes to be present.

    Returns:
        ``(fpr, tpr, thresholds)``; ``thresholds[0]`` is ``+inf`` for the
        (0, 0) point, mirroring the scikit-learn convention.
    """
    y_true, scores = _validate_scores(y_true, scores)
    n_positive = int(y_true.sum())
    n_negative = y_true.size - n_positive
    if n_positive == 0 or n_negative == 0:
        raise ValueError("roc_curve needs both classes present in y_true")
    thresholds, tps, fps = _cumulative_counts(y_true, scores)
    fpr = np.concatenate([[0.0], fps / n_negative])
    tpr = np.concatenate([[0.0], tps / n_positive])
    thresholds = np.concatenate([[np.inf], thresholds])
    return fpr, tpr, thresholds


def precision_recall_curve(y_true, scores):
    """Precision and recall at increasing thresholds.

    Follows the scikit-learn convention: entries run from the loosest
    realisable threshold (everything flagged, recall 1) to the strictest,
    so ``recall`` is decreasing, and a final ``(precision=1, recall=0)``
    anchor represents the threshold above every score.

    Returns:
        ``(precision, recall, thresholds)``; ``precision``/``recall`` have
        one more entry than ``thresholds`` because of the anchor point.
    """
    y_true, scores = _validate_scores(y_true, scores)
    n_positive = int(y_true.sum())
    if n_positive == 0:
        raise ValueError("precision_recall_curve needs positive samples")
    thresholds, tps, fps = _cumulative_counts(y_true, scores)
    precision = tps / (tps + fps)
    recall = tps / n_positive
    # Reverse to increasing thresholds and append the (1, 0) anchor.
    precision = np.concatenate([precision[::-1], [1.0]])
    recall = np.concatenate([recall[::-1], [0.0]])
    return precision, recall, thresholds[::-1]


def auc(x, y) -> float:
    """Trapezoidal area under a curve given by monotone ``x`` and ``y``."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1 or x.size < 2:
        raise ValueError("auc expects two equal-length 1-D arrays, n >= 2")
    dx = np.diff(x)
    if np.any(dx < 0) and np.any(dx > 0):
        raise ValueError("x must be monotone (all increasing or decreasing)")
    return float(abs(np.trapezoid(y, x)))


def roc_auc_score(y_true, scores) -> float:
    """Area under the ROC curve.

    Computed via the Mann–Whitney U statistic (probability that a random
    phishing contract outscores a random benign one, ties counting half),
    which is exact and threshold-free.
    """
    y_true, scores = _validate_scores(y_true, scores)
    positives = scores[y_true == 1]
    negatives = scores[y_true == 0]
    if positives.size == 0 or negatives.size == 0:
        raise ValueError("roc_auc_score needs both classes present")
    # Rank-based computation: O((n+m) log(n+m)) and tie-correct.
    combined = np.concatenate([positives, negatives])
    order = np.argsort(combined, kind="stable")
    ranks = np.empty(combined.size, dtype=float)
    ranks[order] = np.arange(1, combined.size + 1)
    # Average ranks over ties.
    sorted_vals = combined[order]
    start = 0
    for end in range(1, sorted_vals.size + 1):
        if end == sorted_vals.size or sorted_vals[end] != sorted_vals[start]:
            if end - start > 1:
                tie_indices = order[start:end]
                ranks[tie_indices] = ranks[tie_indices].mean()
            start = end
    rank_sum = ranks[: positives.size].sum()
    u_statistic = rank_sum - positives.size * (positives.size + 1) / 2.0
    return float(u_statistic / (positives.size * negatives.size))


def average_precision_score(y_true, scores) -> float:
    """Area under the precision–recall curve (step-function AP).

    Uses the standard ``sum (R_i - R_{i-1}) * P_i`` estimator rather than
    the trapezoid, which is optimistic for PR curves.
    """
    precision, recall, _ = precision_recall_curve(y_true, scores)
    # recall decreases towards the trailing (1, 0) anchor, so the recall
    # increments are -diff(recall).
    return float(-np.sum(np.diff(recall) * precision[:-1]))


@dataclass(frozen=True)
class OperatingPoint:
    """One realisable threshold on a score distribution."""

    threshold: float
    precision: float
    recall: float
    fpr: float

    def as_dict(self) -> dict[str, float]:
        return {
            "threshold": self.threshold,
            "precision": self.precision,
            "recall": self.recall,
            "fpr": self.fpr,
        }


def _all_operating_points(y_true, scores) -> list[OperatingPoint]:
    y_true, scores = _validate_scores(y_true, scores)
    n_positive = int(y_true.sum())
    n_negative = y_true.size - n_positive
    if n_positive == 0 or n_negative == 0:
        raise ValueError("operating points need both classes present")
    thresholds, tps, fps = _cumulative_counts(y_true, scores)
    points = []
    for threshold, tp, fp in zip(thresholds, tps, fps):
        points.append(
            OperatingPoint(
                threshold=float(threshold),
                precision=float(tp / (tp + fp)),
                recall=float(tp / n_positive),
                fpr=float(fp / n_negative),
            )
        )
    return points


def operating_point_at_precision(
    y_true, scores, min_precision: float
) -> OperatingPoint | None:
    """Highest-recall realisable threshold with precision >= the floor.

    Returns ``None`` when no threshold reaches ``min_precision`` — e.g. a
    wallet integration demanding 99% precision from a weak model.
    """
    feasible = [
        point
        for point in _all_operating_points(y_true, scores)
        if point.precision >= min_precision
    ]
    if not feasible:
        return None
    return max(feasible, key=lambda point: (point.recall, point.precision))


def operating_point_at_fpr(y_true, scores, max_fpr: float) -> OperatingPoint:
    """Highest-recall realisable threshold with FPR <= the ceiling.

    Always feasible: the threshold above every score has FPR 0.
    """
    points = _all_operating_points(y_true, scores)
    feasible = [point for point in points if point.fpr <= max_fpr]
    if not feasible:
        top = max(point.threshold for point in points)
        return OperatingPoint(
            threshold=float(np.nextafter(top, np.inf)),
            precision=0.0,
            recall=0.0,
            fpr=0.0,
        )
    return max(feasible, key=lambda point: (point.recall, -point.fpr))


def detection_error_tradeoff(y_true, scores):
    """False-positive vs false-negative rates at decreasing thresholds.

    The DET curve is the malware-detection community's preferred view of
    the same trade-off as ROC; returned here on linear axes.

    Returns:
        ``(fpr, fnr, thresholds)``.
    """
    fpr, tpr, thresholds = roc_curve(y_true, scores)
    return fpr, 1.0 - tpr, thresholds
