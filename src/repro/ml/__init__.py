"""Classical ML algorithms implemented from scratch on numpy.

Substitution S4 in DESIGN.md: the paper uses scikit-learn 1.5 plus the
XGBoost/LightGBM/CatBoost packages for the Histogram Similarity
Classifiers; none are available offline, so this package reimplements them:

* :mod:`repro.ml.tree` — CART decision trees (gini),
* :mod:`repro.ml.forest` — Random Forest (bagging + feature subsampling,
  optional process-parallel training with bit-identical derived seeds),
* :mod:`repro.ml.flat` — the flat-array inference engine: fitted
  ensembles compile to stacked node arrays and predict via
  level-synchronous vectorized descent (O(depth) numpy ops per batch),
* :mod:`repro.ml.gbdt` — three gradient-boosting variants mirroring the
  distinguishing design choice of each library: exact level-wise growth
  with second-order gain (XGBoost), histogram binning with leaf-wise
  growth (LightGBM), and oblivious/symmetric trees (CatBoost),
* :mod:`repro.ml.knn`, :mod:`repro.ml.linear`, :mod:`repro.ml.svm` —
  k-nearest neighbours, logistic regression (L-BFGS), and an SVM with an
  RBF random-Fourier-feature map,
* :mod:`repro.ml.metrics` — the Accuracy/F1/Precision/Recall used
  throughout the paper's evaluation,
* :mod:`repro.ml.curves` — threshold-free ROC / precision–recall curves
  and operating-point selection for the deployment scenario of §V.
"""

from repro.ml.base import Classifier, clone
from repro.ml.flat import FlatEnsemble, level_descent, precompile
from repro.ml.curves import (
    average_precision_score,
    precision_recall_curve,
    roc_auc_score,
    roc_curve,
)
from repro.ml.forest import RandomForestClassifier
from repro.ml.gbdt import (
    CatBoostClassifier,
    LightGBMClassifier,
    XGBoostClassifier,
)
from repro.ml.knn import KNeighborsClassifier
from repro.ml.linear import LogisticRegression
from repro.ml.metrics import (
    accuracy_score,
    classification_metrics,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
)
from repro.ml.svm import SVC
from repro.ml.tree import DecisionTreeClassifier

__all__ = [
    "Classifier",
    "clone",
    "FlatEnsemble",
    "level_descent",
    "precompile",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "XGBoostClassifier",
    "LightGBMClassifier",
    "CatBoostClassifier",
    "KNeighborsClassifier",
    "LogisticRegression",
    "SVC",
    "accuracy_score",
    "average_precision_score",
    "precision_recall_curve",
    "roc_auc_score",
    "roc_curve",
    "classification_metrics",
    "confusion_matrix",
    "f1_score",
    "precision_score",
    "recall_score",
]
