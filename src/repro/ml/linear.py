"""L2-regularized logistic regression, optimized with L-BFGS (scipy).

Features are standardized internally (raw opcode counts span several orders
of magnitude); the paper feeds raw histograms to sklearn's
``LogisticRegression``, whose lbfgs solver copes via conditioning — the
internal standardization here plays the same numerical role and the
decision function is an equivalent affine model of the raw inputs.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.ml.base import Classifier, check_array, check_X_y

__all__ = ["LogisticRegression"]


class LogisticRegression(Classifier):
    """Binary logistic regression.

    Args:
        C: Inverse regularization strength (sklearn convention).
        max_iter: L-BFGS iteration cap.
        tol: L-BFGS gradient tolerance.
    """

    def __init__(self, C: float = 1.0, max_iter: int = 200, tol: float = 1e-6):
        self.C = C
        self.max_iter = max_iter
        self.tol = tol

    def fit(self, X, y) -> "LogisticRegression":
        X, y = check_X_y(X, y)
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        self.scale_ = np.where(scale > 0, scale, 1.0)
        Z = (X - self.mean_) / self.scale_
        n, d = Z.shape
        alpha = 1.0 / (self.C * n)

        def loss_and_grad(params):
            w, b = params[:d], params[d]
            margin = Z @ w + b
            # log(1 + exp(-s*m)) computed stably.
            signed = np.where(y == 1, margin, -margin)
            loss = np.mean(np.logaddexp(0.0, -signed)) + 0.5 * alpha * w @ w
            p = 1.0 / (1.0 + np.exp(-np.clip(margin, -60, 60)))
            residual = p - y
            grad_w = Z.T @ residual / n + alpha * w
            grad_b = residual.mean()
            return loss, np.concatenate([grad_w, [grad_b]])

        result = optimize.minimize(
            loss_and_grad,
            x0=np.zeros(d + 1),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter, "gtol": self.tol},
        )
        self.coef_ = result.x[:d]
        self.intercept_ = float(result.x[d])
        return self

    def state_dict(self) -> dict:
        if not hasattr(self, "coef_"):
            raise RuntimeError("classifier is not fitted; call fit() first")
        return {
            "mean": self.mean_,
            "scale": self.scale_,
            "coef": self.coef_,
            "intercept": float(self.intercept_),
        }

    def load_state(self, state: dict) -> "LogisticRegression":
        self.mean_ = np.asarray(state["mean"], dtype=np.float64)
        self.scale_ = np.asarray(state["scale"], dtype=np.float64)
        self.coef_ = np.asarray(state["coef"], dtype=np.float64)
        self.intercept_ = float(state["intercept"])
        return self

    def decision_function(self, X) -> np.ndarray:
        X = check_array(X)
        if not hasattr(self, "coef_"):
            raise RuntimeError("classifier is not fitted; call fit() first")
        Z = (X - self.mean_) / self.scale_
        return Z @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        margin = self.decision_function(X)
        p = 1.0 / (1.0 + np.exp(-np.clip(margin, -60, 60)))
        return np.column_stack([1 - p, p])
