"""Support vector machine with an RBF random-Fourier-feature map.

sklearn's default ``SVC`` (RBF kernel) is approximated by Rahimi–Recht
random Fourier features followed by a linear squared-hinge SVM solved with
L-BFGS — the standard kernel-approximation route when a full SMO solver is
unavailable. ``gamma="scale"`` follows sklearn's heuristic
``1 / (n_features · Var(X))``.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.ml.base import Classifier, check_array, check_X_y

__all__ = ["SVC"]


class SVC(Classifier):
    """RBF-approximate SVM.

    Args:
        C: Inverse regularization strength.
        gamma: RBF width, or "scale" for sklearn's heuristic.
        n_components: Random Fourier features (higher = closer to exact RBF).
        kernel: "rbf" or "linear" (skips the feature map).
        random_state: Seed of the random feature draw.
        max_iter: L-BFGS iteration cap.
    """

    def __init__(
        self,
        C: float = 1.0,
        gamma="scale",
        n_components: int = 256,
        kernel: str = "rbf",
        random_state: int = 0,
        max_iter: int = 200,
    ):
        if kernel not in ("rbf", "linear"):
            raise ValueError(f"unknown kernel {kernel!r}")
        self.C = C
        self.gamma = gamma
        self.n_components = n_components
        self.kernel = kernel
        self.random_state = random_state
        self.max_iter = max_iter

    # ------------------------------------------------------------------ #

    def _resolve_gamma(self, X) -> float:
        if self.gamma == "scale":
            variance = X.var()
            return 1.0 / (X.shape[1] * variance) if variance > 0 else 1.0
        return float(self.gamma)

    def _feature_map(self, X) -> np.ndarray:
        Z = (X - self.mean_) / self.scale_
        if self.kernel == "linear":
            return Z
        projection = Z @ self.omega_ + self.phase_
        return np.sqrt(2.0 / self.n_components) * np.cos(projection)

    def fit(self, X, y) -> "SVC":
        X, y = check_X_y(X, y)
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        self.scale_ = np.where(scale > 0, scale, 1.0)

        if self.kernel == "rbf":
            gamma = self._resolve_gamma((X - self.mean_) / self.scale_)
            rng = np.random.default_rng(self.random_state)
            self.omega_ = rng.normal(
                scale=np.sqrt(2.0 * gamma), size=(X.shape[1], self.n_components)
            )
            self.phase_ = rng.uniform(0, 2 * np.pi, size=self.n_components)

        F = self._feature_map(X)
        signs = np.where(y == 1, 1.0, -1.0)
        n, d = F.shape
        alpha = 1.0 / (self.C * n)

        def loss_and_grad(params):
            w, b = params[:d], params[d]
            margin = signs * (F @ w + b)
            slack = np.maximum(0.0, 1.0 - margin)
            loss = np.mean(slack**2) + 0.5 * alpha * w @ w
            coefficient = -2.0 * signs * slack / n
            grad_w = F.T @ coefficient + alpha * w
            grad_b = coefficient.sum()
            return loss, np.concatenate([grad_w, [grad_b]])

        result = optimize.minimize(
            loss_and_grad,
            x0=np.zeros(d + 1),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        self.coef_ = result.x[:d]
        self.intercept_ = float(result.x[d])
        return self

    def state_dict(self) -> dict:
        if not hasattr(self, "coef_"):
            raise RuntimeError("classifier is not fitted; call fit() first")
        state = {
            "mean": self.mean_,
            "scale": self.scale_,
            "coef": self.coef_,
            "intercept": float(self.intercept_),
        }
        if self.kernel == "rbf":
            state["omega"] = self.omega_
            state["phase"] = self.phase_
        return state

    def load_state(self, state: dict) -> "SVC":
        self.mean_ = np.asarray(state["mean"], dtype=np.float64)
        self.scale_ = np.asarray(state["scale"], dtype=np.float64)
        self.coef_ = np.asarray(state["coef"], dtype=np.float64)
        self.intercept_ = float(state["intercept"])
        if self.kernel == "rbf":
            self.omega_ = np.asarray(state["omega"], dtype=np.float64)
            self.phase_ = np.asarray(state["phase"], dtype=np.float64)
        return self

    def decision_function(self, X) -> np.ndarray:
        X = check_array(X)
        if not hasattr(self, "coef_"):
            raise RuntimeError("classifier is not fitted; call fit() first")
        return self._feature_map(X) @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        """Sigmoid-calibrated margins (a light-weight Platt scaling)."""
        margin = self.decision_function(X)
        p = 1.0 / (1.0 + np.exp(-np.clip(margin, -60, 60)))
        return np.column_stack([1 - p, p])
