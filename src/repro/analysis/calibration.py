"""Probability calibration: reliability diagrams, ECE/MCE, Brier, scaling.

Table II scores models by thresholded metrics, but the live-deployment
story (§V, §VII: wallets warning users in real time) consumes the phishing
*probability* itself — a wallet may warn softly at p≈0.6 and block at
p≈0.95. That only works if the probabilities are calibrated: among
contracts scored 0.8, about 80% should actually be phishing. This module
measures calibration (reliability bins, expected/maximum calibration
error, Brier score) and repairs it post hoc with the two standard
single-parameter-family methods, Platt scaling and temperature scaling,
plus non-parametric isotonic regression (PAV).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ReliabilityBin",
    "reliability_bins",
    "expected_calibration_error",
    "maximum_calibration_error",
    "brier_score",
    "PlattScaler",
    "TemperatureScaler",
    "IsotonicCalibrator",
]

_EPS = 1e-12


def _validate_probs(y_true, probs) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    probs = np.asarray(probs, dtype=float)
    if y_true.shape != probs.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs probs {probs.shape}"
        )
    if y_true.ndim != 1 or y_true.size == 0:
        raise ValueError("y_true must be a non-empty 1-D array")
    if not np.isin(y_true, (0, 1)).all():
        raise ValueError("y_true must contain only 0/1 labels")
    if np.any((probs < 0) | (probs > 1)) or not np.isfinite(probs).all():
        raise ValueError("probs must lie in [0, 1]")
    return y_true, probs


@dataclass(frozen=True)
class ReliabilityBin:
    """One bin of a reliability diagram."""

    lower: float
    upper: float
    count: int
    mean_predicted: float
    fraction_positive: float

    @property
    def gap(self) -> float:
        """|confidence − accuracy| for this bin; 0 when empty."""
        if self.count == 0:
            return 0.0
        return abs(self.mean_predicted - self.fraction_positive)


def reliability_bins(y_true, probs, n_bins: int = 10) -> list[ReliabilityBin]:
    """Equal-width reliability diagram over predicted probabilities.

    Bin ``i`` covers ``(i/n, (i+1)/n]`` with the first bin closed at 0,
    so every probability lands in exactly one bin.
    """
    y_true, probs = _validate_probs(y_true, probs)
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    # right-closed bins; probability 0 goes to bin 0.
    indices = np.clip(np.ceil(probs * n_bins).astype(int) - 1, 0, n_bins - 1)
    bins = []
    for i in range(n_bins):
        mask = indices == i
        count = int(mask.sum())
        bins.append(
            ReliabilityBin(
                lower=float(edges[i]),
                upper=float(edges[i + 1]),
                count=count,
                mean_predicted=float(probs[mask].mean()) if count else 0.0,
                fraction_positive=float(y_true[mask].mean()) if count else 0.0,
            )
        )
    return bins


def expected_calibration_error(y_true, probs, n_bins: int = 10) -> float:
    """ECE: bin-count-weighted mean |confidence − accuracy|."""
    bins = reliability_bins(y_true, probs, n_bins)
    total = sum(b.count for b in bins)
    return float(sum(b.count * b.gap for b in bins) / total)


def maximum_calibration_error(y_true, probs, n_bins: int = 10) -> float:
    """MCE: worst-bin |confidence − accuracy| over non-empty bins."""
    bins = reliability_bins(y_true, probs, n_bins)
    gaps = [b.gap for b in bins if b.count > 0]
    return float(max(gaps))


def brier_score(y_true, probs) -> float:
    """Mean squared error between probabilities and 0/1 outcomes."""
    y_true, probs = _validate_probs(y_true, probs)
    return float(np.mean((probs - y_true) ** 2))


def _logit(probs: np.ndarray) -> np.ndarray:
    clipped = np.clip(probs, _EPS, 1.0 - _EPS)
    return np.log(clipped / (1.0 - clipped))


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    expz = np.exp(z[~positive])
    out[~positive] = expz / (1.0 + expz)
    return out


class PlattScaler:
    """Platt scaling: fit ``sigmoid(a * logit(p) + b)`` by NLL descent.

    Two parameters let it fix both slope (over/under-confidence) and bias
    (class-prior shift). Fit on a held-out calibration split, never on the
    training data of the underlying model.
    """

    def __init__(self, max_iter: int = 200, learning_rate: float = 0.5):
        self.max_iter = max_iter
        self.learning_rate = learning_rate
        self.slope_ = 1.0
        self.intercept_ = 0.0
        self._fitted = False

    def fit(self, probs, y_true) -> "PlattScaler":
        """Fit slope/intercept by full-batch gradient descent on NLL."""
        y_true, probs = _validate_probs(y_true, probs)
        logits = _logit(probs)
        slope, intercept = 1.0, 0.0
        n = y_true.size
        for _ in range(self.max_iter):
            predicted = _sigmoid(slope * logits + intercept)
            error = predicted - y_true
            grad_slope = float(error @ logits) / n
            grad_intercept = float(error.sum()) / n
            slope -= self.learning_rate * grad_slope
            intercept -= self.learning_rate * grad_intercept
        self.slope_ = slope
        self.intercept_ = intercept
        self._fitted = True
        return self

    def transform(self, probs) -> np.ndarray:
        """Map raw probabilities through the fitted sigmoid."""
        if not self._fitted:
            raise RuntimeError("PlattScaler is not fitted")
        probs = np.asarray(probs, dtype=float)
        return _sigmoid(self.slope_ * _logit(probs) + self.intercept_)


class TemperatureScaler:
    """Temperature scaling: ``sigmoid(logit(p) / T)`` with scalar T > 0.

    The single-parameter special case of Platt scaling; cannot shift the
    decision boundary (argmax-preserving), only sharpen or soften. T is
    found by golden-section search on the calibration NLL.
    """

    def __init__(self, bounds: tuple[float, float] = (0.05, 20.0),
                 tolerance: float = 1e-4):
        low, high = bounds
        if not 0 < low < high:
            raise ValueError("bounds must satisfy 0 < low < high")
        self.bounds = (float(low), float(high))
        self.tolerance = tolerance
        self.temperature_ = 1.0
        self._fitted = False

    @staticmethod
    def _nll(logits: np.ndarray, y_true: np.ndarray, temperature: float) -> float:
        predicted = np.clip(_sigmoid(logits / temperature), _EPS, 1 - _EPS)
        return float(
            -np.mean(y_true * np.log(predicted)
                     + (1 - y_true) * np.log(1 - predicted))
        )

    def fit(self, probs, y_true) -> "TemperatureScaler":
        """Find T minimizing calibration NLL by golden-section search."""
        y_true, probs = _validate_probs(y_true, probs)
        logits = _logit(probs)
        low, high = self.bounds
        inverse_golden = (np.sqrt(5.0) - 1.0) / 2.0
        left = high - inverse_golden * (high - low)
        right = low + inverse_golden * (high - low)
        nll_left = self._nll(logits, y_true, left)
        nll_right = self._nll(logits, y_true, right)
        while high - low > self.tolerance:
            if nll_left < nll_right:
                high, right, nll_right = right, left, nll_left
                left = high - inverse_golden * (high - low)
                nll_left = self._nll(logits, y_true, left)
            else:
                low, left, nll_left = left, right, nll_right
                right = low + inverse_golden * (high - low)
                nll_right = self._nll(logits, y_true, right)
        self.temperature_ = (low + high) / 2.0
        self._fitted = True
        return self

    def transform(self, probs) -> np.ndarray:
        """Soften (T > 1) or sharpen (T < 1) the raw probabilities."""
        if not self._fitted:
            raise RuntimeError("TemperatureScaler is not fitted")
        probs = np.asarray(probs, dtype=float)
        return _sigmoid(_logit(probs) / self.temperature_)


class IsotonicCalibrator:
    """Isotonic regression via pool-adjacent-violators (PAV).

    Non-parametric: learns any monotone map from score to probability.
    Needs more calibration data than the parametric scalers but repairs
    arbitrarily-shaped reliability curves.
    """

    def __init__(self):
        self.thresholds_: np.ndarray | None = None
        self.values_: np.ndarray | None = None

    def fit(self, probs, y_true) -> "IsotonicCalibrator":
        """Pool adjacent violators over the score-sorted labels."""
        y_true, probs = _validate_probs(y_true, probs)
        order = np.argsort(probs, kind="stable")
        x = probs[order]
        y = y_true[order].astype(float)
        # PAV with block merging: each block holds (value_sum, count).
        block_sum = list(y)
        block_count = [1.0] * y.size
        block_end = list(range(y.size))  # last input index of each block
        i = 0
        while i < len(block_sum) - 1:
            if block_sum[i] / block_count[i] > block_sum[i + 1] / block_count[i + 1]:
                block_sum[i] += block_sum.pop(i + 1)
                block_count[i] += block_count.pop(i + 1)
                block_end[i] = block_end.pop(i + 1)
                if i > 0:
                    i -= 1
            else:
                i += 1
        values = np.array(
            [s / c for s, c in zip(block_sum, block_count)]
        )
        thresholds = np.array([x[end] for end in block_end])
        self.thresholds_ = thresholds
        self.values_ = values
        return self

    def transform(self, probs) -> np.ndarray:
        """Evaluate the fitted monotone step function."""
        if self.thresholds_ is None:
            raise RuntimeError("IsotonicCalibrator is not fitted")
        probs = np.asarray(probs, dtype=float)
        # Step-function interpolation: value of the first block whose
        # right edge is >= p; clamp above the last edge.
        indices = np.searchsorted(self.thresholds_, probs, side="left")
        indices = np.minimum(indices, self.values_.size - 1)
        return self.values_[indices]
