"""The post-hoc statistical battery of §IV-E and §IV-F.

Implements the exact procedures (and formulas) the paper describes:

* Shapiro–Wilk normality test — W = (Σ aᵢ x₍ᵢ₎)² / Σ (xᵢ − x̄)²,
* Kruskal–Wallis — H = 12/(N(N+1)) · Σ Rᵢ²/nᵢ − 3(N+1), with tie
  correction,
* Dunn's pairwise test — Z = (R̄ᵢ − R̄ⱼ) / √[(N(N+1)/12)(1/nᵢ + 1/nⱼ)],
* Holm–Bonferroni step-down correction,
* Friedman test and Wilcoxon signed-rank (scalability post hoc, Fig. 6),
* Cliff's δ effect size.

scipy is used only for reference distributions (normal, χ²); the test
statistics themselves are computed here and cross-validated against
``scipy.stats`` in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import stats as _sps

__all__ = [
    "TestResult",
    "PairwiseResult",
    "shapiro_wilk",
    "kruskal_wallis",
    "dunn_test",
    "holm_bonferroni",
    "friedman_test",
    "wilcoxon_signed_rank",
    "cliffs_delta",
    "rankdata",
]


@dataclass(frozen=True)
class TestResult:
    """A named test statistic with its p-value."""

    statistic: float
    p_value: float
    name: str = ""

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


@dataclass(frozen=True)
class PairwiseResult:
    """One pairwise comparison (Dunn / Wilcoxon) with adjusted p."""

    group_a: str
    group_b: str
    statistic: float
    p_value: float
    p_adjusted: float

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_adjusted < alpha


def rankdata(values: np.ndarray) -> np.ndarray:
    """Average ranks (1-based) with ties sharing their mean rank."""
    values = np.asarray(values, dtype=float)
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=float)
    ranks[order] = np.arange(1, len(values) + 1, dtype=float)
    # Average ranks over tied groups.
    sorted_values = values[order]
    index = 0
    while index < len(values):
        stop = index
        while stop + 1 < len(values) and sorted_values[stop + 1] == sorted_values[index]:
            stop += 1
        if stop > index:
            mean_rank = 0.5 * (index + 1 + stop + 1)
            ranks[order[index : stop + 1]] = mean_rank
        index = stop + 1
    return ranks


# --------------------------------------------------------------------- #
# Shapiro–Wilk
# --------------------------------------------------------------------- #


def _shapiro_coefficients(n: int) -> np.ndarray:
    """Royston's approximation of the Shapiro–Wilk coefficients a."""
    m = _sps.norm.ppf((np.arange(1, n + 1) - 0.375) / (n + 0.25))
    c = m / np.sqrt(m @ m)
    u = 1.0 / np.sqrt(n)
    a_n = (
        c[-1] + 0.221157 * u - 0.147981 * u**2 - 2.071190 * u**3
        + 4.434685 * u**4 - 2.706056 * u**5
    )
    a_n1 = (
        c[-2] + 0.042981 * u - 0.293762 * u**2 - 1.752461 * u**3
        + 5.682633 * u**4 - 3.582633 * u**5
    )
    a = np.empty(n)
    if n <= 5:
        phi = (m @ m - 2 * m[-1] ** 2) / (1 - 2 * a_n**2)
        if phi <= 0:
            raise ValueError(f"sample size {n} too small for W approximation")
        a[1:-1] = m[1:-1] / np.sqrt(phi)
        a[0], a[-1] = -a_n, a_n
    else:
        phi = (m @ m - 2 * m[-1] ** 2 - 2 * m[-2] ** 2) / (
            1 - 2 * a_n**2 - 2 * a_n1**2
        )
        a[2:-2] = m[2:-2] / np.sqrt(phi)
        a[0], a[-1] = -a_n, a_n
        a[1], a[-2] = -a_n1, a_n1
    return a


def shapiro_wilk(values) -> TestResult:
    """Shapiro–Wilk normality test (Royston 1992 approximation).

    The null hypothesis is that ``values`` are normally distributed; it is
    rejected for W significantly below 1 (p < 0.05).
    """
    x = np.sort(np.asarray(values, dtype=float))
    n = len(x)
    if n < 3:
        raise ValueError(f"Shapiro–Wilk needs n ≥ 3, got {n}")
    if np.ptp(x) == 0:
        raise ValueError("all values identical; W undefined")
    a = _shapiro_coefficients(n)
    numerator = (a @ x) ** 2
    denominator = np.sum((x - x.mean()) ** 2)
    W = numerator / denominator
    # Royston's normalizing transformation of W → z.
    log_n = np.log(n)
    if n <= 11:
        gamma = -2.273 + 0.459 * n
        w_transformed = -np.log(gamma - np.log1p(-W))
        mu = 0.5440 - 0.39978 * n + 0.025054 * n**2 - 0.0006714 * n**3
        sigma = np.exp(
            1.3822 - 0.77857 * n + 0.062767 * n**2 - 0.0020322 * n**3
        )
    else:
        w_transformed = np.log1p(-W)
        mu = -1.5861 - 0.31082 * log_n - 0.083751 * log_n**2 + 0.0038915 * log_n**3
        sigma = np.exp(-0.4803 - 0.082676 * log_n + 0.0030302 * log_n**2)
    z = (w_transformed - mu) / sigma
    p = float(_sps.norm.sf(z))
    return TestResult(statistic=float(W), p_value=p, name="shapiro-wilk")


# --------------------------------------------------------------------- #
# Kruskal–Wallis
# --------------------------------------------------------------------- #


def kruskal_wallis(groups: list[np.ndarray]) -> TestResult:
    """Kruskal–Wallis H test over k independent groups (tie-corrected).

    H = 12/(N(N+1)) Σ Rᵢ²/nᵢ − 3(N+1), referred to χ²(k−1).
    """
    if len(groups) < 2:
        raise ValueError("Kruskal–Wallis needs at least 2 groups")
    groups = [np.asarray(g, dtype=float) for g in groups]
    if any(len(g) == 0 for g in groups):
        raise ValueError("empty group")
    pooled = np.concatenate(groups)
    N = len(pooled)
    ranks = rankdata(pooled)
    H = 0.0
    start = 0
    for group in groups:
        stop = start + len(group)
        rank_sum = ranks[start:stop].sum()
        H += rank_sum**2 / len(group)
        start = stop
    H = 12.0 / (N * (N + 1)) * H - 3.0 * (N + 1)
    # Tie correction.
    __, counts = np.unique(pooled, return_counts=True)
    tie_term = 1.0 - np.sum(counts**3 - counts) / (N**3 - N)
    if tie_term > 0:
        H /= tie_term
    p = float(_sps.chi2.sf(H, df=len(groups) - 1))
    return TestResult(statistic=float(H), p_value=p, name="kruskal-wallis")


# --------------------------------------------------------------------- #
# Multiple-comparison machinery
# --------------------------------------------------------------------- #


def holm_bonferroni(p_values: list[float]) -> list[float]:
    """Holm's step-down adjusted p-values (monotone, clipped at 1)."""
    p = np.asarray(p_values, dtype=float)
    m = len(p)
    order = np.argsort(p)
    adjusted = np.empty(m)
    running_max = 0.0
    for rank, index in enumerate(order):
        value = min((m - rank) * p[index], 1.0)
        running_max = max(running_max, value)
        adjusted[index] = running_max
    return adjusted.tolist()


def dunn_test(
    groups: dict[str, np.ndarray], adjust: bool = True
) -> list[PairwiseResult]:
    """Dunn's pairwise multiple-comparison test after Kruskal–Wallis.

    Z = (R̄ᵢ − R̄ⱼ) / √[(N(N+1)/12 − T) (1/nᵢ + 1/nⱼ)], where T is the tie
    correction Σ(t³−t)/(12(N−1)); p-values are two-sided normal and Holm-
    adjusted when ``adjust``.
    """
    names = list(groups)
    if len(names) < 2:
        raise ValueError("Dunn's test needs at least 2 groups")
    arrays = [np.asarray(groups[name], dtype=float) for name in names]
    pooled = np.concatenate(arrays)
    N = len(pooled)
    ranks = rankdata(pooled)
    mean_ranks: dict[str, float] = {}
    sizes: dict[str, int] = {}
    start = 0
    for name, array in zip(names, arrays):
        stop = start + len(array)
        mean_ranks[name] = float(ranks[start:stop].mean())
        sizes[name] = len(array)
        start = stop
    __, counts = np.unique(pooled, return_counts=True)
    tie_correction = np.sum(counts**3 - counts) / (12.0 * (N - 1))

    comparisons: list[tuple[str, str, float, float]] = []
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            a, b = names[i], names[j]
            variance = (N * (N + 1) / 12.0 - tie_correction) * (
                1.0 / sizes[a] + 1.0 / sizes[b]
            )
            z = (mean_ranks[a] - mean_ranks[b]) / np.sqrt(variance)
            p = float(2.0 * _sps.norm.sf(abs(z)))
            comparisons.append((a, b, float(z), p))

    raw_p = [c[3] for c in comparisons]
    adjusted = holm_bonferroni(raw_p) if adjust else raw_p
    return [
        PairwiseResult(a, b, z, p, p_adj)
        for (a, b, z, p), p_adj in zip(comparisons, adjusted)
    ]


# --------------------------------------------------------------------- #
# Friedman / Wilcoxon / Cliff's delta (scalability post hoc)
# --------------------------------------------------------------------- #


def friedman_test(matrix: np.ndarray) -> TestResult:
    """Friedman test on an (n_blocks, k_treatments) matrix.

    χ²_F = 12n/(k(k+1)) Σ (R̄ⱼ − (k+1)/2)², referred to χ²(k−1).
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[1] < 2:
        raise ValueError("need an (n_blocks, k≥2) matrix")
    n, k = matrix.shape
    ranks = np.vstack([rankdata(row) for row in matrix])
    mean_ranks = ranks.mean(axis=0)
    statistic = 12.0 * n / (k * (k + 1)) * np.sum(
        (mean_ranks - (k + 1) / 2.0) ** 2
    )
    p = float(_sps.chi2.sf(statistic, df=k - 1))
    return TestResult(statistic=float(statistic), p_value=p, name="friedman")


def wilcoxon_signed_rank(a, b) -> TestResult:
    """Wilcoxon signed-rank test for paired samples (exact for n ≤ 15).

    Zero differences are discarded (Wilcoxon's original procedure).
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError("paired samples must have equal length")
    differences = a - b
    differences = differences[differences != 0]
    n = len(differences)
    if n == 0:
        return TestResult(statistic=0.0, p_value=1.0, name="wilcoxon")
    ranks = rankdata(np.abs(differences))
    w_plus = ranks[differences > 0].sum()
    w_minus = ranks[differences < 0].sum()
    statistic = min(w_plus, w_minus)
    if n <= 15:
        # Exact null distribution by enumeration of sign assignments.
        totals = np.zeros(1, dtype=np.float64)
        # Distribution of W+ over all 2^n sign patterns via DP.
        max_sum = int(ranks.sum() * 2)  # ranks may be half-integers (ties)
        scale = 2  # work in half-rank units to stay integral
        weights = np.zeros(max_sum + 1)
        weights[0] = 1.0
        for rank in ranks:
            step = int(round(rank * scale))
            shifted = np.zeros_like(weights)
            shifted[step:] = weights[: len(weights) - step]
            weights = weights + shifted
        cumulative = np.cumsum(weights)
        threshold = int(round(statistic * scale))
        p = float(2.0 * cumulative[threshold] / weights.sum())
        p = min(p, 1.0)
    else:
        mean = n * (n + 1) / 4.0
        variance = n * (n + 1) * (2 * n + 1) / 24.0
        z = (statistic - mean) / np.sqrt(variance)
        p = float(2.0 * _sps.norm.sf(abs(z)))
    return TestResult(statistic=float(statistic), p_value=p, name="wilcoxon")


def cliffs_delta(a, b) -> float:
    """Cliff's δ: P(a > b) − P(a < b), in [−1, 1]."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if len(a) == 0 or len(b) == 0:
        raise ValueError("empty sample")
    greater = np.sum(a[:, None] > b[None, :])
    less = np.sum(a[:, None] < b[None, :])
    return float((greater - less) / (len(a) * len(b)))
