"""Shapley-value attributions (Fig. 9).

Two implementations:

* :func:`tree_shap_values` — exact polynomial-time TreeSHAP (Lundberg et
  al., TreeExplainer Algorithm 2) for a single CART tree, averaged over a
  :class:`~repro.ml.forest.RandomForestClassifier` ensemble. Attributions
  explain the predicted phishing probability.
* :func:`permutation_shap_values` — a model-agnostic Monte-Carlo Shapley
  estimate usable with any detector, used to cross-check TreeSHAP in the
  test suite.

Both satisfy local accuracy: attributions plus the expected value sum to
the model output.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.forest import RandomForestClassifier
from repro.ml.tree import LEAF, DecisionTreeClassifier

__all__ = [
    "tree_shap_values",
    "permutation_shap_values",
    "top_influential_features",
]


@dataclass
class _PathElement:
    """One unique feature on the current decision path."""

    feature_index: int
    zero_fraction: float  # share of background samples flowing through
    one_fraction: float   # 1 if x follows this split, else 0
    pweight: float        # Shapley permutation weight accumulator


def _extend_path(path, unique_depth, zero_fraction, one_fraction, feature_index):
    path[unique_depth] = _PathElement(
        feature_index, zero_fraction, one_fraction,
        1.0 if unique_depth == 0 else 0.0,
    )
    for i in range(unique_depth - 1, -1, -1):
        path[i + 1].pweight += (
            one_fraction * path[i].pweight * (i + 1) / (unique_depth + 1)
        )
        path[i].pweight = (
            zero_fraction * path[i].pweight * (unique_depth - i)
            / (unique_depth + 1)
        )


def _unwind_path(path, unique_depth, path_index):
    one_fraction = path[path_index].one_fraction
    zero_fraction = path[path_index].zero_fraction
    next_one_portion = path[unique_depth].pweight
    for i in range(unique_depth - 1, -1, -1):
        if one_fraction != 0.0:
            previous = path[i].pweight
            path[i].pweight = (
                next_one_portion * (unique_depth + 1)
                / ((i + 1) * one_fraction)
            )
            next_one_portion = previous - (
                path[i].pweight * zero_fraction * (unique_depth - i)
                / (unique_depth + 1)
            )
        else:
            path[i].pweight = (
                path[i].pweight * (unique_depth + 1)
                / (zero_fraction * (unique_depth - i))
            )
    for i in range(path_index, unique_depth):
        path[i].feature_index = path[i + 1].feature_index
        path[i].zero_fraction = path[i + 1].zero_fraction
        path[i].one_fraction = path[i + 1].one_fraction


def _unwound_path_sum(path, unique_depth, path_index):
    one_fraction = path[path_index].one_fraction
    zero_fraction = path[path_index].zero_fraction
    next_one_portion = path[unique_depth].pweight
    total = 0.0
    for i in range(unique_depth - 1, -1, -1):
        if one_fraction != 0.0:
            piece = (
                next_one_portion * (unique_depth + 1)
                / ((i + 1) * one_fraction)
            )
            total += piece
            next_one_portion = path[i].pweight - (
                piece * zero_fraction * (unique_depth - i) / (unique_depth + 1)
            )
        else:
            total += path[i].pweight / (
                zero_fraction * (unique_depth - i) / (unique_depth + 1)
            )
    return total


def _tree_shap_single(tree: DecisionTreeClassifier, x: np.ndarray) -> np.ndarray:
    """Exact Shapley values of one tree's P(phishing) for one sample."""
    phi = np.zeros(tree.n_features_)

    def recurse(node, unique_depth, parent_path, parent_zero, parent_one,
                parent_feature):
        path = [
            _PathElement(e.feature_index, e.zero_fraction, e.one_fraction,
                         e.pweight)
            for e in parent_path[:unique_depth]
        ] + [None] * 1
        _extend_path(path, unique_depth, parent_zero, parent_one,
                     parent_feature)

        if tree.children_left_[node] == LEAF:
            leaf_value = float(tree.value_[node, 1])
            for i in range(1, unique_depth + 1):
                weight = _unwound_path_sum(path, unique_depth, i)
                element = path[i]
                phi[element.feature_index] += (
                    weight * (element.one_fraction - element.zero_fraction)
                    * leaf_value
                )
            return

        feature = int(tree.feature_[node])
        left = int(tree.children_left_[node])
        right = int(tree.children_right_[node])
        hot, cold = (
            (left, right)
            if x[feature] <= tree.threshold_[node]
            else (right, left)
        )
        total = tree.n_node_samples_[node]
        hot_fraction = tree.n_node_samples_[hot] / total
        cold_fraction = tree.n_node_samples_[cold] / total

        incoming_zero = 1.0
        incoming_one = 1.0
        depth = unique_depth
        existing = next(
            (i for i in range(1, depth + 1)
             if path[i].feature_index == feature),
            None,
        )
        if existing is not None:
            incoming_zero = path[existing].zero_fraction
            incoming_one = path[existing].one_fraction
            _unwind_path(path, depth, existing)
            depth -= 1

        recurse(hot, depth + 1, path, incoming_zero * hot_fraction,
                incoming_one, feature)
        recurse(cold, depth + 1, path, incoming_zero * cold_fraction,
                0.0, feature)

    recurse(0, 0, [], 1.0, 1.0, -1)
    return phi


def tree_shap_values(
    model: RandomForestClassifier | DecisionTreeClassifier,
    X: np.ndarray,
) -> tuple[np.ndarray, float]:
    """Exact SHAP values of P(phishing) for each sample.

    Returns:
        ``(values, base_value)`` — values has shape ``(n_samples,
        n_features)``; base_value is the expected phishing probability
        (root-node value averaged over trees). Local accuracy holds:
        ``base + values.sum(axis=1) == predict_proba(X)[:, 1]``.
    """
    X = np.asarray(X, dtype=float)
    if isinstance(model, DecisionTreeClassifier):
        trees = [model]
    else:
        trees = model.trees_
    values = np.zeros((len(X), trees[0].n_features_))
    for tree in trees:
        for row in range(len(X)):
            values[row] += _tree_shap_single(tree, X[row])
    values /= len(trees)
    base = float(np.mean([tree.value_[0, 1] for tree in trees]))
    return values, base


def permutation_shap_values(
    predict_proba,
    X: np.ndarray,
    background: np.ndarray,
    n_permutations: int = 32,
    seed: int = 0,
) -> tuple[np.ndarray, float]:
    """Monte-Carlo Shapley estimate for any probabilistic model.

    Args:
        predict_proba: Callable mapping feature matrix → (n, 2) probs.
        X: Samples to explain.
        background: Reference samples for marginalizing absent features.
        n_permutations: Monte-Carlo permutations per sample.
    """
    rng = np.random.default_rng(seed)
    X = np.asarray(X, dtype=float)
    background = np.asarray(background, dtype=float)
    n_samples, n_features = X.shape
    values = np.zeros((n_samples, n_features))
    base = float(predict_proba(background)[:, 1].mean())

    for row in range(n_samples):
        for __ in range(n_permutations):
            order = rng.permutation(n_features)
            reference = background[rng.integers(0, len(background))].copy()
            current = reference.copy()
            previous_output = float(predict_proba(current[None, :])[0, 1])
            for feature in order:
                current[feature] = X[row, feature]
                output = float(predict_proba(current[None, :])[0, 1])
                values[row, feature] += output - previous_output
                previous_output = output
        values[row] /= n_permutations
    return values, base


def top_influential_features(
    values: np.ndarray, feature_names: list[str], k: int = 20
) -> list[str]:
    """Feature names ranked by mean |SHAP| (Fig. 9's 20-opcode x-axis)."""
    importance = np.abs(values).mean(axis=0)
    order = np.argsort(importance)[::-1]
    return [feature_names[i] for i in order[:k]]
