"""Critical Difference Diagram data (Fig. 6, after Demšar 2006).

Procedure as the paper describes (§IV-F): a Friedman test first checks for
any difference across treatments; on rejection (or regardless, for
reporting), pairwise Wilcoxon signed-rank tests with Holm correction decide
which pairs differ, and Cliff's δ quantifies effect sizes. The diagram
itself is the mean-rank axis plus cliques of statistically indistinguishable
treatments (the thick connecting line).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.stats import (
    PairwiseResult,
    TestResult,
    cliffs_delta,
    friedman_test,
    holm_bonferroni,
    rankdata,
    wilcoxon_signed_rank,
)

__all__ = ["CriticalDifferenceDiagram", "critical_difference"]


@dataclass
class CriticalDifferenceDiagram:
    """All data needed to draw a CDD."""

    treatments: list[str]
    mean_ranks: dict[str, float]
    friedman: TestResult
    pairwise: list[PairwiseResult] = field(default_factory=list)
    effect_sizes: dict[tuple[str, str], float] = field(default_factory=dict)
    cliques: list[tuple[str, ...]] = field(default_factory=list)

    def ordered(self) -> list[str]:
        """Treatments best-first (highest metric = highest mean rank)."""
        return sorted(self.treatments, key=self.mean_ranks.get, reverse=True)

    def render(self) -> str:
        """A text rendering of the diagram."""
        lines = [
            f"Friedman χ²={self.friedman.statistic:.3f} "
            f"p={self.friedman.p_value:.3g}"
        ]
        for name in self.ordered():
            lines.append(f"  {self.mean_ranks[name]:.2f}  {name}")
        for clique in self.cliques:
            lines.append("  ── connected (no significant difference): "
                         + ", ".join(clique))
        return "\n".join(lines)


def critical_difference(
    scores: dict[str, list[float]], alpha: float = 0.05
) -> CriticalDifferenceDiagram:
    """Build CDD data from per-treatment score lists (paired blocks).

    Args:
        scores: treatment → score per block; all lists of equal length
            (e.g. per data-split metric values in the scalability study).
    """
    names = list(scores)
    if len(names) < 2:
        raise ValueError("need at least two treatments")
    lengths = {len(v) for v in scores.values()}
    if len(lengths) != 1:
        raise ValueError("all treatments need the same number of blocks")
    matrix = np.column_stack([np.asarray(scores[n], dtype=float) for n in names])

    friedman = friedman_test(matrix)
    ranks = np.vstack([rankdata(row) for row in matrix])
    mean_ranks = {name: float(ranks[:, i].mean()) for i, name in enumerate(names)}

    comparisons = []
    raw_p = []
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            result = wilcoxon_signed_rank(matrix[:, i], matrix[:, j])
            comparisons.append((names[i], names[j], result))
            raw_p.append(result.p_value)
    adjusted = holm_bonferroni(raw_p)
    pairwise = [
        PairwiseResult(a, b, r.statistic, r.p_value, p_adj)
        for (a, b, r), p_adj in zip(comparisons, adjusted)
    ]
    effect_sizes = {
        (a, b): cliffs_delta(scores[a], scores[b])
        for a, b, __ in comparisons
    }

    # Cliques: maximal runs of rank-adjacent treatments with no
    # significant pairwise difference (the thick line in the figure).
    not_significant = {
        frozenset((p.group_a, p.group_b))
        for p in pairwise
        if not p.significant(alpha)
    }
    ordered = sorted(names, key=mean_ranks.get)
    cliques: list[tuple[str, ...]] = []
    start = 0
    while start < len(ordered):
        stop = start
        while stop + 1 < len(ordered) and all(
            frozenset((ordered[k], ordered[stop + 1])) in not_significant
            for k in range(start, stop + 1)
        ):
            stop += 1
        if stop > start:
            cliques.append(tuple(ordered[start : stop + 1]))
        start = max(stop, start + 1)
    return CriticalDifferenceDiagram(
        treatments=names,
        mean_ranks=mean_ranks,
        friedman=friedman,
        pairwise=pairwise,
        effect_sizes=effect_sizes,
        cliques=cliques,
    )
