"""Bootstrap resampling: confidence intervals and paired model tests.

The PAM exists "to assess and generalize results from the n samples
collected to the full set N of contracts deployed in the chain" (§V).
Rank tests answer *whether* models differ; the bootstrap quantifies *by
how much*: a confidence interval on each metric and a paired test on the
per-fold metric difference between two models. Percentile and BCa
(bias-corrected and accelerated) intervals are provided — BCa corrects
the skew that small per-fold samples (10–30 observations) typically show.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

__all__ = [
    "BootstrapInterval",
    "bootstrap_ci",
    "paired_bootstrap_test",
]


@dataclass(frozen=True)
class BootstrapInterval:
    """A bootstrap confidence interval for one statistic."""

    estimate: float
    lower: float
    upper: float
    confidence: float
    method: str

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def __contains__(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    def __str__(self) -> str:
        return (
            f"{self.estimate:.4f} "
            f"[{self.lower:.4f}, {self.upper:.4f}] "
            f"({self.confidence:.0%} {self.method})"
        )


def _validate_sample(values) -> np.ndarray:
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or values.size < 2:
        raise ValueError("bootstrap needs a 1-D sample of size >= 2")
    if not np.isfinite(values).all():
        raise ValueError("sample must be finite")
    return values


def _resample_statistics(
    values: np.ndarray,
    statistic,
    n_resamples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    indices = rng.integers(0, values.size, size=(n_resamples, values.size))
    return np.array([statistic(values[row]) for row in indices])


def bootstrap_ci(
    values,
    statistic=np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    method: str = "bca",
    seed: int = 0,
) -> BootstrapInterval:
    """Confidence interval for ``statistic(values)`` by resampling.

    Args:
        statistic: Callable mapping a 1-D array to a scalar.
        method: ``"percentile"`` or ``"bca"``. BCa additionally estimates
            the bias correction (fraction of resamples below the point
            estimate) and the acceleration (jackknife skewness), following
            Efron & Tibshirani (1993, ch. 14).

    Returns:
        A :class:`BootstrapInterval`; ``estimate`` is the plug-in value on
        the original sample.
    """
    values = _validate_sample(values)
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")
    if method not in ("percentile", "bca"):
        raise ValueError(f"unknown method {method!r}")
    if n_resamples < 100:
        raise ValueError("n_resamples must be >= 100")

    rng = np.random.default_rng(seed)
    estimate = float(statistic(values))
    resampled = _resample_statistics(values, statistic, n_resamples, rng)
    alpha = 1.0 - confidence

    if method == "percentile":
        lower, upper = np.quantile(resampled, [alpha / 2, 1 - alpha / 2])
        return BootstrapInterval(estimate, float(lower), float(upper),
                                 confidence, method)

    # --- BCa ---------------------------------------------------------- #
    below = np.mean(resampled < estimate)
    # Degenerate resample distributions (all equal) fall back cleanly.
    if below in (0.0, 1.0):
        lower, upper = np.quantile(resampled, [alpha / 2, 1 - alpha / 2])
        return BootstrapInterval(estimate, float(lower), float(upper),
                                 confidence, "percentile")
    bias = norm.ppf(below)

    jackknife = np.array([
        statistic(np.delete(values, i)) for i in range(values.size)
    ])
    deviations = jackknife.mean() - jackknife
    denominator = np.sum(deviations**2) ** 1.5
    acceleration = (
        0.0 if denominator == 0
        else float(np.sum(deviations**3) / (6.0 * denominator))
    )

    def adjusted_quantile(q: float) -> float:
        z = bias + norm.ppf(q)
        return float(norm.cdf(bias + z / (1.0 - acceleration * z)))

    lower_q = adjusted_quantile(alpha / 2)
    upper_q = adjusted_quantile(1 - alpha / 2)
    lower, upper = np.quantile(resampled, [lower_q, upper_q])
    return BootstrapInterval(estimate, float(lower), float(upper),
                             confidence, "bca")


def paired_bootstrap_test(
    first,
    second,
    n_resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, BootstrapInterval]:
    """Paired bootstrap test on the mean difference of two models.

    ``first`` and ``second`` are paired per-trial metrics (same folds,
    same runs — exactly the 30-trial layout of §IV-D). Resamples the
    per-pair differences; the two-sided p-value is the fraction of
    resampled mean differences on the far side of zero (doubled, capped
    at 1), and the interval is a percentile CI on the mean difference.

    Returns:
        ``(p_value, interval)``.
    """
    first = _validate_sample(first)
    second = _validate_sample(second)
    if first.shape != second.shape:
        raise ValueError("paired samples must have identical shape")
    differences = first - second
    rng = np.random.default_rng(seed)
    resampled = _resample_statistics(
        differences, np.mean, n_resamples, rng
    )
    observed = float(differences.mean())
    if observed >= 0:
        tail = float(np.mean(resampled <= 0))
    else:
        tail = float(np.mean(resampled >= 0))
    p_value = min(1.0, 2.0 * tail)
    lower, upper = np.quantile(resampled, [0.025, 0.975])
    interval = BootstrapInterval(
        observed, float(lower), float(upper), 0.95, "percentile"
    )
    return p_value, interval
