"""Statistical analysis and interpretability tooling.

* :mod:`repro.analysis.stats` — the §IV-E/§IV-F statistical battery:
  Shapiro–Wilk, Kruskal–Wallis, Dunn's pairwise test, Holm–Bonferroni,
  Friedman, Wilcoxon signed-rank and Cliff's δ (substitution S7: the
  paper's R scripts, reimplemented and cross-checked against scipy),
* :mod:`repro.analysis.shap_values` — exact TreeSHAP for the tree
  ensembles plus a model-agnostic permutation Shapley fallback (Fig. 9),
* :mod:`repro.analysis.timeeval` — time-decay evaluation and the Area
  Under Time (AUT) metric (Fig. 8),
* :mod:`repro.analysis.cdd` — critical-difference-diagram ranking
  (Fig. 6),
* :mod:`repro.analysis.calibration` — reliability diagrams, ECE/MCE,
  Brier score and post-hoc probability scaling for the live-deployment
  scenario (§V, §VII),
* :mod:`repro.analysis.bootstrap` — percentile/BCa confidence intervals
  and paired bootstrap model tests (PAM companion, §V).
"""

from repro.analysis.bootstrap import (
    BootstrapInterval,
    bootstrap_ci,
    paired_bootstrap_test,
)
from repro.analysis.calibration import (
    IsotonicCalibrator,
    PlattScaler,
    TemperatureScaler,
    brier_score,
    expected_calibration_error,
    maximum_calibration_error,
    reliability_bins,
)
from repro.analysis.cdd import CriticalDifferenceDiagram, critical_difference
from repro.analysis.shap_values import (
    permutation_shap_values,
    tree_shap_values,
)
from repro.analysis.stats import (
    TestResult,
    cliffs_delta,
    dunn_test,
    friedman_test,
    holm_bonferroni,
    kruskal_wallis,
    shapiro_wilk,
    wilcoxon_signed_rank,
)
from repro.analysis.timeeval import TimeDecayResult, area_under_time, time_decay_evaluation

__all__ = [
    "TestResult",
    "shapiro_wilk",
    "kruskal_wallis",
    "dunn_test",
    "holm_bonferroni",
    "friedman_test",
    "wilcoxon_signed_rank",
    "cliffs_delta",
    "tree_shap_values",
    "permutation_shap_values",
    "area_under_time",
    "time_decay_evaluation",
    "TimeDecayResult",
    "critical_difference",
    "CriticalDifferenceDiagram",
    "reliability_bins",
    "expected_calibration_error",
    "maximum_calibration_error",
    "brier_score",
    "PlattScaler",
    "TemperatureScaler",
    "IsotonicCalibrator",
    "BootstrapInterval",
    "bootstrap_ci",
    "paired_bootstrap_test",
]
