"""Time-resistance evaluation and the Area Under Time metric (§IV-G).

Following TESSERACT (Pendlebury et al.), models train on an early window
(Oct 2023 – Jan 2024) and are tested on consecutive monthly windows. AUT is
the normalized area under the metric-vs-time curve; AUT ∈ [0, 1] with
higher = more robust to temporal drift.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.datagen.dataset import Dataset
from repro.ml.metrics import Metrics, classification_metrics

__all__ = ["area_under_time", "TimeDecayResult", "time_decay_evaluation"]


def area_under_time(values: list[float]) -> float:
    """Trapezoidal area under a unit-spaced metric curve, normalized to [0, 1].

    AUT(f, N) = (1/(N−1)) Σ (f(k) + f(k+1))/2 over the N test periods.
    A single period degenerates to its value.
    """
    values = [float(v) for v in values]
    if not values:
        raise ValueError("need at least one period")
    if any(not 0.0 <= v <= 1.0 for v in values):
        raise ValueError("metric values must lie in [0, 1]")
    if len(values) == 1:
        return values[0]
    pairs = zip(values[:-1], values[1:])
    return float(sum((a + b) / 2.0 for a, b in pairs) / (len(values) - 1))


@dataclass
class TimeDecayResult:
    """One model's month-by-month test metrics (Fig. 8 panel)."""

    model: str
    months: list[int] = field(default_factory=list)
    metrics: list[Metrics] = field(default_factory=list)
    train_seconds: float = 0.0

    def series(self, metric: str) -> list[float]:
        return [m.as_dict()[metric] for m in self.metrics]

    @property
    def aut_f1(self) -> float:
        """AUT of the phishing F1 curve — the paper's headline number."""
        return area_under_time(self.series("f1"))


def time_decay_evaluation(
    dataset: Dataset,
    model_factory,
    model_names: list[str],
    train_months: tuple[int, ...] = (0, 1, 2, 3),
    seed: int = 0,
) -> list[TimeDecayResult]:
    """Train each model once on the early window, test per later month."""
    train, monthly = dataset.temporal_split(train_months=train_months)
    results = []
    for name in model_names:
        model = model_factory(name, seed=seed)
        started = time.perf_counter()
        model.fit(train.bytecodes, train.labels)
        elapsed = time.perf_counter() - started
        result = TimeDecayResult(model=name, train_seconds=elapsed)
        for month, test in monthly:
            predictions = model.predict(test.bytecodes)
            result.months.append(month)
            result.metrics.append(
                classification_metrics(test.labels, predictions)
            )
        results.append(result)
    return results
