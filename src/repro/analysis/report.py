"""Markdown report generation over evaluation artifacts.

Collects the outputs of an evaluation campaign — the Table II metrics, the
post-hoc statistics, optional scalability and time-resistance results —
into a single self-contained markdown document, the artifact a security
team would circulate after running the framework on fresh data.
"""

from __future__ import annotations

import numpy as np

from repro.core.mem import EvaluationResult
from repro.core.pam import METRICS, PostHocReport
from repro.core.registry import MODEL_CATEGORIES

__all__ = ["render_report"]


def _metrics_table(evaluation: EvaluationResult) -> list[str]:
    lines = [
        "| Model | Category | Accuracy (%) | F1 | Precision | Recall |",
        "|-------|----------|-------------:|---:|----------:|-------:|",
    ]
    ranked = sorted(
        evaluation.models(),
        key=lambda m: evaluation.mean_metrics(m).accuracy,
        reverse=True,
    )
    for model in ranked:
        mean = evaluation.mean_metrics(model)
        category = MODEL_CATEGORIES.get(model, "?")
        lines.append(
            f"| {model} | {category} | {mean.accuracy * 100:.2f} "
            f"| {mean.f1 * 100:.2f} | {mean.precision * 100:.2f} "
            f"| {mean.recall * 100:.2f} |"
        )
    return lines


def _timing_table(evaluation: EvaluationResult) -> list[str]:
    lines = [
        "| Model | Train (s) | Inference (s) |",
        "|-------|----------:|--------------:|",
    ]
    for model in evaluation.models():
        train_seconds, inference_seconds = evaluation.mean_times(model)
        lines.append(
            f"| {model} | {train_seconds:.2f} | {inference_seconds:.3f} |"
        )
    return lines


def _posthoc_section(report: PostHocReport) -> list[str]:
    lines = [
        "## Statistical validation",
        "",
        "| Metric | Kruskal–Wallis H | p (Holm-adjusted) | Significant |",
        "|--------|-----------------:|------------------:|-------------|",
    ]
    for metric in METRICS:
        test = report.kruskal[metric]
        adjusted = report.kruskal_adjusted_p[metric]
        verdict = "yes" if adjusted < 0.05 else "no"
        lines.append(
            f"| {metric} | {test.statistic:.2f} | {adjusted:.3g} | {verdict} |"
        )
    lines += [
        "",
        f"Shapiro–Wilk normality violations: "
        f"{report.normality_violations}/{len(report.normality)} "
        f"model-metric pairs (motivates the nonparametric pipeline).",
        "",
        "Significant Dunn pairs (Holm-adjusted, α = 0.05):",
        "",
    ]
    for metric in METRICS:
        overall = report.significant_pair_fraction(metric)
        same = report.pair_fraction_by_category(metric, same_category=True)
        cross = report.pair_fraction_by_category(metric, same_category=False)
        lines.append(
            f"* {metric}: {overall:.0%} of all pairs "
            f"(same-category {same:.0%}, cross-category {cross:.0%})"
        )
    return lines


def render_report(
    evaluation: EvaluationResult,
    post_hoc: PostHocReport | None = None,
    title: str = "PhishingHook evaluation report",
    dataset_size: int | None = None,
) -> str:
    """Render a complete markdown report.

    Args:
        evaluation: The MEM campaign to summarize.
        post_hoc: Optional PAM output; adds the statistics section.
        title: Document heading.
        dataset_size: Optional sample count for the preamble.
    """
    if not evaluation.trials:
        raise ValueError("cannot report on an empty evaluation")
    trials_per_model = len(evaluation.for_model(evaluation.models()[0]))
    best = max(
        evaluation.models(),
        key=lambda m: evaluation.mean_metrics(m).accuracy,
    )
    best_metrics = evaluation.mean_metrics(best)

    lines = [f"# {title}", ""]
    preamble = (
        f"{len(evaluation.models())} models, {trials_per_model} trials each"
    )
    if dataset_size is not None:
        preamble += f", {dataset_size} contracts"
    lines += [
        preamble + ".",
        "",
        f"**Best model:** {best} "
        f"({best_metrics.accuracy * 100:.2f}% accuracy, "
        f"F1 {best_metrics.f1 * 100:.2f}).",
        "",
        "## Model comparison",
        "",
    ]
    lines += _metrics_table(evaluation)
    lines += ["", "## Cost", ""]
    lines += _timing_table(evaluation)
    if post_hoc is not None:
        lines += [""]
        lines += _posthoc_section(post_hoc)

    categories = sorted({
        MODEL_CATEGORIES.get(m) for m in evaluation.models()
        if MODEL_CATEGORIES.get(m)
    })
    if len(categories) > 1:
        lines += ["", "## Category means", ""]
        for category in categories:
            try:
                mean = evaluation.category_mean(category, "accuracy")
            except KeyError:
                continue
            lines.append(f"* {category}: {mean * 100:.2f}% accuracy")
    return "\n".join(lines) + "\n"
