"""Minimal stdlib HTTP client shared by every wire consumer in the repo.

``http.client`` with three opinions layered on top:

* every request carries a **timeout** (an unresponsive peer must cost a
  bounded amount of wall clock, never a hung worker thread),
* every transport-level failure — refused connection, reset, timeout,
  malformed response — surfaces as one typed
  :class:`TransportError` (a ``ConnectionError`` subclass), so callers
  like the fleet coordinator can catch exactly "the peer is gone" and
  reroute, without accidentally swallowing programming errors,
* responses are fully read and the connection closed before returning
  (:class:`HttpResponse` is a plain value), so there is no connection
  state to leak across worker threads.

Non-2xx statuses are *not* errors here: an HTTP 404 or 429 is a
successful conversation with a live peer, and each caller maps status
codes to its own domain (``KeyError`` for a missing store object,
shed/retry for an overloaded worker).
"""

from __future__ import annotations

import http.client
import json
import urllib.parse
from dataclasses import dataclass, field

from repro import faults

__all__ = ["DEFAULT_TIMEOUT", "HttpResponse", "TransportError",
           "http_request", "http_json"]

#: Default per-request timeout (seconds). Generous for scan batches;
#: latency-sensitive callers (webhook sinks, health probes) pass less.
DEFAULT_TIMEOUT = 10.0


class TransportError(ConnectionError):
    """The peer was unreachable, hung up mid-conversation, or timed out.

    Exactly the failure class a dispatcher may respond to by declaring
    the peer dead and rerouting; anything else that escapes
    :func:`http_request` is a caller bug, not a network condition.
    """


@dataclass(frozen=True)
class HttpResponse:
    """One fully-buffered HTTP response (headers lower-cased)."""

    status: int
    reason: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def json(self):
        """Decode the body as JSON (raises ``ValueError`` on garbage)."""
        return json.loads(self.body.decode("utf-8"))


def http_request(
    method: str,
    url: str,
    *,
    body: bytes | None = None,
    headers: dict[str, str] | None = None,
    timeout: float = DEFAULT_TIMEOUT,
) -> HttpResponse:
    """One HTTP exchange; returns :class:`HttpResponse`, raises
    :class:`TransportError` on any transport-level failure.

    ``url`` must be ``http://`` or ``https://``; anything else is a
    ``ValueError`` (a caller bug, not a network condition).
    """
    parsed = urllib.parse.urlsplit(url)
    if parsed.scheme not in ("http", "https"):
        raise ValueError(f"http_request needs an http(s):// URL, got {url!r}")
    if not parsed.hostname:
        raise ValueError(f"no host in URL {url!r}")
    connection_class = (
        http.client.HTTPSConnection
        if parsed.scheme == "https"
        else http.client.HTTPConnection
    )
    connection = connection_class(
        parsed.hostname, parsed.port, timeout=timeout
    )
    path = parsed.path or "/"
    if parsed.query:
        path = f"{path}?{parsed.query}"
    try:
        # Fault points (no-ops without an installed FaultPlan). Injected
        # drops raise inside this block so they surface through the same
        # TransportError wrapping as a real refused/reset connection.
        fault = faults.fire("http.request", context=f"{method} {url}")
        if fault is not None and fault.action == "drop":
            raise faults.InjectedFault(f"injected drop before {method} {url}")
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        data = response.read()
        fault = faults.fire("http.response", context=f"{method} {url}")
        if fault is not None:
            if fault.action == "drop":
                raise faults.InjectedFault(
                    f"injected drop after {method} {url}"
                )
            if fault.action == "corrupt":
                data = bytes(byte ^ 0xFF for byte in data)
        return HttpResponse(
            status=response.status,
            reason=response.reason or "",
            headers={k.lower(): v for k, v in response.getheaders()},
            body=data,
        )
    except (OSError, http.client.HTTPException) as error:
        raise TransportError(
            f"{method} {url}: {error or type(error).__name__}"
        ) from error
    finally:
        connection.close()


def http_json(
    method: str,
    url: str,
    payload=None,
    *,
    timeout: float = DEFAULT_TIMEOUT,
    headers: dict[str, str] | None = None,
) -> HttpResponse:
    """JSON-in convenience over :func:`http_request`."""
    body = None
    merged = dict(headers or {})
    if payload is not None:
        body = json.dumps(payload).encode("utf-8")
        merged.setdefault("Content-Type", "application/json")
    return http_request(
        method, url, body=body, headers=merged, timeout=timeout
    )
