"""Fleet lifecycle: spawn workers, run the coordinator, tear down.

:class:`FleetManager` is the single owner of every cross-process
resource a fleet holds — worker processes, the shared-memory ring, the
coordinator HTTP server — with one lifecycle rule: **workers fork before
any server thread starts**. Forking a multi-threaded parent can
duplicate a thread-held lock into the child and deadlock it; spawning
the whole fleet first keeps the parent single-threaded at fork time.

Startup is synchronous and honest: each worker reports its bound port
(or a startup error) over a pipe *after* its model cold-start completes,
so :meth:`FleetManager.start` returning means every worker is actually
ready to score — not merely forked.

:class:`FleetClient` is the JSON-RPC consumer (used by the CLI and the
tests); :func:`save_fleet_state` / :func:`load_fleet_state` persist the
tiny ``{url, pid}`` state file that lets ``phishinghook fleet
status|scan|stop`` find a daemonized fleet.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time
from pathlib import Path

__all__ = [
    "FleetClient",
    "FleetManager",
    "FleetRpcError",
    "load_fleet_state",
    "save_fleet_state",
]

#: Per-worker cold-start budget (seconds) before start() declares the
#: worker wedged and aborts the launch.
STARTUP_TIMEOUT = 60.0


class FleetRpcError(RuntimeError):
    """A JSON-RPC call failed (HTTP status + server-reported message)."""

    def __init__(self, status: int, code: int, message: str):
        super().__init__(f"HTTP {status} (rpc {code}): {message}")
        self.status = status
        self.code = code
        self.message = message


class FleetManager:
    """Own a fleet end to end: processes, ring, coordinator, server.

    Exactly one of ``model_path`` (an exported artifact file) or
    ``store_url`` + ``model_ref`` (a ModelStore pull — the production
    path) selects where workers load their model from.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        store_url: str = "",
        model_ref: str = "",
        model_path: str = "",
        cache_dir: str = "",
        threshold: float = 0.5,
        worker_shards: int = 1,
        cache_entries: int = 8192,
        queue_depth: int = 4,
        overflow: str = "shed",
        ship_features: bool = True,
        slots: int = 0,
        slot_bytes: int = 1 << 20,
        shared_cache: bool = False,
        shared_cache_slots: int = 0,
        shared_cache_slot_bytes: int = 0,
        mmap: bool = False,
        host: str = "127.0.0.1",
        port: int = 0,
        sinks=(),
        http_timeout: float = 10.0,
        supervise: bool = False,
        heartbeat_seconds: float = 0.5,
        max_respawns: int = 3,
        respawn_backoff_seconds: float = 0.2,
        respawn_backoff_max: float = 5.0,
    ):
        if workers < 1:
            raise ValueError("workers must be positive")
        if bool(model_path) == bool(model_ref or store_url):
            raise ValueError(
                "pass either model_path or store_url+model_ref, not both"
            )
        self.workers = workers
        self.store_url = store_url
        self.model_ref = model_ref
        self.model_path = model_path
        self.cache_dir = cache_dir
        self.threshold = threshold
        self.worker_shards = worker_shards
        self.cache_entries = cache_entries
        self.queue_depth = queue_depth
        self.overflow = overflow
        self.ship_features = ship_features
        # Depth of the feature ring: enough slots that every worker can
        # have a full queue of shm batches in flight plus headroom, so a
        # healthy fleet never falls back to inline shipping.
        self.slots = slots or workers * queue_depth * 2
        self.slot_bytes = slot_bytes
        # Host-wide shared feature cache: one entry per unique bytecode
        # resident across batches. Entries hold [code][ids]; a single
        # contract fits one ring slot, so the ring's slot size is the
        # right default here too.
        self.shared_cache = shared_cache
        self.shared_cache_slots = shared_cache_slots or 256
        self.shared_cache_slot_bytes = shared_cache_slot_bytes or slot_bytes
        self.mmap = mmap
        self.host = host
        self.port = port
        self.sinks = list(sinks)
        self.http_timeout = http_timeout
        # Supervision is opt-in: without it a dead worker stays dead and
        # the coordinator just routes around it (the PR-7 behaviour some
        # tests pin). With it, a heartbeat thread respawns crashed
        # workers with exponential backoff and quarantines a worker
        # whose respawns keep failing.
        self.supervise = supervise
        self.heartbeat_seconds = heartbeat_seconds
        self.max_respawns = max_respawns
        self.respawn_backoff_seconds = respawn_backoff_seconds
        self.respawn_backoff_max = respawn_backoff_max
        self.coordinator = None
        self.ring = None
        self.shared = None
        self._processes: list = []
        self._server = None
        self._server_thread = None
        self._supervisor_thread = None
        self._supervisor_wake = threading.Event()
        self._respawn_failures: dict[int, int] = {}
        self._probe_failures: dict[int, int] = {}
        self._stopped = False
        self._url = ""

    # ------------------------------------------------------------------ #

    def _worker_spec(self, index: int):
        from repro.net.worker import WorkerSpec

        return WorkerSpec(
            index=index,
            store_url=self.store_url,
            model_ref=self.model_ref,
            model_path=self.model_path,
            cache_dir=self.cache_dir,
            threshold=self.threshold,
            shards=self.worker_shards,
            cache_entries=self.cache_entries,
            ring_name=self.ring.name if self.ring is not None else "",
            ring_slots=self.slots if self.ring is not None else 0,
            ring_slot_bytes=(
                self.slot_bytes if self.ring is not None else 0
            ),
            shared_name=(
                self.shared.name if self.shared is not None else ""
            ),
            shared_slots=(
                self.shared_cache_slots if self.shared is not None else 0
            ),
            shared_slot_bytes=(
                self.shared_cache_slot_bytes
                if self.shared is not None else 0
            ),
            mmap=self.mmap,
            host=self.host,
        )

    def _spawn_worker(self, index: int, context):
        """Fork/spawn one worker process; returns ``(process, receiver)``."""
        from repro.net.worker import worker_main

        receiver, sender = context.Pipe(duplex=False)
        process = context.Process(
            target=worker_main, args=(self._worker_spec(index), sender),
            name=f"fleet-worker-{index}", daemon=True,
        )
        process.start()
        sender.close()
        return process, receiver

    @staticmethod
    def _await_ready(index: int, receiver,
                     timeout: float = STARTUP_TIMEOUT) -> dict:
        """Wait for a worker's readiness report; raises on error/timeout."""
        try:
            if not receiver.poll(timeout):
                raise RuntimeError(
                    f"worker {index} did not report readiness within "
                    f"{timeout:.0f}s"
                )
            report = receiver.recv()
        except (EOFError, OSError):
            raise RuntimeError(
                f"worker {index} died before reporting readiness"
            ) from None
        finally:
            receiver.close()
        if "error" in report:
            raise RuntimeError(
                f"worker {index} failed to start: {report['error']}"
            )
        return report

    def start(self) -> "FleetManager":
        """Spawn workers, wait for readiness, start the coordinator."""
        from repro.net.coordinator import FleetCoordinator, WorkerHandle
        from repro.net.shm import ShmRing

        cache = None
        if self.ship_features:
            from repro.serve.cache import FeatureCache

            cache = FeatureCache(max_entries=self.cache_entries)
            self.ring = ShmRing.create(self.slots, self.slot_bytes)
            if self.shared_cache:
                from repro.net.shared_cache import ShmFeatureCache

                self.shared = ShmFeatureCache.create(
                    self.shared_cache_slots, self.shared_cache_slot_bytes
                )

        context = multiprocessing.get_context()
        pending = []
        for index in range(self.workers):
            process, receiver = self._spawn_worker(index, context)
            pending.append((index, process, receiver))
            self._processes.append(process)

        handles = []
        try:
            for index, process, receiver in pending:
                report = self._await_ready(index, receiver)
                handle = WorkerHandle(
                    index, self.host, report["port"], process=process
                )
                handle.degraded = bool(report.get("degraded", False))
                handles.append(handle)
        except Exception:
            self._kill_all()
            if self.ring is not None:
                self.ring.unlink()
            if self.shared is not None:
                self.shared.unlink()
            raise

        self.coordinator = FleetCoordinator(
            handles,
            cache=cache,
            ring=self.ring,
            shared=self.shared,
            queue_depth=self.queue_depth,
            overflow=self.overflow,
            ship_features=self.ship_features,
            timeout=self.http_timeout,
            sinks=self.sinks,
        )
        # Only now — with every child forked — is it safe to go
        # multi-threaded in this process.
        self._server = self.coordinator.serve(
            self.host, self.port, on_shutdown=lambda: self.stop(),
        )
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="fleet-coordinator", daemon=True,
        )
        self._server_thread.start()
        self._url = (f"http://{self.host}:"
                     f"{self._server.server_address[1]}")
        if self.supervise:
            self._supervisor_thread = threading.Thread(
                target=self._supervise_loop,
                name="fleet-supervisor", daemon=True,
            )
            self._supervisor_thread.start()
        return self

    @property
    def url(self) -> str:
        """Coordinator base URL (empty before :meth:`start`)."""
        return self._url

    @property
    def stopped(self) -> bool:
        """Whether :meth:`stop` ran (e.g. via ``POST /shutdown``)."""
        return self._stopped

    # ------------------------------------------------------------------ #
    # In-process conveniences (the CLI foreground path and tests)
    # ------------------------------------------------------------------ #

    def scan(self, addresses, codes, **kwargs) -> list[dict]:
        return self.coordinator.scan(addresses, codes, **kwargs)

    def status(self) -> dict:
        return self.coordinator.status()

    def invalidate_namespace(self, namespace: str) -> dict:
        """Evict one local-cache namespace on every alive worker (and
        the coordinator's decode cache); see
        :meth:`FleetCoordinator.invalidate_namespace`."""
        return self.coordinator.invalidate_namespace(namespace)

    def kill_worker(self, index: int) -> int:
        """SIGKILL one worker (crash-injection for tests); returns pid."""
        process = self._processes[index]
        pid = process.pid
        process.kill()
        process.join(timeout=5)
        return pid

    # ------------------------------------------------------------------ #
    # Supervision (opt-in; see __init__)
    # ------------------------------------------------------------------ #

    def _supervise_loop(self) -> None:
        """Heartbeat thread: detect dead workers, respawn, quarantine."""
        while not self._stopped:
            self._supervisor_wake.wait(self.heartbeat_seconds)
            if self._stopped or self.coordinator is None:
                return
            if self.coordinator.draining:
                continue
            for worker in self.coordinator.workers:
                if self._stopped:
                    return
                if worker.state == "quarantined":
                    continue
                self._check_worker(worker)

    def _check_worker(self, worker) -> None:
        from repro.net.client import TransportError, http_request

        process = worker.process
        if process is not None and not process.is_alive():
            if worker.alive:
                self.coordinator.mark_dead(worker)
            self._respawn(worker)
            return
        if not worker.alive:
            # The dispatcher declared it dead (TransportError mid-batch)
            # even though the OS may still be reaping it.
            self._respawn(worker)
            return
        # Liveness probe: catches a wedged-but-running worker, and
        # carries back the degraded flag a respawned worker raises when
        # it cold-started from the spool with the store unreachable.
        try:
            payload = http_request(
                "GET", f"{worker.url}/healthz",
                timeout=max(self.heartbeat_seconds, 1.0),
            ).json()
        except (TransportError, ValueError):
            failures = self._probe_failures.get(worker.index, 0) + 1
            self._probe_failures[worker.index] = failures
            if failures >= 3:
                self.coordinator.mark_dead(worker)
                self._respawn(worker)
            return
        self._probe_failures[worker.index] = 0
        worker.degraded = bool(payload.get("degraded", False))

    def _respawn(self, worker) -> None:
        """One respawn attempt with exponential backoff.

        Uses the ``spawn`` multiprocessing context: by the time a worker
        needs replacing this process runs server threads, and forking a
        multi-threaded parent can duplicate a held lock into the child
        (the exact hazard the start-before-threads rule exists for).
        ``WorkerSpec`` is picklable by design, so spawn costs only a
        fresh interpreter — and the model cold start is warm anyway
        whenever the store spool (``cache_dir``) survived the crash.
        """
        index = worker.index
        worker.state = "respawning"
        old = worker.process
        if old is not None:
            if old.is_alive():
                old.kill()
            old.join(timeout=5)
        failures = self._respawn_failures.get(index, 0)
        delay = min(
            self.respawn_backoff_seconds * (2 ** failures),
            self.respawn_backoff_max,
        )
        if self._supervisor_wake.wait(delay) or self._stopped:
            return
        context = multiprocessing.get_context("spawn")
        try:
            process, receiver = self._spawn_worker(index, context)
        except Exception:
            self._note_respawn_failure(worker)
            return
        try:
            report = self._await_ready(index, receiver)
        except RuntimeError:
            if process.is_alive():
                process.kill()
            process.join(timeout=5)
            self._note_respawn_failure(worker)
            return
        if self._stopped:
            process.kill()
            process.join(timeout=5)
            return
        self._processes[index] = process
        self._respawn_failures[index] = 0
        worker.revive(
            report["port"], process,
            degraded=bool(report.get("degraded", False)),
        )

    def _note_respawn_failure(self, worker) -> None:
        failures = self._respawn_failures.get(worker.index, 0) + 1
        self._respawn_failures[worker.index] = failures
        if failures >= self.max_respawns:
            worker.state = "quarantined"

    # ------------------------------------------------------------------ #

    def _kill_all(self) -> None:
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():
                process.kill()
                process.join(timeout=2)

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Drain, stop workers gracefully, tear everything down."""
        if self._stopped:
            return
        self._stopped = True
        self._supervisor_wake.set()
        if self._supervisor_thread is not None:
            self._supervisor_thread.join(timeout=10)
        if self.coordinator is not None and drain:
            self.coordinator.drain(timeout=timeout)
        if self.coordinator is not None:
            from repro.net.client import TransportError, http_json

            for worker in self.coordinator.workers:
                if not worker.alive:
                    continue
                try:
                    http_json("POST", f"{worker.url}/shutdown", {},
                              timeout=2.0)
                except TransportError:
                    pass
        self._kill_all()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            if self._server_thread is not None:
                self._server_thread.join(timeout=5)
        if self.ring is not None:
            self.ring.unlink()
        if self.shared is not None:
            self.shared.unlink()
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "FleetManager":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def _connection_refused(error: BaseException) -> bool:
    """Whether a TransportError wraps a refused TCP connect.

    Refused-connect is the one transport failure that is always safe to
    retry blindly: the server never accepted the connection, so the
    request cannot have had any effect. It is also exactly what a
    ``fleet start`` client sees in the window between the coordinator
    process launching and its socket binding.
    """
    cause = error.__cause__
    return isinstance(cause, ConnectionRefusedError)


class FleetClient:
    """JSON-RPC consumer of a coordinator (CLI ``fleet scan|status``).

    ``connect_retry`` (a :class:`repro.net.retry.RetryPolicy`) bounds
    how long the client re-dials a refused connection before giving up —
    closing the ``fleet start`` race where the daemonized coordinator's
    socket is not bound yet when the first health poll arrives. Only
    refused connects are retried; a reset or timeout mid-request is
    surfaced immediately (the request may have been acted on).
    """

    def __init__(self, base_url: str, timeout: float = 30.0,
                 *, connect_retry=None):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        if connect_retry is None:
            from repro.net.retry import RetryPolicy

            connect_retry = RetryPolicy(
                attempts=10, base_delay=0.05, max_delay=0.5
            )
        self.connect_retry = connect_retry

    def _exchange(self, send):
        return self.connect_retry.call(
            send, should_retry=_connection_refused
        )

    def rpc(self, method: str, params: dict | None = None):
        from repro.net.client import http_json

        response = self._exchange(lambda: http_json(
            "POST", f"{self.base_url}/rpc",
            {"jsonrpc": "2.0", "id": 1, "method": method,
             "params": params or {}},
            timeout=self.timeout,
        ))
        try:
            payload = response.json()
        except ValueError:
            payload = {}
        if "error" in payload:
            error = payload["error"]
            raise FleetRpcError(
                response.status, int(error.get("code", 0)),
                str(error.get("message", "")),
            )
        if not response.ok:
            raise FleetRpcError(response.status, 0,
                                response.body[:200].decode("latin-1"))
        return payload.get("result")

    def scan(self, addresses, codes, *, block_number: int = 0,
             timestamp: int | None = None) -> list[dict]:
        hex_codes = [
            c if isinstance(c, str) else bytes(c).hex() for c in codes
        ]
        params = {
            "addresses": list(addresses),
            "codes": hex_codes,
            "block_number": block_number,
        }
        if timestamp is not None:
            params["timestamp"] = timestamp
        return self.rpc("scan", params)["results"]

    def status(self) -> dict:
        return self.rpc("status")

    def invalidate(self, namespace: str) -> dict:
        """Fleet-wide namespace eviction; returns per-worker counts."""
        return self.rpc("invalidate", {"namespace": namespace})

    def ping(self) -> bool:
        return bool(self.rpc("ping").get("pong"))

    def healthz(self) -> dict:
        from repro.net.client import http_request

        return self._exchange(lambda: http_request(
            "GET", f"{self.base_url}/healthz", timeout=self.timeout
        )).json()

    def shutdown(self) -> bool:
        from repro.net.client import TransportError, http_json

        try:
            return http_json(
                "POST", f"{self.base_url}/shutdown", {},
                timeout=self.timeout,
            ).ok
        except TransportError:
            # The coordinator may die between the reply and our read.
            return True


# ---------------------------------------------------------------------- #
# Daemon state file (``phishinghook fleet start`` writes it; status/
# scan/stop read it back)
# ---------------------------------------------------------------------- #


def save_fleet_state(path, *, url: str, pid: int | None = None) -> None:
    state = {"url": url, "pid": pid if pid is not None else os.getpid()}
    Path(path).write_text(json.dumps(state, indent=2) + "\n",
                          encoding="utf-8")


def load_fleet_state(path) -> dict:
    """Read a fleet state file; raises ``FileNotFoundError`` when no
    fleet was started and ``ValueError`` on a corrupt file."""
    text = Path(path).read_text(encoding="utf-8")
    state = json.loads(text)
    if "url" not in state:
        raise ValueError(f"fleet state file {path} has no url")
    return state
