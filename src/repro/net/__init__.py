"""Distributed serving fleet over HTTP (``repro.net``).

Everything below one roof scaled *inside* a process: flat kernels
(:mod:`repro.ml.flat`), thread-sharded streaming (:mod:`repro.stream`),
artifact cold starts (:mod:`repro.artifacts`). This package is the first
layer that crosses a process boundary — the ROADMAP's "millions of
users" north star needs real processes and a real wire:

* :mod:`repro.net.client` — stdlib ``http.client`` helpers (timeouts,
  typed transport errors) shared by every HTTP consumer in the repo
  (fleet dispatch, ``HttpStoreBackend``, the promoted ``WebhookSink``),
* :mod:`repro.net.shm` — :class:`ShmRing`, a fixed-slot
  ``multiprocessing.shared_memory`` ring carrying numpy feature blocks
  coordinator → worker zero-copy,
* :mod:`repro.net.shared_cache` — :class:`ShmFeatureCache`, the
  cross-*batch* promotion of the ring's per-batch dedup: a digest-keyed
  shared-memory table where each unique bytecode (and its decoded
  mnemonic-id block) lands once per host, referenced by every later
  request from every worker,
* :mod:`repro.net.worker` — the worker process: one
  :class:`~repro.serve.service.ScanService` cold-started from the
  ModelStore behind a private HTTP port,
* :mod:`repro.net.coordinator` — address-sharded dispatch, bounded
  per-worker admission control (429/shed or block), crash rerouting
  with zero lost events, drain-on-shutdown, and the public
  HTTP/JSON-RPC scan+monitor API,
* :mod:`repro.net.fleet` — :class:`FleetManager` (spawn/collect/stop
  lifecycle, plus opt-in worker supervision: heartbeat liveness,
  spawn-context respawn with exponential backoff, quarantine after
  repeated failures) and :class:`FleetClient` (the JSON-RPC consumer
  the CLI and tests use, with bounded refused-connect retry),
* :mod:`repro.net.retry` — the shared :class:`RetryPolicy` (jittered
  exponential backoff) and :class:`CircuitBreaker` (closed/open/
  half-open) every network edge uses,
* :mod:`repro.net.store_http` — the ``phishinghook store-serve``
  endpoint: any :class:`~repro.artifacts.backends.StoreBackend` served
  over HTTP with ETag headers, so fleet workers pull ``production``
  with no shared mount.

Failure behaviour is testable on purpose: :mod:`repro.faults` fault
points are compiled into the client, worker, and store server, and the
chaos suite drives seeded :class:`~repro.faults.FaultPlan`\\ s through
them asserting alert-set equality (or dead-letter accounting) after
every injected crash, 5xx storm, stall, and truncation.

The deploy rule engine knows this layer too: ``[fleet]`` and
``[fault_tolerance]`` configs are statically verified (rules D017–D024)
before anything forks.
"""

from repro.net.client import (
    HttpResponse,
    TransportError,
    http_json,
    http_request,
)
from repro.net.coordinator import (
    FleetCoordinator,
    NoWorkersError,
    OverloadedError,
    ShuttingDownError,
    WorkerHandle,
)
from repro.net.fleet import (
    FleetClient,
    FleetManager,
    FleetRpcError,
    load_fleet_state,
    save_fleet_state,
)
from repro.net.retry import CircuitBreaker, CircuitOpenError, RetryPolicy
from repro.net.shared_cache import SharedEntry, ShmFeatureCache
from repro.net.shm import ShmRing, SlotTooSmallError
from repro.net.store_http import serve_store
from repro.net.worker import WorkerSpec, worker_main

__all__ = [
    # client
    "HttpResponse",
    "TransportError",
    "http_request",
    "http_json",
    # retry/breaker
    "RetryPolicy",
    "CircuitBreaker",
    "CircuitOpenError",
    # shm
    "ShmRing",
    "SlotTooSmallError",
    # shared feature cache
    "ShmFeatureCache",
    "SharedEntry",
    # worker
    "WorkerSpec",
    "worker_main",
    # coordinator
    "FleetCoordinator",
    "WorkerHandle",
    "OverloadedError",
    "NoWorkersError",
    "ShuttingDownError",
    # fleet
    "FleetManager",
    "FleetClient",
    "FleetRpcError",
    "save_fleet_state",
    "load_fleet_state",
    # store over http
    "serve_store",
]
