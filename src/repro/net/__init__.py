"""Distributed serving fleet over HTTP (``repro.net``).

Everything below one roof scaled *inside* a process: flat kernels
(:mod:`repro.ml.flat`), thread-sharded streaming (:mod:`repro.stream`),
artifact cold starts (:mod:`repro.artifacts`). This package is the first
layer that crosses a process boundary — the ROADMAP's "millions of
users" north star needs real processes and a real wire:

* :mod:`repro.net.client` — stdlib ``http.client`` helpers (timeouts,
  typed transport errors) shared by every HTTP consumer in the repo
  (fleet dispatch, ``HttpStoreBackend``, the promoted ``WebhookSink``),
* :mod:`repro.net.shm` — :class:`ShmRing`, a fixed-slot
  ``multiprocessing.shared_memory`` ring carrying numpy feature blocks
  coordinator → worker zero-copy (each unique bytecode is decoded once
  per *host*, not once per worker),
* :mod:`repro.net.worker` — the worker process: one
  :class:`~repro.serve.service.ScanService` cold-started from the
  ModelStore behind a private HTTP port,
* :mod:`repro.net.coordinator` — address-sharded dispatch, bounded
  per-worker admission control (429/shed or block), crash rerouting
  with zero lost events, drain-on-shutdown, and the public
  HTTP/JSON-RPC scan+monitor API,
* :mod:`repro.net.fleet` — :class:`FleetManager` (spawn/collect/stop
  lifecycle) and :class:`FleetClient` (the JSON-RPC consumer the CLI
  and tests use),
* :mod:`repro.net.store_http` — the ``phishinghook store-serve``
  endpoint: any :class:`~repro.artifacts.backends.StoreBackend` served
  over HTTP with ETag headers, so fleet workers pull ``production``
  with no shared mount.

The deploy rule engine knows this layer too: ``[fleet]`` configs are
statically verified (rules D017–D020) before anything forks.
"""

from repro.net.client import (
    HttpResponse,
    TransportError,
    http_json,
    http_request,
)
from repro.net.coordinator import (
    FleetCoordinator,
    NoWorkersError,
    OverloadedError,
    ShuttingDownError,
    WorkerHandle,
)
from repro.net.fleet import (
    FleetClient,
    FleetManager,
    FleetRpcError,
    load_fleet_state,
    save_fleet_state,
)
from repro.net.shm import ShmRing, SlotTooSmallError
from repro.net.store_http import serve_store
from repro.net.worker import WorkerSpec, worker_main

__all__ = [
    # client
    "HttpResponse",
    "TransportError",
    "http_request",
    "http_json",
    # shm
    "ShmRing",
    "SlotTooSmallError",
    # worker
    "WorkerSpec",
    "worker_main",
    # coordinator
    "FleetCoordinator",
    "WorkerHandle",
    "OverloadedError",
    "NoWorkersError",
    "ShuttingDownError",
    # fleet
    "FleetManager",
    "FleetClient",
    "FleetRpcError",
    "save_fleet_state",
    "load_fleet_state",
    # store over http
    "serve_store",
]
