"""Fleet coordinator: sharded dispatch, admission control, reroute.

The coordinator is the only public face of a fleet. It owns:

* **Address-sharded dispatch.** Each scan event routes to worker
  ``crc32(address) % workers`` — the same hash the in-process streaming
  scanner uses — so one address's history always lands on one worker's
  cache. When that worker is dead, the batch deterministically falls to
  the next alive index; nothing is dropped.
* **Admission control.** Per-worker in-flight batches are bounded by
  ``queue_depth``. On overflow the ``overflow`` policy either *sheds*
  (:class:`OverloadedError`, surfaced as HTTP 429 — callers retry) or
  *blocks* the submitting thread until capacity frees (lossless,
  latency-paying). Draining fleets refuse new work
  (:class:`ShuttingDownError` → 503) but finish everything admitted.
* **Crash rerouting.** A :class:`~repro.net.client.TransportError` from
  a worker marks it dead and re-sends the *whole batch* to the next
  alive worker; since a worker that died mid-request never delivered a
  response, re-sending cannot double-alert and not re-sending would
  lose events. The alert-set equality tests pin this down.
* **Zero-copy feature handoff.** Unique bytecodes are decoded once per
  host through the coordinator's :class:`~repro.serve.cache.FeatureCache`
  and the ``uint8`` ids blocks travel to workers through a
  :class:`~repro.net.shm.ShmRing` slot; the HTTP body carries only slot
  geometry. With a :class:`~repro.net.shared_cache.ShmFeatureCache`
  attached, popular bytecodes skip even the per-batch slot write: the
  request references the host-wide entry (pinned for the exchange) and
  only table misses ride the ring. A full ring or an oversized payload
  degrades to inline hex shipping — counted, never fatal.
* **The monitor plane.** Flagged results become real
  :class:`~repro.stream.scanner.StreamAlert` objects fanned out to the
  configured sinks, and :meth:`FleetCoordinator.status` reports
  per-worker counters plus client-observed p50/p95/p99 batch latency.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

__all__ = [
    "FleetCoordinator",
    "NoWorkersError",
    "OverloadedError",
    "ShuttingDownError",
    "WorkerHandle",
]

#: Bound on the client-side latency sample window (matches the spirit of
#: ``repro.stream``'s LATENCY_WINDOW, smaller because one sample here is
#: a whole batch).
LATENCY_WINDOW = 4096


class OverloadedError(RuntimeError):
    """Admission control shed this batch (HTTP 429; retry later)."""


class NoWorkersError(RuntimeError):
    """Every worker is dead (HTTP 503; the fleet needs an operator)."""


class ShuttingDownError(RuntimeError):
    """The fleet is draining and admits no new work (HTTP 503)."""


class WorkerHandle:
    """Coordinator-side view of one worker process.

    Health model: ``alive`` is the routing bit (only alive workers get
    batches); ``state`` is the operator-facing life-cycle —
    ``alive`` → ``dead`` (crash detected) → ``respawning`` (supervisor
    restarting it) → back to ``alive``, or ``quarantined`` after the
    supervisor gives up (``max_respawns`` consecutive failures).
    ``respawns`` counts successful restarts; ``degraded`` mirrors the
    worker's own report (serving from the local artifact cache because
    the store is unreachable).
    """

    def __init__(self, index: int, host: str, port: int, process=None):
        self.index = index
        self.host = host
        self.port = port
        self.process = process
        self.alive = True
        self.state = "alive"
        self.respawns = 0
        self.degraded = False
        self.inflight = 0
        self.capacity = threading.Condition()
        self.dispatched = 0
        self.completed = 0
        self.failed = 0

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def revive(self, port: int, process=None, *,
               degraded: bool = False) -> None:
        """Point this handle at a freshly respawned process.

        The port/process swap and the ``alive`` flip happen under the
        capacity condition so threads blocked in admission wake up and
        route to the new process, never a half-updated handle.
        """
        with self.capacity:
            self.port = port
            if process is not None:
                self.process = process
            self.alive = True
            self.state = "alive"
            self.degraded = degraded
            self.respawns += 1
            self.capacity.notify_all()

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "url": self.url,
            "pid": self.process.pid if self.process is not None else None,
            "alive": self.alive,
            "state": self.state,
            "respawns": self.respawns,
            "degraded": self.degraded,
            "inflight": self.inflight,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "failed": self.failed,
        }


class FleetCoordinator:
    """Dispatch scans across :class:`WorkerHandle`\\ s; see module docs.

    Args:
        workers: Worker handles; their list order defines the shard
            space (``crc32(address) % len(workers)``), which stays fixed
            even as workers die — only the *fallback* target moves.
        cache: Host-wide :class:`~repro.serve.cache.FeatureCache` used
            to decode each unique bytecode once; required when
            ``ship_features``.
        ring: :class:`~repro.net.shm.ShmRing` for zero-copy handoff
            (``None`` → inline shipping).
        shared: :class:`~repro.net.shared_cache.ShmFeatureCache` holding
            each unique bytecode + decoded ids once per host across
            batches; requests reference entries by slot instead of
            re-shipping, and only codes missing from the table fall
            through to the ring / inline path (``None`` → per-batch
            shipping only).
        queue_depth: Max in-flight batches per worker.
        overflow: ``"shed"`` (raise :class:`OverloadedError`) or
            ``"block"`` (wait for capacity).
        ship_features: Also ship decoded ids blocks (not just bytecode).
        timeout: Per-request worker HTTP timeout (seconds).
        sinks: :class:`~repro.stream.sinks.AlertSink` list for flagged
            results.
    """

    def __init__(
        self,
        workers,
        *,
        cache=None,
        ring=None,
        shared=None,
        queue_depth: int = 4,
        overflow: str = "shed",
        ship_features: bool = True,
        timeout: float = 10.0,
        sinks=(),
    ):
        if not workers:
            raise ValueError("a fleet needs at least one worker")
        if queue_depth < 1:
            raise ValueError("queue_depth must be positive")
        if overflow not in ("shed", "block"):
            raise ValueError(f"unknown overflow policy {overflow!r}")
        if ship_features and ring is not None and cache is None:
            raise ValueError("ship_features over shm needs a FeatureCache")
        if shared is not None and cache is None:
            raise ValueError("a shared feature cache needs a FeatureCache "
                             "to decode misses")
        self.workers = list(workers)
        self.cache = cache
        self.ring = ring
        self.shared = shared
        self.queue_depth = queue_depth
        self.overflow = overflow
        self.ship_features = ship_features
        self.timeout = timeout
        self.sinks = list(sinks)
        self._lock = threading.Lock()
        self._draining = False
        self._batch_counter = 0
        self._latencies: deque = deque(maxlen=LATENCY_WINDOW)
        self.counters = {
            "batches": 0,
            "scanned": 0,
            "flagged": 0,
            "alerts": 0,
            "shed": 0,
            "rerouted": 0,
            "shm_batches": 0,
            "inline_batches": 0,
            "ring_full": 0,
            "slot_too_small": 0,
            "shared_cache_hits": 0,
            "shared_cache_stores": 0,
            "shared_cache_fallback": 0,
        }

    # ------------------------------------------------------------------ #
    # Routing + admission
    # ------------------------------------------------------------------ #

    def alive_workers(self) -> list[WorkerHandle]:
        return [w for w in self.workers if w.alive]

    def _worker_for(self, shard: int, skip=()) -> WorkerHandle | None:
        """Preferred worker for a shard, falling to the next alive index.

        The fallback is deterministic (``shard + k`` mod worker count) so
        a rerouted address keeps landing on the *same* substitute until
        the fleet membership changes again.
        """
        n = len(self.workers)
        for k in range(n):
            worker = self.workers[(shard + k) % n]
            if worker.alive and worker.index not in skip:
                return worker
        return None

    def _admit(self, worker: WorkerHandle) -> bool:
        """Reserve one in-flight unit on ``worker``; see ``overflow``."""
        with worker.capacity:
            if self.overflow == "shed":
                if worker.inflight >= self.queue_depth:
                    with self._lock:
                        self.counters["shed"] += 1
                    raise OverloadedError(
                        f"worker {worker.index} at queue_depth="
                        f"{self.queue_depth}"
                    )
            else:
                while (worker.alive and not self._draining
                       and worker.inflight >= self.queue_depth):
                    worker.capacity.wait(timeout=0.1)
                if not worker.alive:
                    return False
                if self._draining:
                    raise ShuttingDownError("fleet is draining")
            worker.inflight += 1
            worker.dispatched += 1
            return True

    def _release(self, worker: WorkerHandle) -> None:
        with worker.capacity:
            worker.inflight = max(0, worker.inflight - 1)
            worker.capacity.notify_all()

    def mark_dead(self, worker: WorkerHandle) -> None:
        with worker.capacity:
            worker.alive = False
            if worker.state not in ("quarantined", "respawning"):
                worker.state = "dead"
            worker.capacity.notify_all()

    def degraded_workers(self) -> list[WorkerHandle]:
        """Alive workers serving from cache because the store is down."""
        return [w for w in self.workers if w.alive and w.degraded]

    def quarantined_workers(self) -> list[WorkerHandle]:
        return [w for w in self.workers if w.state == "quarantined"]

    # ------------------------------------------------------------------ #
    # Feature plane
    # ------------------------------------------------------------------ #

    def _build_request(self, addresses, code_of, unique_codes):
        """Wire payload + leases: shared-cache refs, then shm, then inline.

        Returns ``(payload_dict, slot_or_None, pinned_slots)``; the
        caller must release the ring slot and unpin every shared-cache
        slot after the HTTP exchange (success or not — the response is
        the fence that makes slot reuse safe).
        """
        payload = {"addresses": list(addresses), "code_of": list(code_of)}
        pinned: list[int] = []
        rest = list(range(len(unique_codes)))
        if self.shared is not None and self.ship_features:
            from repro.serve.cache import bytecode_digest

            shared_refs: dict[str, list[int]] = {}
            rest = []
            hits = stores = fallbacks = 0
            for index, code in enumerate(unique_codes):
                digest = bytecode_digest(code)
                entry = self.shared.pin(digest)
                if entry is None:
                    ids = np.ascontiguousarray(
                        self.cache.mnemonic_ids(code)
                    )
                    entry = self.shared.store(digest, code, ids)
                    stores += int(entry is not None)
                else:
                    hits += 1
                if entry is None:
                    fallbacks += 1
                    rest.append(index)
                    continue
                pinned.append(entry.slot)
                shared_refs[str(index)] = list(entry)
            if shared_refs:
                payload["shared_refs"] = shared_refs
                payload["rest"] = rest
            with self._lock:
                self.counters["shared_cache_hits"] += hits
                self.counters["shared_cache_stores"] += stores
                self.counters["shared_cache_fallback"] += fallbacks
        rest_codes = [unique_codes[index] for index in rest]
        if not rest_codes:
            return payload, None, pinned
        slot = None
        if self.ring is not None and self.ship_features:
            slot = self.ring.acquire()
            if slot is None:
                with self._lock:
                    self.counters["ring_full"] += 1
        if slot is not None:
            ids_blocks = [
                np.ascontiguousarray(self.cache.mnemonic_ids(code))
                for code in rest_codes
            ]
            blocks = list(rest_codes) + ids_blocks
            try:
                self.ring.write_blocks(slot, blocks)
            except Exception as error:
                self.ring.release(slot)
                slot = None
                from repro.net.shm import SlotTooSmallError

                if not isinstance(error, SlotTooSmallError):
                    raise
                with self._lock:
                    self.counters["slot_too_small"] += 1
            else:
                payload["slot"] = slot
                payload["code_lens"] = [len(c) for c in rest_codes]
                payload["ids_lens"] = [
                    b.nbytes for b in ids_blocks
                ]
                with self._lock:
                    self.counters["shm_batches"] += 1
        if slot is None:
            payload["inline_codes"] = [
                bytes(code).hex() for code in rest_codes
            ]
            with self._lock:
                self.counters["inline_batches"] += 1
        return payload, slot, pinned

    # ------------------------------------------------------------------ #
    # Scan path
    # ------------------------------------------------------------------ #

    def _send(self, worker: WorkerHandle, addresses, code_of,
              unique_codes) -> list[dict]:
        """One admission + HTTP exchange with one worker.

        Raises :class:`~repro.net.client.TransportError` when the worker
        is unreachable (the caller reroutes) and :class:`OverloadedError`
        on shed.
        """
        from repro.net.client import http_json

        if not self._admit(worker):
            from repro.net.client import TransportError

            raise TransportError(f"worker {worker.index} died in admission")
        slot = None
        pinned: list[int] = []
        try:
            payload, slot, pinned = self._build_request(
                addresses, code_of, unique_codes
            )
            response = http_json(
                "POST", f"{worker.url}/scan", payload, timeout=self.timeout
            )
            if not response.ok:
                from repro.net.client import TransportError

                raise TransportError(
                    f"worker {worker.index} replied HTTP {response.status}: "
                    f"{response.body[:200]!r}"
                )
            worker.completed += 1
            results = response.json()["results"]
            for result in results:
                result["worker"] = worker.index
            return results
        finally:
            if slot is not None:
                self.ring.release(slot)
            for shared_slot in pinned:
                self.shared.unpin(shared_slot)
            self._release(worker)

    def _dispatch(self, shard: int, addresses, code_of,
                  unique_codes) -> list[dict]:
        """Send one shard group, rerouting around dead workers."""
        from repro.net.client import TransportError

        last_error = None
        tried: set[int] = set()
        for _ in range(len(self.workers)):
            worker = self._worker_for(shard, skip=tried)
            if worker is None:
                break
            try:
                return self._send(worker, addresses, code_of, unique_codes)
            except TransportError as error:
                worker.failed += 1
                self.mark_dead(worker)
                tried.add(worker.index)
                with self._lock:
                    self.counters["rerouted"] += 1
                last_error = error
        raise NoWorkersError(
            f"no alive worker for shard {shard}"
        ) from last_error

    def scan(self, addresses, codes, *, block_number: int = 0,
             timestamp: int | None = None) -> list[dict]:
        """Scan a batch of ``(address, bytecode)`` pairs across the fleet.

        ``codes`` entries may be ``bytes`` or hex strings. Returns one
        result dict per input, in input order. Raises
        :class:`ShuttingDownError` / :class:`OverloadedError` /
        :class:`NoWorkersError` as described in the module docstring.
        """
        from repro.serve.cache import bytecode_digest
        from repro.stream.scanner import shard_of

        if self._draining:
            raise ShuttingDownError("fleet is draining")
        if not self.alive_workers():
            raise NoWorkersError("all workers are dead")
        if len(addresses) != len(codes):
            raise ValueError("addresses and codes must be parallel lists")
        started = time.perf_counter()
        with self._lock:
            self._batch_counter += 1
            batch_id = self._batch_counter

        raw_codes = [
            bytes.fromhex(c) if isinstance(c, str) else bytes(c)
            for c in codes
        ]
        # Host-level dedup: each unique bytecode is decoded (and shipped)
        # once per batch no matter how many addresses deploy it.
        unique_codes: list[bytes] = []
        index_of: dict[bytes, int] = {}
        code_of: list[int] = []
        for code in raw_codes:
            digest = bytecode_digest(code)
            if digest not in index_of:
                index_of[digest] = len(unique_codes)
                unique_codes.append(code)
            code_of.append(index_of[digest])

        n = len(self.workers)
        groups: dict[int, list[int]] = {}
        for position, address in enumerate(addresses):
            groups.setdefault(shard_of(address, n), []).append(position)

        results: list[dict | None] = [None] * len(addresses)
        for shard, positions in sorted(groups.items()):
            sub_unique: list[bytes] = []
            sub_index: dict[int, int] = {}
            sub_code_of: list[int] = []
            for position in positions:
                u = code_of[position]
                if u not in sub_index:
                    sub_index[u] = len(sub_unique)
                    sub_unique.append(unique_codes[u])
                sub_code_of.append(sub_index[u])
            scored = self._dispatch(
                shard, [addresses[p] for p in positions],
                sub_code_of, sub_unique,
            )
            for position, result in zip(positions, scored):
                results[position] = result

        elapsed = time.perf_counter() - started
        flagged = [r for r in results if r and r["is_phishing"]]
        with self._lock:
            self.counters["batches"] += 1
            self.counters["scanned"] += len(addresses)
            self.counters["flagged"] += len(flagged)
            self._latencies.append(elapsed)
        self._emit_alerts(flagged, batch_id=batch_id, elapsed=elapsed,
                          block_number=block_number, timestamp=timestamp)
        return [dict(r) for r in results]

    def _emit_alerts(self, flagged, *, batch_id: int, elapsed: float,
                     block_number: int, timestamp: int | None) -> None:
        if not flagged or not self.sinks:
            if flagged:
                with self._lock:
                    self.counters["alerts"] += len(flagged)
            return
        from repro.stream.scanner import StreamAlert, shard_of

        stamp = int(time.time()) if timestamp is None else int(timestamp)
        n = len(self.workers)
        for result in flagged:
            alert = StreamAlert(
                address=result["address"],
                probability=float(result["probability"]),
                block_number=int(block_number),
                timestamp=stamp,
                latency_seconds=elapsed,
                shard=shard_of(result["address"], n),
                batch_id=batch_id,
                from_cache=bool(result.get("from_cache", False)),
            )
            for sink in self.sinks:
                sink.emit(alert)
        with self._lock:
            self.counters["alerts"] += len(flagged)

    # ------------------------------------------------------------------ #
    # Cache plane
    # ------------------------------------------------------------------ #

    def invalidate_namespace(self, namespace: str) -> dict:
        """Evict one :class:`FeatureCache` namespace host-wide.

        Fans a ``POST /invalidate`` out to every alive worker (each owns
        a private local cache) after dropping the namespace from the
        coordinator's own decode cache. The host-wide
        :class:`~repro.net.shared_cache.ShmFeatureCache` is deliberately
        untouched: it holds bytecodes and decoded mnemonic ids keyed by
        content digest — model-independent features that stay valid
        across promotions. Only per-model *prediction* namespaces go
        stale when the serving model changes, and those live exclusively
        in the local caches this method reaches.

        A dead or unreachable worker reports ``None`` (its cache dies
        with the process anyway; a respawn cold-starts empty). Returns
        per-worker eviction counts so callers — the learning loop's
        promotion hook, the ``invalidate`` RPC — can assert the sweep
        actually landed.
        """
        from repro.net.client import TransportError, http_json

        evicted = 0
        if self.cache is not None:
            evicted = self.cache.invalidate_namespace(namespace)
        workers: dict[int, int | None] = {}
        for worker in self.alive_workers():
            try:
                response = http_json(
                    "POST", f"{worker.url}/invalidate",
                    {"namespace": namespace}, timeout=self.timeout,
                )
                if response.ok:
                    workers[worker.index] = int(response.json()["evicted"])
                else:
                    workers[worker.index] = None
            except TransportError:
                workers[worker.index] = None
        return {
            "namespace": namespace,
            "coordinator_evicted": evicted,
            "workers": workers,
            "total_evicted": evicted + sum(
                count for count in workers.values() if count
            ),
        }

    # ------------------------------------------------------------------ #
    # Monitor + lifecycle
    # ------------------------------------------------------------------ #

    def latency_percentiles(self) -> dict[str, float]:
        with self._lock:
            samples = list(self._latencies)
        if not samples:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        data = np.sort(np.asarray(samples))
        return {
            "p50": float(np.percentile(data, 50)),
            "p95": float(np.percentile(data, 95)),
            "p99": float(np.percentile(data, 99)),
        }

    def status(self) -> dict:
        with self._lock:
            counters = dict(self.counters)
        payload = {
            "draining": self._draining,
            "workers": [w.as_dict() for w in self.workers],
            "alive": len(self.alive_workers()),
            "degraded": len(self.degraded_workers()),
            "quarantined": len(self.quarantined_workers()),
            "queue_depth": self.queue_depth,
            "overflow": self.overflow,
            "counters": counters,
            "batch_latency_seconds": self.latency_percentiles(),
            "sinks": {s.name: s.stats.as_dict() for s in self.sinks},
        }
        if self.ring is not None:
            payload["ring"] = {
                "slots": self.ring.slots,
                "slot_bytes": self.ring.slot_bytes,
                "free_slots": self.ring.free_slots,
            }
        if self.shared is not None:
            payload["shared_cache"] = self.shared.stats()
        if self.cache is not None:
            payload["cache"] = self.cache.stats.as_dict()
        return payload

    def drain(self, timeout: float = 30.0) -> bool:
        """Refuse new work and wait for in-flight batches to finish.

        Returns whether everything drained within ``timeout``.
        """
        self._draining = True
        deadline = time.monotonic() + timeout
        for worker in self.workers:
            with worker.capacity:
                worker.capacity.notify_all()
                while worker.inflight > 0:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                    worker.capacity.wait(timeout=min(remaining, 0.1))
        return True

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------ #
    # HTTP/JSON-RPC surface
    # ------------------------------------------------------------------ #

    def serve(self, host: str, port: int,
              on_shutdown=None) -> ThreadingHTTPServer:
        """Build (not start) the coordinator's HTTP server.

        The caller owns the server thread (see
        :class:`~repro.net.fleet.FleetManager`). ``on_shutdown`` runs in
        a fresh thread when ``POST /shutdown`` arrives.
        """
        server = ThreadingHTTPServer(
            (host, port), _make_handler(self, on_shutdown)
        )
        server.daemon_threads = True
        return server


#: JSON-RPC error codes (the relevant subset of the 2.0 spec, plus the
#: fleet's domain codes carried in the HTTP status).
_RPC_METHOD_NOT_FOUND = -32601
_RPC_INVALID_PARAMS = -32602
_RPC_INTERNAL = -32603


def _make_handler(coordinator: FleetCoordinator, on_shutdown):
    class Handler(BaseHTTPRequestHandler):
        def log_message(self, *args):  # noqa: D102
            pass

        def _reply(self, status: int, payload: dict) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self):  # noqa: N802
            if self.path == "/healthz":
                alive = len(coordinator.alive_workers())
                status = 200 if alive and not coordinator.draining else 503
                # Degraded is a *warning* dimension, not a liveness one:
                # the fleet still answers 200 while serving stale-tag
                # cached artifacts or while quarantined workers shrink
                # capacity — operators alert on the flag, clients keep
                # scanning.
                degraded = bool(
                    coordinator.degraded_workers()
                    or coordinator.quarantined_workers()
                )
                self._reply(status, {
                    "ok": status == 200,
                    "alive_workers": alive,
                    "degraded": degraded,
                    "draining": coordinator.draining,
                })
            elif self.path == "/status":
                self._reply(200, coordinator.status())
            else:
                self._reply(404, {"error": f"no route {self.path}"})

        def do_POST(self):  # noqa: N802
            if self.path == "/shutdown":
                self._reply(200, {"ok": True})
                if on_shutdown is not None:
                    threading.Thread(target=on_shutdown, daemon=True).start()
                return
            if self.path != "/rpc":
                self._reply(404, {"error": f"no route {self.path}"})
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
                request = json.loads(self.rfile.read(length))
            except (ValueError, KeyError):
                self._reply(400, {"error": "malformed JSON-RPC request"})
                return
            self._rpc(request)

        def _rpc(self, request: dict) -> None:
            method = request.get("method")
            params = request.get("params") or {}
            request_id = request.get("id")

            def error(status, code, message):
                self._reply(status, {
                    "jsonrpc": "2.0", "id": request_id,
                    "error": {"code": code, "message": message},
                })

            def result(payload):
                self._reply(200, {
                    "jsonrpc": "2.0", "id": request_id, "result": payload,
                })

            try:
                if method == "ping":
                    result({"pong": True})
                elif method == "status":
                    result(coordinator.status())
                elif method == "scan":
                    results = coordinator.scan(
                        params["addresses"],
                        params["codes"],
                        block_number=int(params.get("block_number", 0)),
                        timestamp=params.get("timestamp"),
                    )
                    result({"results": results})
                elif method == "invalidate":
                    result(coordinator.invalidate_namespace(
                        str(params["namespace"])
                    ))
                else:
                    error(400, _RPC_METHOD_NOT_FOUND,
                          f"unknown method {method!r}")
            except (KeyError, TypeError, ValueError) as err:
                error(400, _RPC_INVALID_PARAMS,
                      f"{type(err).__name__}: {err}")
            except OverloadedError as err:
                error(429, _RPC_INTERNAL, str(err))
            except (ShuttingDownError, NoWorkersError) as err:
                error(503, _RPC_INTERNAL, str(err))
            except Exception as err:  # noqa: BLE001
                error(500, _RPC_INTERNAL,
                      f"{type(err).__name__}: {err}")

    return Handler
