"""Fleet worker: one ``ScanService`` process behind a private HTTP port.

A worker is deliberately boring: it cold-starts a
:class:`~repro.serve.service.ScanService` from the ModelStore (exactly
the artifact path every other serving surface uses), splits it into
``shards`` in-process views partitioned by the same crc32 address hash
as the streaming scanner, and answers ``POST /scan`` on a loopback
port it binds itself (port 0 → the kernel picks; the bound port travels
back to the coordinator over a pipe). All fleet intelligence —
sharding, admission control, rerouting — lives in the coordinator; a
worker that dies takes nothing with it but its own in-flight batch,
which the coordinator re-sends elsewhere.

Feature handoff: when the request names a :class:`~repro.net.shm.ShmRing`
slot, the worker builds numpy views over the shared pages and seeds its
:class:`~repro.serve.cache.FeatureCache` ``"ids"`` namespace from them
(copying only on first sight — cache entries must outlive the slot
lease), so the model's extractors hit warm decoded features without the
worker ever disassembling anything the coordinator already decoded.
Requests may also reference entries of the host-wide
:class:`~repro.net.shared_cache.ShmFeatureCache` (``shared_refs``):
those bytecodes and ids blocks never travel at all — any worker,
including one scanning a contract for the first time, reads them
straight out of the shared table. Requests without either carry hex
bytecodes inline (the counted fallback path).

Endpoints:

* ``GET /healthz`` — liveness (used by ``fleet start`` readiness polls),
* ``GET /status`` — per-worker counters + service/cache stats,
* ``POST /scan`` — scan one batch (see :func:`decode_scan_request`),
* ``POST /invalidate`` — drop one local-cache namespace (the learning
  loop evicts a demoted model's prediction rows fleet-wide on
  promotion),
* ``POST /shutdown`` — graceful stop (drains the HTTP server).
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro import faults

__all__ = ["WorkerSpec", "worker_main"]

#: Environment test hook: per-batch scoring delay in seconds. Lets the
#: overload tests create a sustained backlog on a fast machine without
#: patching anything inside a child process.
SCAN_DELAY_ENV = "PHOOK_FLEET_SCAN_DELAY"


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs, picklable for any mp context."""

    index: int
    store_url: str = ""
    model_ref: str = ""
    model_path: str = ""
    cache_dir: str = ""
    threshold: float = 0.5
    shards: int = 1
    cache_entries: int = 8192
    ring_name: str = ""
    ring_slots: int = 0
    ring_slot_bytes: int = 0
    shared_name: str = ""
    shared_slots: int = 0
    shared_slot_bytes: int = 0
    mmap: bool = False
    host: str = "127.0.0.1"


class _WorkerState:
    """Live state shared by the request handler threads."""

    def __init__(self, spec: WorkerSpec):
        from repro.serve.cache import FeatureCache
        from repro.serve.service import ScanService

        self.spec = spec
        self.pid = os.getpid()
        self.store = None
        self.cache = FeatureCache(max_entries=spec.cache_entries)
        mmap_mode = "r" if spec.mmap else None
        if spec.model_path:
            self.service = ScanService.from_artifact(
                spec.model_path, cache=self.cache,
                threshold=spec.threshold, mmap_mode=mmap_mode,
            )
        else:
            from repro.artifacts import ModelStore

            self.store = ModelStore.from_url(
                spec.store_url or None,
                cache_dir=spec.cache_dir or None,
            )
            self.service = ScanService.from_artifact(
                spec.model_ref, store=self.store, cache=self.cache,
                threshold=spec.threshold, mmap_mode=mmap_mode,
            )
        self.shards = self.service.sharded(spec.shards)
        self.ring = None
        if spec.ring_name:
            from repro.net.shm import ShmRing

            self.ring = ShmRing.attach(
                spec.ring_name, spec.ring_slots, spec.ring_slot_bytes
            )
        self.shared = None
        if spec.shared_name:
            from repro.net.shared_cache import ShmFeatureCache

            self.shared = ShmFeatureCache.attach(
                spec.shared_name, spec.shared_slots,
                spec.shared_slot_bytes,
            )
        self._lock = threading.Lock()
        self.batches = 0
        self.scanned = 0
        self.flagged = 0
        self.seeded_ids = 0
        self.inline_batches = 0
        self.shm_batches = 0
        self.shared_reads = 0
        self.scan_delay = float(os.environ.get(SCAN_DELAY_ENV, "0") or 0)

    # ------------------------------------------------------------------ #

    def _seed_ids(self, code: bytes, block) -> int:
        """Copy-on-first-sight seed of the local ids cache from a shared
        view: cache entries must outlive the slot lease / pin (the
        coordinator reuses the memory right after our response), and a
        cache hit skips even the copy."""
        from repro.serve.cache import IDS_NAMESPACE, bytecode_digest

        before = len(self.cache)
        self.cache.get(
            IDS_NAMESPACE, code, lambda _code, b=block: b.copy(),
            digest=bytecode_digest(code),
        )
        return int(len(self.cache) != before)

    def _codes_from_request(self, request: dict) -> tuple[list[bytes], int]:
        """Unique bytecodes from the wire.

        Three sources, in precedence order per unique code: a host-wide
        shared-cache reference (``shared_refs``), the batch's ring slot,
        or inline hex. Returns ``(codes, seeded)`` where ``seeded``
        counts feature blocks copied into the local cache from shared
        memory.
        """
        seeded = 0
        shared_refs = request.get("shared_refs") or {}
        rest: list[bytes] = []
        if request.get("slot") is not None:
            slot = int(request["slot"])
            code_lens = [int(n) for n in request["code_lens"]]
            ids_lens = [int(n) for n in request["ids_lens"]]
            total = sum(code_lens) + sum(ids_lens)
            payload = self.ring.view(slot, total)
            offset = 0
            for length in code_lens:
                rest.append(bytes(payload[offset:offset + length]))
                offset += length
            for code, length in zip(rest, ids_lens):
                if length == 0:
                    continue
                block = payload[offset:offset + length]
                offset += length
                seeded += self._seed_ids(code, block)
            with self._lock:
                self.shm_batches += 1
        elif "inline_codes" in request:
            rest = [bytes.fromhex(c) for c in request["inline_codes"]]
            with self._lock:
                self.inline_batches += 1
        if not shared_refs:
            with self._lock:
                self.seeded_ids += seeded
            return rest, seeded
        # Interleave shared-cache entries with the rest of the batch,
        # restoring the coordinator's unique-code index space.
        rest_index = {
            position: code
            for position, code in zip(request.get("rest", ()), rest)
        }
        n_unique = len(shared_refs) + len(rest_index)
        codes: list[bytes] = []
        reads = 0
        for index in range(n_unique):
            ref = shared_refs.get(str(index))
            if ref is None:
                codes.append(rest_index[index])
                continue
            slot, code_len, ids_len = (int(v) for v in ref)
            code, ids_view = self.shared.read(slot, code_len, ids_len)
            if ids_len:
                seeded += self._seed_ids(code, ids_view)
            codes.append(code)
            reads += 1
        with self._lock:
            self.seeded_ids += seeded
            self.shared_reads += reads
        return codes, seeded

    @property
    def degraded(self) -> bool:
        """Whether this worker cold-started from the spool with the
        store unreachable (see :meth:`repro.artifacts.ModelStore.tags`)."""
        return bool(self.store is not None
                    and getattr(self.store, "degraded", False))

    def scan(self, request: dict) -> dict:
        """Score one batch; the response preserves request order."""
        from repro.stream.scanner import shard_of

        # Fault point: a chaos plan can kill this worker on exactly its
        # Nth batch (SIGKILL-equivalent — no cleanup, no response; the
        # coordinator sees a TransportError mid-flight) or slow it down.
        fault = faults.fire("worker.scan", worker=self.spec.index)
        if fault is not None and fault.action == "kill":
            os._exit(1)

        addresses = list(request["addresses"])
        code_of = [int(i) for i in request["code_of"]]
        codes, seeded = self._codes_from_request(request)
        if self.scan_delay > 0:
            time.sleep(self.scan_delay)

        by_shard: dict[int, list[int]] = {}
        for position, address in enumerate(addresses):
            shard = shard_of(address, self.spec.shards)
            by_shard.setdefault(shard, []).append(position)
        results: list[dict | None] = [None] * len(addresses)
        flagged = 0
        for shard, positions in sorted(by_shard.items()):
            worker = self.shards[shard]
            scored = worker.scan_bytecodes(
                [codes[code_of[p]] for p in positions],
                addresses=[addresses[p] for p in positions],
            )
            for position, result in zip(positions, scored):
                flagged += int(result.is_phishing)
                results[position] = {
                    "address": result.address,
                    "probability": result.probability,
                    "is_phishing": result.is_phishing,
                    "from_cache": result.from_cache,
                    "shard": shard_of(result.address, self.spec.shards),
                }
        with self._lock:
            self.batches += 1
            self.scanned += len(addresses)
            self.flagged += flagged
        return {
            "worker": self.spec.index,
            "pid": self.pid,
            "results": results,
            "seeded_ids": seeded,
        }

    def status(self) -> dict:
        with self._lock:
            counters = {
                "batches": self.batches,
                "scanned": self.scanned,
                "flagged": self.flagged,
                "seeded_ids": self.seeded_ids,
                "shm_batches": self.shm_batches,
                "inline_batches": self.inline_batches,
                "shared_reads": self.shared_reads,
            }
        return {
            "worker": self.spec.index,
            "pid": self.pid,
            "degraded": self.degraded,
            **counters,
            "shards": [
                {"shard": i, "scanned": view.scanned}
                for i, view in enumerate(self.shards)
            ],
            "service": self.service.stats(),
        }


def _make_handler(state: _WorkerState, server_box: dict):
    class Handler(BaseHTTPRequestHandler):
        # One worker serves one coordinator on loopback; access logs
        # would just interleave with test output.
        def log_message(self, *args):  # noqa: D102
            pass

        def _reply(self, status: int, payload: dict) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self):  # noqa: N802
            if self.path == "/healthz":
                self._reply(200, {"ok": True, "worker": state.spec.index,
                                  "pid": state.pid,
                                  "degraded": state.degraded})
            elif self.path == "/status":
                self._reply(200, state.status())
            else:
                self._reply(404, {"error": f"no route {self.path}"})

        def do_POST(self):  # noqa: N802
            if self.path == "/shutdown":
                self._reply(200, {"ok": True})
                threading.Thread(
                    target=server_box["server"].shutdown, daemon=True
                ).start()
                return
            if self.path == "/invalidate":
                try:
                    length = int(self.headers.get("Content-Length", "0"))
                    request = json.loads(self.rfile.read(length))
                    namespace = str(request["namespace"])
                    evicted = state.cache.invalidate_namespace(namespace)
                    self._reply(200, {"worker": state.spec.index,
                                      "namespace": namespace,
                                      "evicted": evicted})
                except Exception as error:  # noqa: BLE001
                    self._reply(500, {"error": f"{type(error).__name__}: "
                                               f"{error}"})
                return
            if self.path != "/scan":
                self._reply(404, {"error": f"no route {self.path}"})
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
                request = json.loads(self.rfile.read(length))
                self._reply(200, state.scan(request))
            except Exception as error:  # noqa: BLE001
                self._reply(500, {"error": f"{type(error).__name__}: "
                                           f"{error}"})

    return Handler


def worker_main(spec: WorkerSpec, ready) -> None:
    """Child-process entry point: load, bind, report the port, serve.

    ``ready`` is the write end of a pipe; the worker sends its bound
    port once the model is loaded and the server is listening (so the
    parent's readiness wait covers the cold start, not just the fork),
    or an ``{"error": ...}`` dict when startup fails.
    """
    try:
        # Fault point: a chaos plan can fail the cold start itself (the
        # persistent-crash case supervision must eventually quarantine).
        fault = faults.fire("worker.start", worker=spec.index)
        if fault is not None and fault.action == "error":
            raise RuntimeError("injected startup failure")
        state = _WorkerState(spec)
        server_box: dict = {}
        server = ThreadingHTTPServer(
            (spec.host, 0), _make_handler(state, server_box)
        )
        server_box["server"] = server
        server.daemon_threads = True
    except Exception as error:  # noqa: BLE001
        try:
            ready.send({"error": f"{type(error).__name__}: {error}"})
        finally:
            ready.close()
        return

    def _terminate(_signum, _frame):
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _terminate)
    ready.send({"port": server.server_address[1], "pid": os.getpid(),
                "degraded": state.degraded})
    ready.close()
    try:
        server.serve_forever(poll_interval=0.05)
    finally:
        server.server_close()
        if state.ring is not None:
            state.ring.close()
        if state.shared is not None:
            state.shared.close()
