"""Host-wide shared feature cache: decode once, serve every worker.

The :class:`~repro.net.shm.ShmRing` removed the per-worker *copy* of
feature blocks, but each batch still rewrote its unique bytecodes and
decoded ids into a fresh ring slot — the same popular contract shipped
over and over, once per batch. :class:`ShmFeatureCache` promotes the
coordinator's per-batch dedup to a cross-batch, cross-worker table: a
digest-keyed store in one ``multiprocessing.shared_memory`` segment
where each unique bytecode (and its decoded ``uint8`` mnemonic-ids
block) lands **once per host**. Requests then carry only
``(slot, code_len, ids_len)`` references; any worker — including one
that has never seen the contract — reads the bytes straight off the
mapped pages.

Concurrency model (deliberately the ring's, extended with leases):

* **Single writer.** Only the creating (coordinator) process stores or
  evicts entries; attached workers are strictly readers. All index
  state — digest map, LRU order, pin counts — lives coordinator-side,
  so there is no cross-process locking at all.
* **Pin leases, response-fenced.** A request that references an entry
  pins its slot; the coordinator unpins after the worker's HTTP
  exchange (success or not). Eviction skips pinned slots, so a reader
  can never observe a slot being rewritten under it. A pin left behind
  is a leak — :meth:`audit` reports outstanding pins so tests can
  assert the fleet returned every lease (mirroring the ring's
  ``free_slots`` audit).
* **LRU eviction, graceful fallback.** A full table (or an entry larger
  than one slot) is never fatal: :meth:`store` returns ``None`` and the
  coordinator falls back to the ring / inline path, counted.
* **Creator-only unlink.** Same ``resource_tracker`` unregistration and
  pid-guarded :meth:`unlink` as the ring, so a worker exit cannot tear
  down the live segment.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
from collections import OrderedDict
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = ["ShmFeatureCache", "SharedEntry"]


class SharedEntry(tuple):
    """``(slot, code_len, ids_len)`` reference into the shared table."""

    __slots__ = ()

    def __new__(cls, slot: int, code_len: int, ids_len: int):
        return super().__new__(cls, (slot, code_len, ids_len))

    @property
    def slot(self) -> int:
        return self[0]

    @property
    def code_len(self) -> int:
        return self[1]

    @property
    def ids_len(self) -> int:
        return self[2]


class ShmFeatureCache:
    """Digest-keyed ``[code][ids]`` slots in shared memory; see module docs.

    Construct through :meth:`create` (coordinator) or :meth:`attach`
    (workers); geometry travels in the
    :class:`~repro.net.worker.WorkerSpec` like the ring's.
    """

    def __init__(self, shm: shared_memory.SharedMemory, slots: int,
                 slot_bytes: int, *, owner: bool):
        if slots < 1 or slot_bytes < 1:
            raise ValueError(
                "shared cache needs positive slots and slot_bytes"
            )
        self._shm = shm
        self.slots = slots
        self.slot_bytes = slot_bytes
        self.owner = owner
        self._owner_pid = os.getpid() if owner else None
        self._lock = threading.Lock()
        self._closed = False
        self._unlinked = False
        # Owner-side index. _entries maps digest -> SharedEntry in LRU
        # order (oldest first); _pins counts outstanding leases per slot.
        self._entries: "OrderedDict[bytes, SharedEntry]" = OrderedDict()
        self._free: list[int] = list(range(slots)) if owner else []
        self._pins: dict[int, int] = {}
        self._counters = {
            "hits": 0,
            "misses": 0,
            "stores": 0,
            "evictions": 0,
            "too_large": 0,
            "full": 0,
        }

    # ------------------------------------------------------------------ #
    # Lifecycle (the ring's discipline, verbatim)
    # ------------------------------------------------------------------ #

    @classmethod
    def create(cls, slots: int, slot_bytes: int) -> "ShmFeatureCache":
        """Allocate a fresh table; the caller owns (and unlinks) it."""
        shm = shared_memory.SharedMemory(
            create=True, size=slots * slot_bytes
        )
        cache = cls(shm, slots, slot_bytes, owner=True)
        atexit.register(cache.unlink)
        return cache

    @classmethod
    def attach(cls, name: str, slots: int,
               slot_bytes: int) -> "ShmFeatureCache":
        """Map an existing table read-only (worker side)."""
        shm = shared_memory.SharedMemory(name=name)
        # See ShmRing.attach: under spawn the attaching process has a
        # private resource tracker that would unlink the coordinator's
        # live segment on worker exit; unregister there. Under fork the
        # registration is shared and idempotent — leave it alone.
        if multiprocessing.get_start_method(allow_none=True) != "fork":
            try:
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker internals
                pass
        return cls(shm, slots, slot_bytes, owner=False)

    @property
    def name(self) -> str:
        """OS name of the segment (what :meth:`attach` needs)."""
        return self._shm.name

    def close(self) -> None:
        """Unmap this process's view; idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a live view pins the map
            self._closed = False

    def unlink(self) -> None:
        """Destroy the segment (creator process only; idempotent)."""
        if not self.owner or os.getpid() != self._owner_pid:
            return
        self.close()
        if self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------ #
    # Owner side: lookup, store, leases, eviction
    # ------------------------------------------------------------------ #

    def _require_owner(self) -> None:
        if not self.owner:
            raise RuntimeError(
                "only the creating process mutates the shared cache"
            )

    def pin(self, digest: bytes) -> SharedEntry | None:
        """Look up ``digest``; on a hit, lease its slot and return the
        entry (bumping LRU recency). ``None`` on miss — the caller
        decodes and calls :meth:`store`."""
        self._require_owner()
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                self._counters["misses"] += 1
                return None
            self._entries.move_to_end(digest)
            self._pins[entry.slot] = self._pins.get(entry.slot, 0) + 1
            self._counters["hits"] += 1
            return entry

    def store(self, digest: bytes, code: bytes,
              ids: np.ndarray | bytes) -> SharedEntry | None:
        """Write ``[code][ids]`` into a slot and return a pinned entry.

        Returns ``None`` (counted, never fatal) when the payload exceeds
        one slot or every slot is pinned by in-flight requests — the
        caller ships through the ring / inline instead. Storing a digest
        that raced in through another thread pins the existing entry.
        """
        self._require_owner()
        code = bytes(code)
        ids_view = memoryview(ids).cast("B")
        total = len(code) + len(ids_view)
        with self._lock:
            entry = self._entries.get(digest)
            if entry is not None:
                self._entries.move_to_end(digest)
                self._pins[entry.slot] = self._pins.get(entry.slot, 0) + 1
                self._counters["hits"] += 1
                return entry
            if total > self.slot_bytes:
                self._counters["too_large"] += 1
                return None
            slot = self._claim_slot_locked()
            if slot is None:
                self._counters["full"] += 1
                return None
            base = slot * self.slot_bytes
            view = self._shm.buf
            view[base:base + len(code)] = code
            view[base + len(code):base + total] = ids_view
            entry = SharedEntry(slot, len(code), len(ids_view))
            self._entries[digest] = entry
            self._pins[slot] = self._pins.get(slot, 0) + 1
            self._counters["stores"] += 1
            return entry

    def _claim_slot_locked(self) -> int | None:
        """A free slot, evicting the LRU unpinned entry if needed."""
        if self._free:
            return self._free.pop()
        for digest, entry in self._entries.items():
            if self._pins.get(entry.slot, 0) == 0:
                del self._entries[digest]
                self._counters["evictions"] += 1
                return entry.slot
        return None

    def unpin(self, slot: int) -> None:
        """Release one lease on ``slot`` (after the HTTP exchange)."""
        self._require_owner()
        with self._lock:
            count = self._pins.get(slot, 0)
            if count <= 0:
                raise ValueError(f"slot {slot} is not pinned")
            if count == 1:
                del self._pins[slot]
            else:
                self._pins[slot] = count - 1

    def audit(self) -> dict:
        """Lease-leak report: outstanding pins per slot (empty when every
        request released its leases — the invariant tests assert)."""
        self._require_owner()
        with self._lock:
            return {slot: count for slot, count in self._pins.items()
                    if count > 0}

    def stats(self) -> dict:
        """Counters + occupancy, JSON-ready (surfaced by fleet status)."""
        with self._lock:
            resident = sum(
                e.code_len + e.ids_len for e in self._entries.values()
            )
            return {
                **self._counters,
                "entries": len(self._entries),
                "pinned_slots": sum(
                    1 for c in self._pins.values() if c > 0
                ),
                "resident_bytes": resident,
                "slots": self.slots,
                "slot_bytes": self.slot_bytes,
            }

    # ------------------------------------------------------------------ #
    # Reader side
    # ------------------------------------------------------------------ #

    def read(self, slot: int, code_len: int,
             ids_len: int) -> tuple[bytes, np.ndarray]:
        """``(code, ids_view)`` for one referenced entry.

        The code is copied out (it is small and outlives nothing); the
        ids block is a zero-copy read-only ``uint8`` view valid only
        until the coordinator's lease is released — anything that must
        outlive the request (a worker cache seed) copies first.
        """
        if not 0 <= slot < self.slots:
            raise ValueError(f"slot {slot} out of range")
        total = code_len + ids_len
        if total > self.slot_bytes:
            raise ValueError(
                f"entry length {total} exceeds slot capacity "
                f"{self.slot_bytes}"
            )
        base = slot * self.slot_bytes
        code = bytes(self._shm.buf[base:base + code_len])
        ids = np.frombuffer(
            self._shm.buf, dtype=np.uint8, count=ids_len,
            offset=base + code_len,
        )
        ids.flags.writeable = False
        return code, ids

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "owner" if self.owner else "attached"
        return (f"ShmFeatureCache({self.name!r}, slots={self.slots}, "
                f"slot_bytes={self.slot_bytes}, {role})")
