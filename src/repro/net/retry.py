"""Shared retry and circuit-breaker primitives for the serving stack.

One :class:`RetryPolicy` implementation (jittered exponential backoff,
bounded attempts, caller-supplied ``should_retry`` predicate) backs
every network edge in the repo — ``FleetClient`` → coordinator,
``HttpStoreBackend`` → store server, ``WebhookSink`` → alert endpoint —
so backoff behaviour is tuned in exactly one place and every edge is
tested by the same chaos suite.

:class:`CircuitBreaker` is the standard three-state machine:

* **closed** — calls flow; consecutive failures are counted.
* **open** — after ``failures`` consecutive failures, calls are refused
  (:meth:`CircuitBreaker.allow` returns ``False``) for
  ``reset_seconds``.
* **half-open** — after the window, exactly one probe call is allowed;
  success closes the breaker, failure reopens it for another window.

Both classes take injectable clock/rng/sleep hooks so tests run in
virtual time; production call sites use the defaults.
"""

from __future__ import annotations

import random
import threading
import time

__all__ = ["CircuitBreaker", "CircuitOpenError", "RetryPolicy"]


class CircuitOpenError(ConnectionError):
    """Raised (by callers that choose to) when a breaker refuses a call."""


class RetryPolicy:
    """Bounded retries with jittered exponential backoff.

    Args:
        attempts: Total tries, including the first (``1`` = no retry).
        base_delay: Sleep before the first retry, in seconds.
        max_delay: Upper bound on any single sleep.
        multiplier: Backoff growth factor per retry.
        jitter: Fraction of each delay drawn uniformly at random and
            added, to decorrelate competing clients (``0.1`` → up to
            +10%).
        sleep: Injectable sleep (tests pass a recorder).
        rng: Injectable ``random.Random`` for deterministic jitter.
    """

    def __init__(self, attempts: int = 3, *, base_delay: float = 0.1,
                 max_delay: float = 2.0, multiplier: float = 2.0,
                 jitter: float = 0.1, sleep=time.sleep,
                 rng: random.Random | None = None):
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        self.attempts = attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.multiplier = multiplier
        self.jitter = jitter
        self._sleep = sleep
        self._rng = rng or random.Random()

    def delays(self):
        """The backoff sequence (``attempts - 1`` entries, jittered)."""
        delay = self.base_delay
        for _ in range(self.attempts - 1):
            bounded = min(delay, self.max_delay)
            yield bounded + (self._rng.random() * self.jitter * bounded
                             if self.jitter > 0 else 0.0)
            delay *= self.multiplier

    def call(self, fn, *, should_retry=lambda exc: True,
             on_retry=None):
        """Run ``fn()`` with retries.

        ``should_retry(exc)`` decides whether an exception is worth
        another attempt (a 404 is not; a connection reset is). The last
        failure is re-raised once attempts are exhausted. ``on_retry``
        (if given) is called with ``(exc, attempt_index)`` before each
        backoff sleep — call sites use it for counters.
        """
        delays = self.delays()
        for attempt in range(self.attempts):
            try:
                return fn()
            except Exception as exc:
                last = next(delays, None)
                if last is None or not should_retry(exc):
                    raise
                if on_retry is not None:
                    on_retry(exc, attempt)
                self._sleep(last)
        raise AssertionError("unreachable")  # pragma: no cover


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing.

    Thread-safe: the fleet's webhook sink and store client share
    breakers across worker threads.

    Args:
        failures: Consecutive failures that trip the breaker open.
        reset_seconds: How long the breaker stays open before allowing
            one half-open probe.
        clock: Injectable monotonic clock for tests.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, failures: int = 5, *, reset_seconds: float = 30.0,
                 clock=time.monotonic):
        if failures < 1:
            raise ValueError("failures must be >= 1")
        self.failures = failures
        self.reset_seconds = reset_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._consecutive = 0
        self._state = self.CLOSED
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            if (self._state == self.OPEN and not self._probing
                    and self._clock() - self._opened_at
                    >= self.reset_seconds):
                return self.HALF_OPEN
            return self._state

    def allow(self) -> bool:
        """Whether a call may proceed right now.

        While open, returns ``False`` until ``reset_seconds`` elapse;
        then exactly one caller gets ``True`` (the half-open probe) and
        the rest keep getting ``False`` until that probe reports via
        :meth:`record_success` / :meth:`record_failure`.
        """
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._probing:
                return False
            if self._clock() - self._opened_at >= self.reset_seconds:
                self._state = self.HALF_OPEN
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive = 0
            self._state = self.CLOSED
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive += 1
            if (self._state == self.HALF_OPEN
                    or self._consecutive >= self.failures):
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._consecutive = 0
            self._probing = False

    def as_dict(self) -> dict:
        return {"state": self.state, "failures": self.failures,
                "reset_seconds": self.reset_seconds}
