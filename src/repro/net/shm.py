"""Fixed-slot shared-memory ring for zero-copy feature handoff.

The fleet coordinator decodes each unique bytecode **once per host**
(through the shared :class:`~repro.serve.cache.FeatureCache`) and hands
the resulting numpy feature blocks to worker *processes*. Serializing
those arrays into every HTTP request body would copy them once per
worker per batch; instead the coordinator writes them into a slot of a
``multiprocessing.shared_memory`` segment and the HTTP request carries
only the slot number and block lengths. The worker builds numpy views
directly over the mapped pages — no pickling, no socket copy.

Design points:

* **Fixed slots, coordinator-owned allocation.** The segment is
  ``slots × slot_bytes``; the creator hands out slot indices
  (:meth:`ShmRing.acquire` / :meth:`ShmRing.release`) under a lock and
  releases a slot only after the worker's HTTP response — the response
  is the fence that makes reuse safe. Attached processes never
  allocate.
* **Creator-only unlink.** Python 3.11's ``resource_tracker`` registers
  *attached* segments too, so a worker exiting would tear down the
  coordinator's live segment; :meth:`attach` unregisters the segment
  from the tracker in the attaching process, and :meth:`unlink` is
  pid-guarded so a forked child that inherited the creator object
  cannot destroy the parent's ring either. The creator registers an
  ``atexit`` unlink, covering abnormal-exit cleanup.
* **Graceful degradation.** A payload larger than one slot raises
  :class:`SlotTooSmallError`; callers fall back to shipping the data
  inline in the request body (counted, never fatal).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = ["ShmRing", "SlotTooSmallError"]


class SlotTooSmallError(ValueError):
    """The payload does not fit one ring slot (fall back to inline)."""


class ShmRing:
    """``slots × slot_bytes`` shared-memory segment with slot leasing.

    Construct through :meth:`create` (the coordinator) or :meth:`attach`
    (workers); the two sides agree on geometry out of band (the fleet
    ships it in the :class:`~repro.net.worker.WorkerSpec`).
    """

    def __init__(self, shm: shared_memory.SharedMemory, slots: int,
                 slot_bytes: int, *, owner: bool):
        if slots < 1 or slot_bytes < 1:
            raise ValueError("ring needs positive slots and slot_bytes")
        self._shm = shm
        self.slots = slots
        self.slot_bytes = slot_bytes
        self.owner = owner
        self._owner_pid = os.getpid() if owner else None
        self._free = list(range(slots)) if owner else []
        self._lock = threading.Lock()
        self._closed = False
        self._unlinked = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @classmethod
    def create(cls, slots: int, slot_bytes: int) -> "ShmRing":
        """Allocate a fresh segment; the caller owns (and unlinks) it."""
        shm = shared_memory.SharedMemory(
            create=True, size=slots * slot_bytes
        )
        ring = cls(shm, slots, slot_bytes, owner=True)
        # Abnormal-exit cleanup: an uncaught exception (or a SIGTERM'd
        # `fleet serve` daemon running its handlers) still unlinks the
        # segment instead of leaking it in /dev/shm.
        atexit.register(ring.unlink)
        return ring

    @classmethod
    def attach(cls, name: str, slots: int, slot_bytes: int) -> "ShmRing":
        """Map an existing segment read-mostly (worker side)."""
        shm = shared_memory.SharedMemory(name=name)
        # Python 3.11 registers attached segments with the resource
        # tracker exactly like created ones. Under the fork start method
        # every process shares the creator's tracker and the (set-based)
        # registration is idempotent — leave it alone, so the tracker
        # still cleans up after a SIGKILL'd coordinator. Under spawn the
        # attaching worker has a *private* tracker that would unlink the
        # coordinator's live segment when the worker exits; unregister
        # there. Ownership stays with the creator either way.
        if multiprocessing.get_start_method(allow_none=True) != "fork":
            try:
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker internals
                pass
        return cls(shm, slots, slot_bytes, owner=False)

    @property
    def name(self) -> str:
        """OS name of the segment (what :meth:`attach` needs)."""
        return self._shm.name

    def close(self) -> None:
        """Unmap this process's view; idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a live view pins the map
            self._closed = False

    def unlink(self) -> None:
        """Destroy the segment (creator process only; idempotent).

        A forked child inheriting the creator object is *not* the
        creator: the pid guard keeps a worker's exit path from tearing
        down the coordinator's ring.
        """
        if not self.owner or os.getpid() != self._owner_pid:
            return
        self.close()
        if self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------ #
    # Slot leasing (creator side)
    # ------------------------------------------------------------------ #

    def acquire(self) -> int | None:
        """Lease a free slot index, or ``None`` when the ring is full
        (the caller falls back to inline shipping — backpressure on the
        feature plane must not become backpressure on scanning)."""
        with self._lock:
            return self._free.pop() if self._free else None

    def release(self, slot: int) -> None:
        """Return a leased slot to the free list."""
        with self._lock:
            if slot in self._free:
                raise ValueError(f"slot {slot} is not leased")
            if not 0 <= slot < self.slots:
                raise ValueError(f"slot {slot} out of range")
            self._free.append(slot)

    @property
    def free_slots(self) -> int:
        with self._lock:
            return len(self._free)

    # ------------------------------------------------------------------ #
    # Data plane
    # ------------------------------------------------------------------ #

    def write_blocks(self, slot: int, blocks) -> int:
        """Pack contiguous ``blocks`` (bytes / uint8 arrays) into a slot.

        Returns the total byte length written. Raises
        :class:`SlotTooSmallError` when the payload overflows the slot —
        nothing is partially visible to readers because the slot is not
        referenced by any request until the caller ships its metadata.
        """
        if not 0 <= slot < self.slots:
            raise ValueError(f"slot {slot} out of range")
        base = slot * self.slot_bytes
        view = self._shm.buf
        offset = 0
        for block in blocks:
            data = memoryview(block).cast("B")
            length = len(data)
            if offset + length > self.slot_bytes:
                raise SlotTooSmallError(
                    f"payload exceeds slot capacity "
                    f"({offset + length} > {self.slot_bytes} bytes)"
                )
            view[base + offset:base + offset + length] = data
            offset += length
        return offset

    def view(self, slot: int, length: int) -> np.ndarray:
        """Read-only ``uint8`` numpy view over one slot's payload.

        Zero-copy: the array aliases the mapped pages. It is only valid
        until the slot is released back to the coordinator (the HTTP
        response is that fence), so anything that must outlive the
        request — e.g. feature blocks seeded into a worker's cache —
        copies out of the view first.
        """
        if not 0 <= slot < self.slots:
            raise ValueError(f"slot {slot} out of range")
        if length > self.slot_bytes:
            raise ValueError(
                f"length {length} exceeds slot capacity {self.slot_bytes}"
            )
        base = slot * self.slot_bytes
        array = np.frombuffer(
            self._shm.buf, dtype=np.uint8, count=length, offset=base
        )
        array.flags.writeable = False
        return array

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "owner" if self.owner else "attached"
        return (f"ShmRing({self.name!r}, slots={self.slots}, "
                f"slot_bytes={self.slot_bytes}, {role})")
