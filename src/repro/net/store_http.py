"""Serve any :class:`~repro.artifacts.backends.StoreBackend` over HTTP.

``phishinghook store-serve`` wraps a local store (``file://`` or
``bucket://``) in this tiny endpoint so fleet workers on other processes
— or other hosts — can pull ``production`` artifacts with no shared
mount. The wire protocol is deliberately dumb, a strict subset of what
any blob store speaks:

* ``GET /<key>``     → blob bytes, ``ETag`` header (content SHA-256 hex)
* ``HEAD /<key>``    → ``ETag`` + ``Content-Length``, no body
* ``GET /?prefix=p`` → JSON ``{"keys": [...]}`` (the list operation)
* ``PUT /<key>``     → store the body; JSON ``{"etag": ...}``
* ``DELETE /<key>``  → JSON ``{"deleted": bool}``

Writes are refused with HTTP 405 unless the server was started
``writable`` — the normal deployment is a read-only artifact mirror, and
a fleet must not be one misconfigured client away from mutating it. The
client side lives in :class:`~repro.artifacts.backends.HttpStoreBackend`,
which re-verifies the ``ETag`` against the received bytes so a corrupt
proxy or truncated body surfaces as ``IntegrityError``, not a bad model.
"""

from __future__ import annotations

import json
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro import faults

__all__ = ["serve_store"]


def _make_handler(backend, writable: bool):
    class Handler(BaseHTTPRequestHandler):
        def log_message(self, *args):  # noqa: D102
            pass

        def _key(self) -> tuple[str, dict]:
            parsed = urllib.parse.urlsplit(self.path)
            key = urllib.parse.unquote(parsed.path).lstrip("/")
            query = dict(urllib.parse.parse_qsl(parsed.query))
            return key, query

        def _json(self, status: int, payload: dict) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self):  # noqa: N802
            key, query = self._key()
            # Fault point: a chaos plan can turn any GET into a 5xx
            # storm or a truncated body. Truncation serves half the
            # bytes as a well-formed response that still carries the
            # full object's ETag — the proxy-mangled partial download
            # the client-side digest re-check exists to catch.
            fault = faults.fire("store.get", context=key)
            if fault is not None and fault.action == "error":
                self._json(fault.status, {"error": "injected fault"})
                return
            if not key:
                keys = backend.list(query.get("prefix", ""))
                self._json(200, {"keys": keys})
                return
            try:
                data = backend.get(key)
            except KeyError:
                self._json(404, {"error": f"no object {key!r}"})
                return
            etag = backend.etag(key)
            if fault is not None and fault.action == "truncate":
                data = data[: max(1, len(data) // 2)]
            self.send_response(200)
            self.send_header("Content-Type", "application/octet-stream")
            self.send_header("Content-Length", str(len(data)))
            if etag:
                self.send_header("ETag", etag)
            self.end_headers()
            self.wfile.write(data)

        def do_HEAD(self):  # noqa: N802
            key, _query = self._key()
            etag = backend.etag(key) if key else None
            if etag is None:
                self.send_response(404)
                self.end_headers()
                return
            self.send_response(200)
            self.send_header("ETag", etag)
            self.send_header("Content-Length", str(backend.size(key)))
            self.end_headers()

        def do_PUT(self):  # noqa: N802
            key, _query = self._key()
            if not writable:
                self._json(405, {"error": "store served read-only"})
                return
            if not key:
                self._json(400, {"error": "PUT needs a key"})
                return
            length = int(self.headers.get("Content-Length", "0"))
            data = self.rfile.read(length)
            self._json(200, {"etag": backend.put(key, data)})

        def do_DELETE(self):  # noqa: N802
            key, _query = self._key()
            if not writable:
                self._json(405, {"error": "store served read-only"})
                return
            if not key:
                self._json(400, {"error": "DELETE needs a key"})
                return
            self._json(200, {"deleted": backend.delete(key)})

    return Handler


def serve_store(backend, host: str = "127.0.0.1", port: int = 0,
                *, writable: bool = False) -> ThreadingHTTPServer:
    """Build (not start) an HTTP server over ``backend``.

    The caller runs ``server.serve_forever()`` (the CLI does so in the
    foreground; tests run it on a daemon thread). ``port=0`` binds an
    ephemeral port — read it back from ``server.server_address``.
    """
    server = ThreadingHTTPServer((host, port),
                                 _make_handler(backend, writable))
    server.daemon_threads = True
    return server
