"""Adversarial robustness of opcode-based phishing detectors.

The paper's time-resistance study (§IV-G) measures *passive* drift —
attackers evolving naturally month over month. This package studies the
*active* attacker: one who knows the detector reads opcode statistics and
rewrites their phishing bytecode to evade it without changing what the
contract does.

* :mod:`repro.robustness.attacks` — semantics-preserving bytecode
  transformations (unreachable-junk appending, benign-mimicry padding,
  jump-aware junk-block insertion, minimal-proxy wrapping), each
  verifiable by differential execution on the EVM interpreter,
* :mod:`repro.robustness.evaluate` — the evasion/hardening harness:
  recall decay under increasing attack strength, and recovery through
  adversarial retraining,
* :mod:`repro.robustness.defenses` — structural defences, currently
  EIP-1167 proxy resolution through the chain's ``eth_getCode``.
"""

from repro.robustness.attacks import (
    AttackError,
    append_unreachable_junk,
    insert_junk_blocks,
    mimicry_padding,
    opcode_byte_distribution,
    semantics_preserved,
    substitute_push0,
    wrap_in_minimal_proxy,
)
from repro.robustness.defenses import ProxyResolvingDetector
from repro.robustness.evaluate import (
    AttackSweepResult,
    adversarial_retraining,
    attack_corpus,
    evaluate_under_attack,
)

__all__ = [
    "AttackError",
    "append_unreachable_junk",
    "mimicry_padding",
    "insert_junk_blocks",
    "substitute_push0",
    "wrap_in_minimal_proxy",
    "opcode_byte_distribution",
    "semantics_preserved",
    "ProxyResolvingDetector",
    "AttackSweepResult",
    "attack_corpus",
    "evaluate_under_attack",
    "adversarial_retraining",
]
