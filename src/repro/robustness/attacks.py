"""Semantics-preserving bytecode transformations for evasion studies.

Every attack takes a deployed runtime bytecode and returns a rewritten one
that behaves identically on-chain but presents different opcode statistics
to a static detector. Three escalating capabilities are modelled:

1. *Appending* — the attacker pads unreachable bytes after the terminating
   instruction (trivial; no control-flow understanding needed). The
   mimicry variant draws the padding from a benign opcode distribution.
2. *Inserting* — the attacker splices junk blocks into reachable code and
   relocates jump targets (requires a rewriter; implemented here with the
   PUSH-before-JUMPDEST heuristic our assembler guarantees).
3. *Hiding* — the attacker deploys an EIP-1167 minimal proxy whose
   deployed bytecode is indistinguishable from the thousands of benign
   proxies in the wild, and keeps the phishing logic behind it.

:func:`semantics_preserved` checks any rewrite by differential execution
on :class:`repro.evm.machine.EVM` — same halt reason, storage, return
data and logs across a battery of calldata.
"""

from __future__ import annotations

import numpy as np

from repro.datagen.mutation import minimal_proxy
from repro.evm.disassembler import Disassembler, normalize_bytecode
from repro.evm.machine import EVM, ExecutionContext
from repro.evm.opcodes import OPCODES_BY_NAME

__all__ = [
    "AttackError",
    "append_unreachable_junk",
    "mimicry_padding",
    "insert_junk_blocks",
    "substitute_push0",
    "wrap_in_minimal_proxy",
    "opcode_byte_distribution",
    "semantics_preserved",
]


class AttackError(ValueError):
    """The bytecode cannot be rewritten by the requested attack."""


#: Junk couplets that are stack-neutral at any program point: each pushes
#: exactly one word reading only environment state, then pops it.
_NEUTRAL_SOURCES = (
    "ADDRESS", "CALLER", "CALLVALUE", "CALLDATASIZE", "CODESIZE",
    "GASPRICE", "RETURNDATASIZE", "PC", "MSIZE", "GAS", "CHAINID",
    "SELFBALANCE", "BASEFEE", "PUSH0",
)

_POP = OPCODES_BY_NAME["POP"].value
_JUMPDEST = OPCODES_BY_NAME["JUMPDEST"].value
_PUSH2 = OPCODES_BY_NAME["PUSH2"].value


def _check_appendable(bytecode: bytes) -> None:
    """Reject bytecodes where appended bytes could become reachable.

    A contract with no terminator at all relies on the implicit STOP at
    end-of-code; appending junk there changes behaviour. Contracts with a
    terminator may still carry unreachable data/metadata trailers past it
    (ours do), which linear disassembly decodes as arbitrary instructions
    — that is fine statically, and :func:`semantics_preserved` is the
    authoritative confirmation for any individual rewrite.
    """
    instructions = Disassembler(bytecode).disassemble()
    if not instructions:
        raise AttackError("empty bytecode")
    if not any(
        instruction.opcode.is_terminator for instruction in instructions
    ):
        raise AttackError(
            "bytecode has no terminator and falls through to end-of-code; "
            "appending junk would change the fallthrough behaviour"
        )


def append_unreachable_junk(
    bytecode: bytes | str,
    rng: np.random.Generator,
    n_bytes: int,
) -> bytes:
    """Append ``n_bytes`` of uniformly random unreachable bytes.

    Execution cannot reach past the terminating instruction, so behaviour
    is unchanged, but the linear disassembly the BDM produces — and hence
    every opcode histogram, image and token sequence — now contains the
    junk.
    """
    code = normalize_bytecode(bytecode)
    if n_bytes < 0:
        raise AttackError("n_bytes must be non-negative")
    _check_appendable(code)
    junk = bytes(rng.integers(0, 256, size=n_bytes, dtype=np.uint8))
    return code + junk


def opcode_byte_distribution(bytecodes) -> np.ndarray:
    """Empirical distribution over the 256 byte values in a code corpus.

    Fed to :func:`mimicry_padding` so the attacker's padding mimics, e.g.,
    the benign class. Laplace-smoothed so every byte has non-zero mass.
    """
    counts = np.ones(256, dtype=np.float64)  # +1 smoothing
    for bytecode in bytecodes:
        code = normalize_bytecode(bytecode)
        values, value_counts = np.unique(
            np.frombuffer(code, dtype=np.uint8), return_counts=True
        )
        counts[values] += value_counts
    return counts / counts.sum()


def mimicry_padding(
    bytecode: bytes | str,
    rng: np.random.Generator,
    n_bytes: int,
    distribution: np.ndarray,
) -> bytes:
    """Append unreachable bytes drawn from a target byte distribution.

    The classic mimicry attack: padding sampled from the *benign* byte
    distribution drags the contract's opcode histogram towards the benign
    centroid, which is strictly stronger against HSCs than uniform junk.
    """
    code = normalize_bytecode(bytecode)
    distribution = np.asarray(distribution, dtype=float)
    if distribution.shape != (256,) or np.any(distribution < 0):
        raise AttackError("distribution must be a non-negative vector of 256")
    total = distribution.sum()
    if total <= 0:
        raise AttackError("distribution must have positive mass")
    _check_appendable(code)
    junk = rng.choice(256, size=n_bytes, p=distribution / total)
    return code + bytes(junk.astype(np.uint8).tolist())


def _junk_block(rng: np.random.Generator, length: int) -> bytes:
    """A reachable, stack-neutral junk block of exactly ``length`` bytes.

    Built from source/POP couplets with a PUSH1 imm/POP filler for odd
    remainders; never alters stack depth by more than one transiently.
    """
    if length < 2:
        raise AttackError("junk blocks need at least 2 bytes")
    out = bytearray()
    while len(out) < length:
        remaining = length - len(out)
        if remaining == 3:
            push1 = OPCODES_BY_NAME["PUSH1"].value
            out += bytes([push1, int(rng.integers(0, 256)), _POP])
        else:
            source = _NEUTRAL_SOURCES[int(rng.integers(0, len(_NEUTRAL_SOURCES)))]
            out += bytes([OPCODES_BY_NAME[source].value, _POP])
    return bytes(out)


def insert_junk_blocks(
    bytecode: bytes | str,
    rng: np.random.Generator,
    n_blocks: int = 4,
    block_length: int = 8,
) -> bytes:
    """Splice stack-neutral junk into reachable code, relocating jumps.

    Junk blocks are inserted at instruction boundaries. Two kinds of jump
    references are relocated, keeping their PUSH width:

    * any PUSH2 whose operand equals a JUMPDEST offset (our assembler's
      label convention — labels are always PUSH2),
    * any PUSH1–PUSH4 *immediately before* a JUMP/JUMPI whose operand
      equals a JUMPDEST offset (direct jumps in hand-rolled runtimes such
      as the EIP-1167 proxy, whose ``PUSH1 0x2b JUMPI`` would otherwise
      go stale).

    A PUSH constant that merely *collides* with a JUMPDEST offset would
    be mis-relocated, so callers should confirm each rewrite with
    :func:`semantics_preserved`.

    Raises:
        AttackError: When a relocated target no longer fits its original
            PUSH width.
    """
    code = normalize_bytecode(bytecode)
    instructions = Disassembler(code).disassemble()
    if not instructions:
        raise AttackError("empty bytecode")
    jumpdests = {
        instruction.offset
        for instruction in instructions
        if instruction.opcode.value == _JUMPDEST
    }
    jump_values = {OPCODES_BY_NAME["JUMP"].value, OPCODES_BY_NAME["JUMPI"].value}

    def is_jump_reference(index: int) -> bool:
        instruction = instructions[index]
        if (
            not instruction.opcode.is_push
            or instruction.is_truncated
            or not instruction.operand
            or int.from_bytes(instruction.operand, "big") not in jumpdests
        ):
            return False
        if instruction.opcode.value == _PUSH2:
            return True
        followed_by_jump = (
            index + 1 < len(instructions)
            and instructions[index + 1].opcode.value in jump_values
        )
        return len(instruction.operand) <= 4 and followed_by_jump

    # Choose insertion points: before randomly chosen instructions
    # (never before offset 0 — entry must stay at the original pc 0
    # semantics anyway, but inserting at 0 is also legal; keep it simple
    # and allow any boundary).
    boundaries = [instruction.offset for instruction in instructions]
    chosen = sorted(
        rng.choice(len(boundaries), size=min(n_blocks, len(boundaries)),
                   replace=False).tolist()
    )
    insert_at = [boundaries[i] for i in chosen]

    # Old offset -> inserted-bytes-before-it, to build the relocation map.
    blocks = {offset: _junk_block(rng, block_length) for offset in insert_at}

    def relocate(offset: int) -> int:
        shift = sum(
            len(block) for at, block in blocks.items() if at <= offset
        )
        return offset + shift

    out = bytearray()
    for index, instruction in enumerate(instructions):
        if instruction.offset in blocks:
            out += blocks[instruction.offset]
        raw = code[
            instruction.offset:
            instruction.offset + 1 + len(instruction.operand)
        ]
        if is_jump_reference(index):
            width = len(instruction.operand)
            target = relocate(int.from_bytes(instruction.operand, "big"))
            if target >= 1 << (8 * width):
                raise AttackError(
                    f"relocated jump target {target} exceeds PUSH{width}"
                )
            out += bytes([raw[0]]) + target.to_bytes(width, "big")
        else:
            out += raw
    return bytes(out)


def substitute_push0(
    bytecode: bytes | str,
    rng: np.random.Generator,
    fraction: float = 1.0,
) -> bytes:
    """Rewrite ``PUSH1 0x00`` as ``PUSH0 JUMPDEST`` — a length-preserving
    equivalent-instruction substitution.

    Both forms occupy two bytes and leave a zero on the stack; the
    trailing JUMPDEST is a no-op (it adds a *valid jump destination*, but
    nothing jumps there — confirm with :func:`semantics_preserved`).
    Because lengths match, no jump relocation is needed, making this the
    cheapest reachable-code rewrite available to an attacker. It shifts
    opcode histograms (PUSH1 down, PUSH0/JUMPDEST up) without adding a
    single byte.

    Args:
        fraction: Probability of rewriting each eligible site, so partial
            substitution sweeps are possible.
    """
    if not 0.0 <= fraction <= 1.0:
        raise AttackError("fraction must lie in [0, 1]")
    code = bytearray(normalize_bytecode(bytecode))
    push0 = OPCODES_BY_NAME["PUSH0"].value
    push1 = OPCODES_BY_NAME["PUSH1"].value
    for instruction in Disassembler(bytes(code)).disassemble():
        eligible = (
            instruction.opcode.value == push1
            and instruction.operand == b"\x00"
            and not instruction.is_truncated
        )
        if eligible and rng.random() < fraction:
            code[instruction.offset] = push0
            code[instruction.offset + 1] = _JUMPDEST
    return bytes(code)


def wrap_in_minimal_proxy(implementation_address: int | str) -> bytes:
    """The proxy-hiding attack: deploy an EIP-1167 clone of the phishing
    implementation.

    The deployed bytecode the detector sees is the 45-byte canonical proxy
    — byte-identical (up to the embedded address) to the benign proxies
    that dominate the chain. A purely bytecode-based detector cannot
    distinguish them; this is the structural blind spot the paper's dedup
    discussion (§III) implies.
    """
    return minimal_proxy(implementation_address)


_PROBE_VALUES = (0, 1, 10**18)


def _probe_calldata(rng: np.random.Generator, n_random: int) -> list[bytes]:
    probes = [b"", bytes(4), bytes.fromhex("a9059cbb") + bytes(64)]
    for _ in range(n_random):
        size = int(rng.integers(4, 68))
        probes.append(bytes(rng.integers(0, 256, size=size, dtype=np.uint8)))
    return probes


def semantics_preserved(
    original: bytes | str,
    rewritten: bytes | str,
    rng: np.random.Generator | None = None,
    n_random_calldata: int = 3,
    gas_limit: int = 1_000_000,
) -> bool:
    """Differentially execute both bytecodes over a calldata battery.

    Returns True when halt reason, storage, return data and logs agree for
    every probe (empty calldata, a zeroed selector, an ERC-20 ``transfer``
    selector, and random calldata) at several call values.
    """
    rng = rng or np.random.default_rng(0)
    evm = EVM(gas_limit=gas_limit)
    for calldata in _probe_calldata(rng, n_random_calldata):
        for value in _PROBE_VALUES:
            context = ExecutionContext(calldata=calldata, callvalue=value)
            before = evm.execute(original, context=context)
            after = evm.execute(rewritten, context=context)
            same = (
                before.halt == after.halt
                and before.return_data == after.return_data
                and before.storage == after.storage
                and before.logs == after.logs
            )
            if not same:
                return False
    return True
