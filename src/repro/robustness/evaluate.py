"""Evasion and hardening harness for opcode-based detectors.

The threat model: the attacker controls only their own (phishing)
contracts, so attacks are applied to phishing samples exclusively; benign
traffic is untouched. The security metric that matters is therefore
*recall on attacked phishing* — precision on benign traffic cannot be
degraded by this attacker.

Two experiments:

* :func:`evaluate_under_attack` — train on clean data, sweep the attack
  strength over the phishing half of the test set, record the recall
  decay curve (the adversarial analogue of the paper's Fig. 8 decay).
* :func:`adversarial_retraining` — augment the training set with attacked
  copies of its phishing samples and measure how much of the lost recall
  a defender recovers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.metrics import Metrics, classification_metrics

__all__ = [
    "AttackSweepResult",
    "attack_corpus",
    "evaluate_under_attack",
    "adversarial_retraining",
]


def attack_corpus(
    bytecodes,
    labels,
    attack,
    rng: np.random.Generator,
    strength: float,
) -> list[bytes]:
    """Apply ``attack(bytecode, rng, strength)`` to every phishing sample.

    ``strength`` is attack-specific (the harness sweeps it); benign
    samples (label 0) pass through untouched, matching the threat model.
    """
    labels = np.asarray(labels)
    if labels.size != len(bytecodes):
        raise ValueError("labels must match bytecodes length")
    attacked = []
    for bytecode, label in zip(bytecodes, labels):
        if label == 1:
            attacked.append(attack(bytecode, rng, strength))
        else:
            attacked.append(bytecode)
    return attacked


@dataclass
class AttackSweepResult:
    """Recall/metrics of one detector across attack strengths."""

    detector_name: str
    attack_name: str
    strengths: list[float] = field(default_factory=list)
    metrics: list[Metrics] = field(default_factory=list)

    @property
    def recalls(self) -> list[float]:
        return [m.recall for m in self.metrics]

    @property
    def clean_recall(self) -> float:
        """Recall at the weakest (first) strength, conventionally 0."""
        return self.metrics[0].recall

    def recall_drop(self) -> float:
        """Recall lost between the clean and the strongest attack point."""
        return self.clean_recall - self.metrics[-1].recall

    def table(self) -> str:
        """Bench-style text table: one row per strength."""
        lines = [
            f"{self.detector_name} under {self.attack_name}",
            f"{'strength':>9s} {'accuracy':>9s} {'f1':>7s} "
            f"{'precision':>10s} {'recall':>7s}",
        ]
        for strength, metric in zip(self.strengths, self.metrics):
            lines.append(
                f"{strength:9.2f} {metric.accuracy:9.4f} {metric.f1:7.4f} "
                f"{metric.precision:10.4f} {metric.recall:7.4f}"
            )
        return "\n".join(lines)


def evaluate_under_attack(
    detector,
    train_bytecodes,
    train_labels,
    test_bytecodes,
    test_labels,
    attack,
    strengths,
    attack_name: str = "attack",
    seed: int = 0,
) -> AttackSweepResult:
    """Train once on clean data, evaluate across attack strengths.

    Args:
        detector: An unfitted :class:`~repro.models.detector.PhishingDetector`.
        attack: ``attack(bytecode, rng, strength) -> bytes`` applied to
            phishing test samples only.
        strengths: Sweep values; include 0 (or the attack's identity
            strength) first to record the clean baseline.

    Returns:
        An :class:`AttackSweepResult` with one metric bundle per strength.
    """
    detector.fit(train_bytecodes, np.asarray(train_labels))
    result = AttackSweepResult(
        detector_name=detector.name, attack_name=attack_name
    )
    for strength in strengths:
        rng = np.random.default_rng(seed)  # same randomness per strength
        attacked = attack_corpus(
            test_bytecodes, test_labels, attack, rng, strength
        )
        predictions = detector.predict(attacked)
        result.strengths.append(float(strength))
        result.metrics.append(
            classification_metrics(np.asarray(test_labels), predictions)
        )
    return result


def adversarial_retraining(
    detector_factory,
    train_bytecodes,
    train_labels,
    test_bytecodes,
    test_labels,
    attack,
    strength: float,
    attack_name: str = "attack",
    seed: int = 0,
) -> dict[str, Metrics]:
    """Compare a clean-trained and an adversarially-trained detector.

    The hardened detector's training set is the clean set plus an attacked
    copy of every phishing training sample (the standard augmentation
    defence). Both are evaluated on the *attacked* test set.

    Args:
        detector_factory: Zero-argument callable producing a fresh
            unfitted detector (two independent models are trained).

    Returns:
        ``{"clean_model": Metrics, "hardened_model": Metrics}`` measured
        on the attacked test set.
    """
    train_labels = np.asarray(train_labels)
    test_labels = np.asarray(test_labels)
    rng = np.random.default_rng(seed)
    attacked_test = attack_corpus(
        test_bytecodes, test_labels, attack, rng, strength
    )

    clean_model = detector_factory()
    clean_model.fit(train_bytecodes, train_labels)
    clean_metrics = classification_metrics(
        test_labels, clean_model.predict(attacked_test)
    )

    augment_rng = np.random.default_rng(seed + 1)
    phishing_indices = np.flatnonzero(train_labels == 1)
    augmented_codes = list(train_bytecodes) + [
        attack(train_bytecodes[i], augment_rng, strength)
        for i in phishing_indices
    ]
    augmented_labels = np.concatenate(
        [train_labels, np.ones(phishing_indices.size, dtype=train_labels.dtype)]
    )
    hardened_model = detector_factory()
    hardened_model.fit(augmented_codes, augmented_labels)
    hardened_metrics = classification_metrics(
        test_labels, hardened_model.predict(attacked_test)
    )
    return {"clean_model": clean_metrics, "hardened_model": hardened_metrics}
