"""Defences against the evasion attacks of :mod:`repro.robustness.attacks`.

The proxy-hiding attack (:func:`~repro.robustness.attacks.wrap_in_minimal_proxy`)
is structural: the deployed bytecode the detector sees is the 45-byte
EIP-1167 stub, indistinguishable from benign proxies. No amount of
training on proxy bytes fixes that — the signal simply is not there. The
defence is a *systems* one: recognise the stub, fetch the implementation
bytecode through the chain (one ``eth_getCode`` round-trip, exactly what
the BEM already speaks), and classify that instead.

:class:`ProxyResolvingDetector` wraps any
:class:`~repro.models.detector.PhishingDetector` with that resolution
step, falling back to the raw bytes when the implementation cannot be
fetched (self-destructed target, unreachable endpoint).
"""

from __future__ import annotations

import numpy as np

from repro.datagen.mutation import is_minimal_proxy, proxy_implementation
from repro.models.detector import PhishingDetector

__all__ = ["ProxyResolvingDetector"]


class ProxyResolvingDetector(PhishingDetector):
    """Classify EIP-1167 proxies by their implementation's bytecode.

    Args:
        base: The wrapped detector; ``fit``/``predict_proba`` are
            delegated after proxy resolution.
        code_lookup: ``code_lookup(address) -> bytes`` — typically
            :meth:`repro.chain.rpc.JsonRpcClient.get_code`. Exceptions
            and empty results fall back to the unresolved proxy bytes.
        max_hops: Proxies may point at proxies; resolution follows at
            most this many hops before giving up (cycle guard).
    """

    category = "DEF"

    def __init__(self, base: PhishingDetector, code_lookup, max_hops: int = 4):
        if not isinstance(base, PhishingDetector):
            raise TypeError("base must be a PhishingDetector")
        if max_hops < 1:
            raise ValueError("max_hops must be >= 1")
        self.base = base
        self.code_lookup = code_lookup
        self.max_hops = max_hops
        self.name = f"ProxyResolving[{base.name}]"

    def resolve(self, bytecode: bytes) -> bytes:
        """Follow minimal-proxy indirection to the implementation bytes."""
        current = bytecode
        for _ in range(self.max_hops):
            if not is_minimal_proxy(current):
                return current
            address = proxy_implementation(current)
            try:
                implementation = self.code_lookup(address)
            except Exception:
                return current
            if not implementation:
                return current
            current = implementation
        return current

    def _resolve_all(self, bytecodes) -> list[bytes]:
        return [self.resolve(code) for code in bytecodes]

    def fit(self, bytecodes, labels) -> "ProxyResolvingDetector":
        self.base.fit(self._resolve_all(bytecodes), np.asarray(labels))
        return self

    def predict_proba(self, bytecodes) -> np.ndarray:
        return self.base.predict_proba(self._resolve_all(bytecodes))
