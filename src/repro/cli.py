"""Command-line interface: ``phishinghook <command>``.

Commands:

* ``demo`` — build a synthetic corpus, run a reduced Table II evaluation
  and print the results table,
* ``scan`` — classify contract addresses on a fresh simulated chain; with
  ``--batch`` the addresses go through the deduped, feature-cached
  ``ScanService`` (see :mod:`repro.serve`),
* ``disasm`` — disassemble a hex bytecode string to the BDM's CSV rows,
* ``dataset`` — build a corpus and print Fig. 2-style monthly counts,
* ``monitor`` — replay a synthetic campaign through the event-driven
  streaming pipeline (micro-batches, sharded workers, alert sinks; see
  :mod:`repro.stream`) and report throughput + latency percentiles,
* ``attack`` — demonstrate the benign-mimicry evasion sweep against a
  clean-trained Random Forest (extension; see ``repro.robustness``),
* ``calibrate`` — measure a model's probability calibration (ECE/Brier)
  and the repair from temperature scaling.
"""

from __future__ import annotations

import argparse
import itertools
import sys

import numpy as np

from repro.chain.timeline import MONTHS
from repro.core.pipeline import PhishingHook, PipelineConfig
from repro.datagen.corpus import CorpusConfig, build_corpus
from repro.evm.disassembler import Disassembler

__all__ = ["main"]


def _cmd_demo(args) -> int:
    corpus = build_corpus(
        CorpusConfig(
            n_phishing=args.contracts // 2,
            n_benign=args.contracts // 2,
            seed=args.seed,
        )
    )
    hook = PhishingHook(
        corpus,
        PipelineConfig(
            model_names=tuple(args.models.split(",")),
            n_folds=args.folds,
            seed=args.seed,
            run_post_hoc=False,
        ),
    )
    outcome = hook.run()
    print(outcome.evaluation.table())
    return 0


def _cmd_scan(args) -> int:
    corpus = build_corpus(
        CorpusConfig(n_phishing=args.contracts // 2,
                     n_benign=args.contracts // 2, seed=args.seed)
    )
    hook = PhishingHook(corpus, PipelineConfig(run_post_hoc=False))
    addresses = []
    phishing_records = corpus.phishing_records()
    if "random-phishing" in args.addresses and not phishing_records:
        print("error: corpus has no phishing records to sample "
              "(raise --contracts)", file=sys.stderr)
        return 2
    next_phishing = itertools.cycle(phishing_records)
    for address in args.addresses:
        if address == "random-phishing":
            address = next(next_phishing).address
        addresses.append(address)
    if args.batch:
        service = hook.scan_service(args.model)
        results = service.scan_many(addresses)
        for result in results:
            verdict = "PHISHING" if result.is_phishing else "benign"
            source = "cache" if result.from_cache else "model"
            print(f"{result.address}: {verdict} "
                  f"(p={result.probability:.3f}, model={args.model}, "
                  f"via={source})")
        stats = service.stats()
        served = sum(r.from_cache for r in results)
        print(f"batch of {len(results)}: {served} served from cache; "
              f"overall cache hit rate {stats['hit_rate']:.2f} "
              f"({stats['hits']} hits / {stats['misses']} misses)")
        return 0
    for address in addresses:
        flagged, probability = hook.classify_address(address, args.model)
        verdict = "PHISHING" if flagged else "benign"
        print(f"{address}: {verdict} "
              f"(p={probability:.3f}, model={args.model})")
    return 0


def _cmd_monitor(args) -> int:
    from repro.datagen.dataset import Dataset
    from repro.serve.service import ScanService
    from repro.stream import (
        JsonlSink,
        MemorySink,
        StreamScanner,
        TimelineReplayer,
    )

    corpus = build_corpus(
        CorpusConfig(n_phishing=args.contracts // 2,
                     n_benign=args.contracts // 2, seed=args.seed)
    )
    dataset = Dataset.from_corpus(corpus, seed=args.seed)
    service = ScanService(
        args.model, train_dataset=dataset, seed=args.seed,
        threshold=args.threshold,
    )
    sinks = [MemorySink()]
    if args.jsonl:
        sinks.append(JsonlSink(args.jsonl))
    # Drop policies only bite when the producer can outrun the consumer:
    # switch to consumer-paced intake (flush on deadline/drain, not on
    # batch size) so the bounded queue actually overflows under load.
    scanner = StreamScanner(
        service,
        shards=args.shards,
        max_batch=args.batch_size,
        max_queue=max(args.batch_size, args.queue),
        policy=args.policy,
        auto_flush=args.policy == "block",
        flush_deadline_seconds=args.deadline,
        sinks=sinks,
    )
    replayer = TimelineReplayer(scanner, rate=args.rate or None)
    report = replayer.replay_chain(corpus.chain)
    scanner.close()

    latency = report.latency_seconds
    print(f"replayed {report.events} deployments in "
          f"{report.duration_seconds:.3f}s "
          f"({report.events_per_second:.0f} events/s, "
          f"{report.batches} micro-batches, {args.shards} shard(s))")
    print(f"scanned {report.scanned}, flagged {report.flagged}, "
          f"dropped {report.dropped}, empty {report.skipped_empty}")
    print(f"latency p50 {latency['p50'] * 1e3:.2f}ms  "
          f"p95 {latency['p95'] * 1e3:.2f}ms  "
          f"p99 {latency['p99'] * 1e3:.2f}ms")
    for shard in scanner.summary()["shards"]:
        print(f"  shard {shard['shard']}: {shard['scanned']} scanned, "
              f"{shard['flagged']} flagged over {shard['batches']} batches")
    for sink in sinks:
        print(f"  sink {sink.name}: {sink.stats.delivered} delivered, "
              f"{sink.stats.failed} failed")
    truth = set(corpus.explorer.flagged_addresses())
    flagged = {alert.address for alert in report.alerts}
    if flagged:
        precision = len(flagged & truth) / len(flagged)
        print(f"alert precision vs ground truth: {precision:.3f} "
              f"({len(flagged & truth)}/{len(flagged)})")
    if args.jsonl:
        print(f"alerts appended to {args.jsonl}")
    return 0


def _cmd_disasm(args) -> int:
    print(Disassembler(args.bytecode).to_csv(), end="")
    return 0


def _cmd_dataset(args) -> int:
    corpus = build_corpus(
        CorpusConfig(n_phishing=args.contracts // 2,
                     n_benign=args.contracts // 2, seed=args.seed)
    )
    obtained = corpus.monthly_counts(label=1)
    unique = corpus.monthly_counts(label=1, unique=True)
    print(f"{'Month':8s} {'Obtained':>9s} {'Unique':>7s}")
    for label, got, uniq in zip(MONTHS, obtained, unique):
        print(f"{label:8s} {got:9d} {uniq:7d}")
    print(f"{'total':8s} {obtained.sum():9d} {unique.sum():7d}")
    return 0


def _train_test_from_args(args):
    from repro.datagen.dataset import Dataset

    corpus = build_corpus(
        CorpusConfig(n_phishing=args.contracts // 2,
                     n_benign=args.contracts // 2, seed=args.seed)
    )
    dataset = Dataset.from_corpus(corpus, seed=args.seed)
    return dataset.train_test_split(0.3, seed=args.seed)


def _cmd_attack(args) -> int:
    from repro.models.hsc import HSCDetector
    from repro.robustness import (
        evaluate_under_attack,
        mimicry_padding,
        opcode_byte_distribution,
    )

    train, test = _train_test_from_args(args)
    benign_codes = [
        code for code, label in zip(train.bytecodes, train.labels)
        if label == 0
    ]
    distribution = opcode_byte_distribution(benign_codes)

    def attack(bytecode, rng, strength):
        return mimicry_padding(
            bytecode, rng, int(strength * len(bytecode)), distribution
        )

    detector = HSCDetector(variant="Random Forest", seed=args.seed)
    sweep = evaluate_under_attack(
        detector,
        train.bytecodes, train.labels,
        test.bytecodes, test.labels,
        attack,
        strengths=[float(s) for s in args.strengths.split(",")],
        attack_name="benign-mimicry",
        seed=args.seed,
    )
    print(sweep.table())
    print(f"recall lost at max strength: {sweep.recall_drop():.3f}")
    return 0


def _cmd_calibrate(args) -> int:
    from repro.analysis.calibration import (
        TemperatureScaler,
        brier_score,
        expected_calibration_error,
    )
    from repro.core.registry import create_model

    train, test = _train_test_from_args(args)
    detector = create_model(args.model, seed=args.seed)
    detector.fit(train.bytecodes, np.asarray(train.labels))
    probabilities = detector.predict_proba(test.bytecodes)[:, 1]
    labels = np.asarray(test.labels)

    # Calibrate on half the test split, report on the other half.
    half = labels.size // 2
    scaler = TemperatureScaler().fit(probabilities[:half], labels[:half])
    raw, scaled = probabilities[half:], scaler.transform(probabilities[half:])
    held = labels[half:]

    print(f"{args.model}: temperature = {scaler.temperature_:.3f}")
    print(f"{'':14s} {'ECE':>7s} {'Brier':>7s}")
    print(f"{'raw':14s} {expected_calibration_error(held, raw):7.4f} "
          f"{brier_score(held, raw):7.4f}")
    print(f"{'temperature':14s} "
          f"{expected_calibration_error(held, scaled):7.4f} "
          f"{brier_score(held, scaled):7.4f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="phishinghook",
        description="PhishingHook: opcode-based phishing detection "
                    "(DSN 2025 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a reduced Table II evaluation")
    demo.add_argument("--contracts", type=int, default=200)
    demo.add_argument("--folds", type=int, default=3)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument(
        "--models", default="Random Forest,k-NN,Logistic Regression",
        help="comma-separated Table II model names",
    )
    demo.set_defaults(func=_cmd_demo)

    scan = sub.add_parser("scan", help="classify contract addresses")
    scan.add_argument(
        "addresses", nargs="+", metavar="address",
        help="0x… addresses, or 'random-phishing' (repeatable)",
    )
    scan.add_argument(
        "--batch", action="store_true",
        help="scan all addresses through the batched ScanService "
             "(deduped, feature-cached) and print cache statistics",
    )
    scan.add_argument("--model", default="Random Forest")
    scan.add_argument("--contracts", type=int, default=200)
    scan.add_argument("--seed", type=int, default=0)
    scan.set_defaults(func=_cmd_scan)

    monitor = sub.add_parser(
        "monitor",
        help="replay a campaign through the streaming detection pipeline",
    )
    monitor.add_argument("--contracts", type=int, default=200)
    monitor.add_argument("--seed", type=int, default=0)
    monitor.add_argument("--model", default="Random Forest")
    monitor.add_argument("--threshold", type=float, default=0.5)
    monitor.add_argument("--shards", type=int, default=2,
                         help="sharded scan workers")
    monitor.add_argument("--batch-size", type=int, default=16,
                         help="micro-batch flush threshold")
    monitor.add_argument("--queue", type=int, default=256,
                         help="bounded intake queue size")
    monitor.add_argument(
        "--policy", default="block",
        choices=("block", "drop_oldest", "drop_newest", "sample"),
        help="backpressure policy when the intake queue is full; a drop "
             "policy implies consumer-paced intake (micro-batches flush "
             "on the --deadline, so an overrun queue sheds load)",
    )
    monitor.add_argument("--deadline", type=float, default=0.25,
                         help="micro-batch flush deadline (seconds)")
    monitor.add_argument("--rate", type=float, default=0.0,
                         help="replay rate in events/sec (0 = max speed)")
    monitor.add_argument("--jsonl", default="",
                         help="also append alerts to this JSONL file")
    monitor.set_defaults(func=_cmd_monitor)

    disasm = sub.add_parser("disasm", help="disassemble hex bytecode to CSV")
    disasm.add_argument("bytecode", help="hex string, 0x prefix optional")
    disasm.set_defaults(func=_cmd_disasm)

    dataset = sub.add_parser("dataset", help="print Fig. 2 monthly counts")
    dataset.add_argument("--contracts", type=int, default=200)
    dataset.add_argument("--seed", type=int, default=0)
    dataset.set_defaults(func=_cmd_dataset)

    attack = sub.add_parser(
        "attack", help="benign-mimicry evasion sweep against Random Forest"
    )
    attack.add_argument("--contracts", type=int, default=200)
    attack.add_argument("--seed", type=int, default=0)
    attack.add_argument(
        "--strengths", default="0,0.5,1,2",
        help="comma-separated padding strengths (x contract length)",
    )
    attack.set_defaults(func=_cmd_attack)

    calibrate = sub.add_parser(
        "calibrate", help="probability calibration report for one model"
    )
    calibrate.add_argument("--model", default="Random Forest")
    calibrate.add_argument("--contracts", type=int, default=200)
    calibrate.add_argument("--seed", type=int, default=0)
    calibrate.set_defaults(func=_cmd_calibrate)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
