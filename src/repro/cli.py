"""Command-line interface: ``phishinghook <command>``.

Commands:

* ``demo`` — build a synthetic corpus, run a reduced Table II evaluation
  and print the results table,
* ``train`` — fit one registry model offline and persist it as a
  versioned artifact (file or :class:`~repro.artifacts.ModelStore`);
  the offline half of "train once, serve anywhere",
* ``scan`` — classify contract addresses on a fresh simulated chain,
  serving from a persisted artifact (``--model-path`` / ``--model-tag``);
  ``--train-on-the-fly`` is the explicit fallback that refits in-process.
  With ``--batch`` the addresses go through the deduped, feature-cached
  ``ScanService`` (see :mod:`repro.serve`),
* ``models`` — inspect and manage the artifact store
  (``list``/``export``/``import``/``tag``/``gc``),
* ``rollout`` — shadow-validate a ``candidate`` artifact against
  ``production`` on live stream traffic and promote on metric parity
  (``start``/``status``/``promote``/``abort``; see :mod:`repro.rollout`
  and ``docs/operations.md``),
* ``disasm`` — disassemble a hex bytecode string to the BDM's CSV rows,
* ``dataset`` — build a corpus and print Fig. 2-style monthly counts,
* ``monitor`` — replay a synthetic campaign through the event-driven
  streaming pipeline (micro-batches, sharded workers, alert sinks; see
  :mod:`repro.stream`), cold-starting every shard from one artifact,
* ``loop`` — close the learning loop over a config-declared topology:
  drift on live scores triggers a warm-start retrain, the candidate
  shadows production and the rollout policy promotes or aborts, every
  decision logged durably (``start``/``status``/``history``; see
  :mod:`repro.loop` and ``docs/operations.md``),
* ``fleet`` — run a multi-process serving fleet behind an HTTP
  coordinator (``start``/``serve``/``status``/``scan``/``stop``; see
  :mod:`repro.net` and ``docs/architecture.md``),
* ``store-serve`` — publish a model store over HTTP so fleet workers
  (or other hosts) can cold-start from it via an ``http://`` store URL,
* ``attack`` — demonstrate the benign-mimicry evasion sweep against a
  clean-trained Random Forest (extension; see ``repro.robustness``),
* ``calibrate`` — measure a model's probability calibration (ECE/Brier)
  and the repair from temperature scaling.
"""

from __future__ import annotations

import argparse
import itertools
import sys

import numpy as np

from repro.chain.timeline import MONTHS
from repro.core.pipeline import PhishingHook, PipelineConfig
from repro.datagen.corpus import CorpusConfig, build_corpus
from repro.evm.disassembler import Disassembler

__all__ = ["main"]


def _positive_int(text: str) -> int:
    """Argparse type: an integer >= 1, rejected *at parse time*.

    Worker counts, batch sizes and queue bounds used to accept 0 or
    negative values and blow up deep inside worker setup; argparse
    rejecting them here turns that into a one-line usage error.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value}"
        )
    return value


def _nonnegative_float(text: str) -> float:
    """Argparse type: a float >= 0, rejected at parse time."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative number, got {value}"
        )
    return value


def _launchable_config(path):
    """Load + statically verify a deployment config before launching.

    Returns ``(config, 0)`` when launchable. On a parse/validation
    failure or any ERROR-severity rule violation, prints the full
    report and returns ``(None, 2)`` — the caller refuses to start.
    WARN-severity violations are printed but do not block.
    """
    from repro.deploy import (
        ConfigError,
        DeploymentBlockedError,
        ensure_launchable,
        load_config,
    )

    try:
        config = load_config(path)
    except ConfigError as error:
        print(error, file=sys.stderr)
        return None, 2
    try:
        report = ensure_launchable(config)
    except DeploymentBlockedError as blocked:
        print(blocked.report.render_text(), file=sys.stderr)
        print(
            "refusing to launch: fix the ERROR violations above "
            "(rule catalog: docs/configuration.md)",
            file=sys.stderr,
        )
        return None, 2
    for violation in report.warnings:
        print(violation.render(), file=sys.stderr)
    return config, 0


def _cmd_demo(args) -> int:
    corpus = build_corpus(
        CorpusConfig(
            n_phishing=args.contracts // 2,
            n_benign=args.contracts // 2,
            seed=args.seed,
        )
    )
    hook = PhishingHook(
        corpus,
        PipelineConfig(
            model_names=tuple(args.models.split(",")),
            n_folds=args.folds,
            seed=args.seed,
            run_post_hoc=False,
        ),
    )
    outcome = hook.run()
    print(outcome.evaluation.table())
    return 0


def _store_from(args):
    from repro.artifacts import ModelStore

    # from_url accepts bare paths and file:// / memory:// / bucket://
    # URLs alike, and falls back to $PHOOK_MODEL_STORE / ./phook-models.
    return ModelStore.from_url(getattr(args, "store", None) or None)


def _artifact_source(args):
    """(source, store) for --model-path/--model-tag, or (None, None)."""
    if getattr(args, "model_path", None):
        return args.model_path, None
    if getattr(args, "model_tag", None):
        return args.model_tag, _store_from(args)
    return None, None


_NO_MODEL_HINT = (
    "error: no model artifact given. Train one offline first\n"
    "  (phishinghook train --model {model!r} --contracts {contracts} "
    "--seed {seed})\n"
    "then serve it with --model-tag/--model-path, or pass "
    "--train-on-the-fly to refit in-process."
)


def _cmd_train(args) -> int:
    from repro.artifacts import save_artifact
    from repro.core.registry import create_model
    from repro.datagen.dataset import Dataset
    from repro.ml.flat import precompile
    from repro.ml.metrics import classification_metrics

    if args.out and args.tag:
        print("error: --tag records a store tag; it cannot be combined "
              "with --out (write to the store instead, or import the "
              "file later with 'phishinghook models import --tag …')",
              file=sys.stderr)
        return 2
    corpus = build_corpus(
        CorpusConfig(n_phishing=args.contracts // 2,
                     n_benign=args.contracts // 2, seed=args.seed)
    )
    dataset = Dataset.from_corpus(corpus, seed=args.seed)
    holdout = None
    train = dataset
    if args.holdout > 0:
        train, holdout = dataset.train_test_split(args.holdout, seed=args.seed)

    import time as _time

    model = create_model(args.model, seed=args.seed)
    started = _time.perf_counter()
    model.fit(train.bytecodes, train.labels)
    precompile(model)
    fit_seconds = _time.perf_counter() - started

    metrics = None
    if holdout is not None:
        measured = classification_metrics(
            holdout.labels, model.predict(holdout.bytecodes)
        )
        metrics = measured.as_dict()
    meta = dict(
        model_name=args.model,
        dataset_fingerprint=train.fingerprint(),
        metrics=metrics,
        extra={"contracts": args.contracts, "seed": args.seed},
    )
    if args.out:
        info = save_artifact(model, args.out, **meta)
        where = str(info.path)
        version = info.digest
    else:
        store = _store_from(args)
        tags = tuple(args.tag) if args.tag else ("latest",)
        version = store.put(model, tags=tags, **meta)
        where = f"{store.root} [{', '.join(tags)}]"
    print(f"trained {args.model} on {len(train)} contracts "
          f"in {fit_seconds:.2f}s")
    if metrics:
        print(f"holdout accuracy {metrics['accuracy']:.3f}  "
              f"f1 {metrics['f1']:.3f}")
    print(f"artifact {version[:16]} -> {where}")
    return 0


def _cmd_models(args) -> int:
    import json

    store = _store_from(args)
    if args.models_command == "list":
        rows = store.list()
        if args.json:
            print(json.dumps(rows, indent=2))
            return 0
        if not rows:
            print(f"no artifacts in {store.root}")
            return 0
        print(f"{'VERSION':16s} {'MODEL':24s} {'ACC':>6s} {'SIZE':>9s} TAGS")
        for row in rows:
            accuracy = (row["metrics"] or {}).get("accuracy")
            shown = f"{accuracy:6.3f}" if accuracy is not None else f"{'-':>6s}"
            print(f"{row['version'][:16]:16s} "
                  f"{(row['model_name'] or '?'):24s} "
                  f"{shown} {row['size_bytes']:9d} "
                  f"{','.join(row['tags']) or '-'}")
        return 0
    if args.models_command == "export":
        dest = store.export(
            args.ref, args.dest,
            layout=args.layout,
            compress="zstd" if args.zstd else None,
        )
        print(f"exported {args.ref} -> {dest}")
        return 0
    if args.models_command == "import":
        version = store.import_artifact(
            args.source, tags=tuple(args.tag) if args.tag else ()
        )
        print(f"imported {version[:16]} into {store.root}")
        return 0
    if args.models_command == "tag":
        version = store.tag(args.name, args.ref)
        print(f"{args.name} -> {version[:16]}")
        return 0
    if args.models_command == "gc":
        removed = store.gc()
        print(f"removed {len(removed)} untagged version(s)")
        return 0
    raise AssertionError(f"unknown models command {args.models_command!r}")


def _print_rollout_record(record: dict) -> None:
    comparison = record.get("comparison") or {}
    print(f"state      {record.get('state')}")
    print(f"candidate  {(record.get('candidate_version') or '?')[:16]} "
          f"({record.get('candidate_name') or '?'})")
    print(f"production {(record.get('production_version') or '?')[:16]} "
          f"[tag {record.get('production_tag', 'production')}]")
    if comparison.get("events"):
        print(f"evidence   {comparison['events']} events over "
              f"{comparison['batches']} shard batches: "
              f"agreement {comparison['agreement_rate']:.4f}, "
              f"mean divergence {comparison['mean_divergence']:.4f} "
              f"(max {comparison['max_divergence']:.4f})")
        print(f"disagree   production-only {comparison['production_only']}, "
              f"candidate-only {comparison['candidate_only']}")
        print(f"overhead   shadow scoring added "
              f"{comparison['latency_overhead']:.2f}x of primary "
              f"scoring time")
    print(f"decision   {record.get('decision')}: {record.get('reason')}")


def _cmd_rollout(args) -> int:
    import json

    from repro.rollout import (
        AdaptivePromotionPolicy,
        ManualHoldPolicy,
        MetricParityPolicy,
        ShadowComparison,
        ShadowRollout,
        load_rollout_state,
        save_rollout_state,
    )

    def _policy_from(name, *, min_events, promote_agreement,
                     abort_agreement, max_divergence, max_lost_rate):
        if name == "manual":
            return ManualHoldPolicy()
        if name == "adaptive":
            return AdaptivePromotionPolicy(
                min_events=min_events, max_lost_rate=max_lost_rate,
            )
        return MetricParityPolicy(
            min_events=min_events,
            promote_agreement=promote_agreement,
            abort_agreement=abort_agreement,
            max_mean_divergence=max_divergence,
        )

    if args.rollout_command == "start":
        from repro.stream import StreamScanner, TimelineReplayer

        if args.config:
            # Config-driven launch: parse, statically verify (ERROR
            # violations refuse to start), and build the shadow topology
            # exactly as the file declares it.
            from repro.deploy import (
                build_replay_corpus,
                build_scanner,
                build_service,
                open_store,
            )

            config, code = _launchable_config(args.config)
            if config is None:
                return code
            if config.rollout is None:
                print(f"error: {args.config} has no [rollout] section "
                      "(see docs/configuration.md)", file=sys.stderr)
                return 2
            plan = config.rollout
            candidate, production = plan.candidate, plan.production
            shards = config.stream.shards
            store = open_store(config)
            policy = _policy_from(
                plan.policy,
                min_events=plan.min_events,
                promote_agreement=plan.promote_agreement,
                abort_agreement=plan.abort_agreement,
                max_divergence=plan.max_divergence,
                max_lost_rate=plan.max_lost_rate,
            )
            corpus = build_replay_corpus(config)
            # The scanner serves the production tag; the [model] section
            # names the same ref in a well-formed rollout config.
            service = build_service(config, store=store, source=production)
            scanner = build_scanner(config, service)
        else:
            store = _store_from(args)
            candidate, production = args.candidate, args.production
            shards = args.shards
            policy = _policy_from(
                args.policy,
                min_events=args.min_events,
                promote_agreement=args.promote_agreement,
                abort_agreement=args.abort_agreement,
                max_divergence=args.max_divergence,
                max_lost_rate=args.max_lost_rate,
            )
            corpus = build_corpus(
                CorpusConfig(n_phishing=args.contracts // 2,
                             n_benign=args.contracts // 2, seed=args.seed)
            )
            scanner = StreamScanner.from_artifact(
                production, store=store, shards=shards,
                max_batch=args.batch_size, threshold=args.threshold,
            )
        # A still-shadowing record for the same candidate/production
        # pair resumes its accumulated evidence ("rerun with more
        # traffic"); anything else starts a fresh rollout.
        previous = load_rollout_state(store)
        resumed = None
        if (
            previous
            and previous.get("state") == "shadowing"
            and previous.get("candidate_version")
                == store.resolve(candidate)
            and previous.get("production_version")
                == store.resolve(production)
        ):
            resumed = ShadowComparison.from_dict(
                previous.get("comparison") or {}
            )
        rollout = ShadowRollout(
            scanner, candidate, store=store, policy=policy,
            production_tag=production, comparison=resumed,
        )
        if resumed is not None and resumed.events:
            print(f"resuming shadow evidence: {resumed.events} events "
                  "from the previous run")
        report = TimelineReplayer(scanner).replay_chain(corpus.chain)
        scanner.close()
        record = save_rollout_state(store, rollout.status())
        print(f"shadow-scored {report.scanned} deployments in "
              f"{report.duration_seconds:.3f}s "
              f"({shards} shard(s), {report.batches} micro-batches, "
              f"{report.dropped} dropped)")
        _print_rollout_record(record)
        if rollout.state == "promoted":
            print(f"promoted: tag '{production}' -> "
                  f"{rollout.candidate_version[:16]}; every shard swapped "
                  f"with zero dropped batches")
        elif rollout.state == "aborted":
            print("aborted: production serving untouched")
        else:
            print("holding: rerun with more traffic, or decide with "
                  "'phishinghook rollout promote|abort'")
        return 0

    store = _store_from(args)

    record = load_rollout_state(store)
    if record is None:
        print(f"no rollout recorded in {store.root} "
              "(run 'phishinghook rollout start')", file=sys.stderr)
        return 1
    if args.rollout_command == "status":
        if args.json:
            print(json.dumps(record, indent=2, sort_keys=True))
        else:
            _print_rollout_record(record)
        return 0
    if args.rollout_command in ("promote", "abort"):
        if record.get("state") != "shadowing":
            print(f"error: rollout already {record.get('state')}; "
                  "start a new one", file=sys.stderr)
            return 2
        if args.rollout_command == "promote":
            version = record.get("candidate_version")
            if not version:
                print("error: rollout record has no candidate version",
                      file=sys.stderr)
                return 2
            tag = record.get("production_tag", "production")
            store.tag(tag, version)
            record["state"] = "promoted"
            record["decision"] = "promote"
            record["reason"] = "operator promotion"
            save_rollout_state(store, record)
            print(f"{tag} -> {version[:16]} (serving processes pick up "
                  "the new version at next load/swap)")
        else:
            record["state"] = "aborted"
            record["decision"] = "abort"
            record["reason"] = "operator abort"
            save_rollout_state(store, record)
            print("rollout aborted; production tag untouched")
        return 0
    raise AssertionError(
        f"unknown rollout command {args.rollout_command!r}"
    )


def _cmd_check_config(args) -> int:
    import json

    from repro.deploy import ConfigError, check_config, load_config

    try:
        config = load_config(args.config)
    except ConfigError as error:
        if args.json:
            print(json.dumps(error.as_dict(), indent=2, sort_keys=True))
        else:
            print(error, file=sys.stderr)
        return 2
    report = check_config(config)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render_text())
    if report.errors:
        return 1
    if args.strict and report.warnings:
        return 1
    return 0


def _cmd_scan(args) -> int:
    from repro.serve.service import ScanService

    corpus = build_corpus(
        CorpusConfig(n_phishing=args.contracts // 2,
                     n_benign=args.contracts // 2, seed=args.seed)
    )
    hook = PhishingHook(corpus, PipelineConfig(run_post_hoc=False))
    addresses = []
    phishing_records = corpus.phishing_records()
    if "random-phishing" in args.addresses and not phishing_records:
        print("error: corpus has no phishing records to sample "
              "(raise --contracts)", file=sys.stderr)
        return 2
    next_phishing = itertools.cycle(phishing_records)
    for address in args.addresses:
        if address == "random-phishing":
            address = next(next_phishing).address
        addresses.append(address)

    source, store = _artifact_source(args)
    model = None
    model_label = args.model
    if source is not None:
        service = ScanService.from_artifact(
            source, store=store, rpc=hook.bem.rpc, cache=hook.feature_cache
        )
        model = service.model
        model_label = service.model_name
    elif not args.train_on_the_fly:
        print(_NO_MODEL_HINT.format(model=args.model,
                                    contracts=args.contracts,
                                    seed=args.seed), file=sys.stderr)
        return 2
    if args.batch:
        if source is None:
            service = hook.scan_service(args.model)
        results = service.scan_many(addresses)
        for result in results:
            verdict = "PHISHING" if result.is_phishing else "benign"
            via = "cache" if result.from_cache else "model"
            print(f"{result.address}: {verdict} "
                  f"(p={result.probability:.3f}, model={model_label}, "
                  f"via={via})")
        stats = service.stats()
        served = sum(r.from_cache for r in results)
        print(f"batch of {len(results)}: {served} served from cache; "
              f"overall cache hit rate {stats['hit_rate']:.2f} "
              f"({stats['hits']} hits / {stats['misses']} misses)")
        return 0
    for address in addresses:
        flagged, probability = hook.classify_address(
            address, args.model, model=model
        )
        verdict = "PHISHING" if flagged else "benign"
        print(f"{address}: {verdict} "
              f"(p={probability:.3f}, model={model_label})")
    return 0


def _cmd_monitor(args) -> int:
    from repro.stream import TimelineReplayer

    if args.config:
        # Config-driven launch: the declarative topology file is parsed,
        # statically verified (ERROR violations refuse to start — see
        # 'phishinghook check-config'), and built as written; topology
        # flags on the command line are ignored in this mode.
        from repro.deploy import (
            build_replay_corpus,
            build_scanner,
            build_service,
        )

        config, code = _launchable_config(args.config)
        if config is None:
            return code
        corpus = build_replay_corpus(config)
        service = build_service(config)
        scanner = build_scanner(config, service)
        shards = config.stream.shards
        rate = config.source.rate or None
        jsonl_paths = [s.path for s in config.sinks if s.kind == "jsonl"]
    else:
        from repro.datagen.dataset import Dataset
        from repro.serve.service import ScanService
        from repro.stream import JsonlSink, MemorySink, StreamScanner

        corpus = build_corpus(
            CorpusConfig(n_phishing=args.contracts // 2,
                         n_benign=args.contracts // 2, seed=args.seed)
        )
        source, store = _artifact_source(args)
        if source is not None:
            # The production shape: every shard cold-starts from one
            # persisted artifact — no training inside the monitor.
            service = ScanService.from_artifact(
                source, store=store, threshold=args.threshold
            )
        elif args.train_on_the_fly:
            dataset = Dataset.from_corpus(corpus, seed=args.seed)
            service = ScanService(
                args.model, train_dataset=dataset, seed=args.seed,
                threshold=args.threshold,
            )
        else:
            print(_NO_MODEL_HINT.format(model=args.model,
                                        contracts=args.contracts,
                                        seed=args.seed), file=sys.stderr)
            return 2
        sinks = [MemorySink()]
        if args.jsonl:
            sinks.append(JsonlSink(args.jsonl))
        # Drop policies only bite when the producer can outrun the
        # consumer: switch to consumer-paced intake (flush on deadline/
        # drain, not on batch size) so the bounded queue actually
        # overflows under load.
        scanner = StreamScanner(
            service,
            shards=args.shards,
            max_batch=args.batch_size,
            max_queue=max(args.batch_size, args.queue),
            policy=args.policy,
            auto_flush=args.policy == "block",
            flush_deadline_seconds=args.deadline,
            sinks=sinks,
        )
        shards = args.shards
        rate = args.rate or None
        jsonl_paths = [args.jsonl] if args.jsonl else []
    replayer = TimelineReplayer(scanner, rate=rate)
    report = replayer.replay_chain(corpus.chain)
    scanner.close()

    latency = report.latency_seconds
    print(f"replayed {report.events} deployments in "
          f"{report.duration_seconds:.3f}s "
          f"({report.events_per_second:.0f} events/s, "
          f"{report.batches} micro-batches, {shards} shard(s))")
    print(f"scanned {report.scanned}, flagged {report.flagged}, "
          f"dropped {report.dropped}, empty {report.skipped_empty}")
    print(f"latency p50 {latency['p50'] * 1e3:.2f}ms  "
          f"p95 {latency['p95'] * 1e3:.2f}ms  "
          f"p99 {latency['p99'] * 1e3:.2f}ms")
    for shard in scanner.summary()["shards"]:
        print(f"  shard {shard['shard']}: {shard['scanned']} scanned, "
              f"{shard['flagged']} flagged over {shard['batches']} batches")
    for sink in scanner.sinks:
        print(f"  sink {sink.name}: {sink.stats.delivered} delivered, "
              f"{sink.stats.failed} failed")
    truth = set(corpus.explorer.flagged_addresses())
    flagged = {alert.address for alert in report.alerts}
    if flagged:
        precision = len(flagged & truth) / len(flagged)
        print(f"alert precision vs ground truth: {precision:.3f} "
              f"({len(flagged & truth)}/{len(flagged)})")
    for path in jsonl_paths:
        print(f"alerts appended to {path}")
    return 0


def _cmd_loop(args) -> int:
    import json

    if args.loop_command == "start":
        from repro.deploy import (
            build_loop,
            build_scanner,
            build_service,
            open_store,
        )
        from repro.loop import read_history, save_loop_state
        from repro.stream import TimelineReplayer

        config, code = _launchable_config(args.config)
        if config is None:
            return code
        if config.loop is None:
            print(f"error: {args.config} has no [loop] section "
                  "(see docs/configuration.md)", file=sys.stderr)
            return 2
        store = open_store(config)
        service = build_service(config, store=store)
        scanner = build_scanner(config, service)

        # Two seeded campaigns: a stationary baseline (uniform monthly
        # profile, balanced mix) and a drifted continuation — the same
        # generator with a heavier phishing mix, the scam-family surge
        # the loop exists to catch.
        half = config.source.contracts // 2
        base = build_corpus(
            CorpusConfig(n_phishing=half, n_benign=half,
                         seed=config.source.seed,
                         phishing_profile="uniform")
        )
        drift_total = args.drift_contracts or config.source.contracts
        drifted = build_corpus(
            CorpusConfig(n_phishing=int(drift_total * 0.75),
                         n_benign=drift_total - int(drift_total * 0.75),
                         seed=(args.drift_seed if args.drift_seed is not None
                               else config.source.seed + 1),
                         phishing_profile="uniform")
        )
        labels = {}
        for corpus in (base, drifted):
            for record in corpus.records:
                labels[record.address] = record.label
        loop = build_loop(config, scanner, store, label_of=labels.get)

        production_before = store.tags().get(config.rollout.production
                                             if config.rollout
                                             else "production")
        replayer = TimelineReplayer(scanner, rate=config.source.rate or None)
        replayer.replay_chain(base.chain)
        replayer.replay_chain(drifted.chain)
        status = loop.status()
        save_loop_state(store, status)
        loop.detach()
        scanner.close()

        history = read_history(store)
        if args.json:
            print(json.dumps(status, indent=2, sort_keys=True))
            return 0
        print(f"loop: {loop.events_seen} events replayed, "
              f"{loop.drifts} drift(s), {loop.promotions} promotion(s), "
              f"{loop.aborts} abort(s)")
        production_after = status.get("production")
        if production_before != production_after:
            print(f"production {str(production_before)[:16]} -> "
                  f"{str(production_after)[:16]}")
        else:
            print(f"production unchanged "
                  f"({str(production_after)[:16]})")
        print(f"history    {len(history)} entries in loop-history.jsonl "
              f"(phishinghook loop history)")
        return 0

    from repro.artifacts import ModelStore

    store = ModelStore.from_url(getattr(args, "store", None) or None)
    if args.loop_command == "history":
        from repro.loop import read_history

        entries = read_history(store)
        if args.tail:
            entries = entries[-args.tail:]
        for entry in entries:
            if args.json:
                print(json.dumps(entry, sort_keys=True))
            else:
                stage = entry.get("stage")
                detail = entry.get("reason") or entry.get("error") or ""
                if entry.get("event") == "drift":
                    detail = (f"p={entry.get('p_value'):.4f} "
                              f"effect={entry.get('effect'):.3f}")
                elif entry.get("event") == "retrain":
                    metrics = entry.get("metrics") or {}
                    detail = (f"candidate {str(entry.get('candidate'))[:12]} "
                              f"holdout_accuracy="
                              f"{metrics.get('holdout_accuracy')}")
                label = entry.get("event", "?")
                if stage:
                    label = f"{label}({stage})"
                print(f"{entry.get('seq'):>4}  {label:<16} {detail}")
        if not entries and not args.json:
            print("no loop history (loop-history.jsonl is empty)")
        return 0

    # status
    from repro.loop import load_loop_state

    record = load_loop_state(store)
    if record is None:
        print("no loop state recorded (run 'phishinghook loop start')",
              file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(record, indent=2, sort_keys=True))
        return 0
    print(f"state      {record.get('state')}")
    print(f"events     {record.get('events_seen')} seen, "
          f"{record.get('window_events')} labeled in window")
    print(f"cycles     {record.get('drifts')} drift(s), "
          f"{record.get('promotions')} promotion(s), "
          f"{record.get('aborts')} abort(s)")
    print(f"production {str(record.get('production'))[:16]}")
    monitor = record.get("monitor") or {}
    print(f"monitor    window {monitor.get('window')} x "
          f"{monitor.get('blocks')} blocks, alpha {monitor.get('alpha')}, "
          f"ready {monitor.get('ready')}")
    if record.get("last_error"):
        print(f"last error {record['last_error']}")
    return 0


def _cmd_disasm(args) -> int:
    print(Disassembler(args.bytecode).to_csv(), end="")
    return 0


def _cmd_dataset(args) -> int:
    corpus = build_corpus(
        CorpusConfig(n_phishing=args.contracts // 2,
                     n_benign=args.contracts // 2, seed=args.seed)
    )
    obtained = corpus.monthly_counts(label=1)
    unique = corpus.monthly_counts(label=1, unique=True)
    print(f"{'Month':8s} {'Obtained':>9s} {'Unique':>7s}")
    for label, got, uniq in zip(MONTHS, obtained, unique):
        print(f"{label:8s} {got:9d} {uniq:7d}")
    print(f"{'total':8s} {obtained.sum():9d} {unique.sum():7d}")
    return 0


def _train_test_from_args(args):
    from repro.datagen.dataset import Dataset

    corpus = build_corpus(
        CorpusConfig(n_phishing=args.contracts // 2,
                     n_benign=args.contracts // 2, seed=args.seed)
    )
    dataset = Dataset.from_corpus(corpus, seed=args.seed)
    return dataset.train_test_split(0.3, seed=args.seed)


def _cmd_attack(args) -> int:
    from repro.models.hsc import HSCDetector
    from repro.robustness import (
        evaluate_under_attack,
        mimicry_padding,
        opcode_byte_distribution,
    )

    train, test = _train_test_from_args(args)
    benign_codes = [
        code for code, label in zip(train.bytecodes, train.labels)
        if label == 0
    ]
    distribution = opcode_byte_distribution(benign_codes)

    def attack(bytecode, rng, strength):
        return mimicry_padding(
            bytecode, rng, int(strength * len(bytecode)), distribution
        )

    detector = HSCDetector(variant="Random Forest", seed=args.seed)
    sweep = evaluate_under_attack(
        detector,
        train.bytecodes, train.labels,
        test.bytecodes, test.labels,
        attack,
        strengths=[float(s) for s in args.strengths.split(",")],
        attack_name="benign-mimicry",
        seed=args.seed,
    )
    print(sweep.table())
    print(f"recall lost at max strength: {sweep.recall_drop():.3f}")
    return 0


def _cmd_calibrate(args) -> int:
    from repro.analysis.calibration import (
        TemperatureScaler,
        brier_score,
        expected_calibration_error,
    )
    from repro.core.registry import create_model

    train, test = _train_test_from_args(args)
    detector = create_model(args.model, seed=args.seed)
    detector.fit(train.bytecodes, np.asarray(train.labels))
    probabilities = detector.predict_proba(test.bytecodes)[:, 1]
    labels = np.asarray(test.labels)

    # Calibrate on half the test split, report on the other half.
    half = labels.size // 2
    scaler = TemperatureScaler().fit(probabilities[:half], labels[:half])
    raw, scaled = probabilities[half:], scaler.transform(probabilities[half:])
    held = labels[half:]

    print(f"{args.model}: temperature = {scaler.temperature_:.3f}")
    print(f"{'':14s} {'ECE':>7s} {'Brier':>7s}")
    print(f"{'raw':14s} {expected_calibration_error(held, raw):7.4f} "
          f"{brier_score(held, raw):7.4f}")
    print(f"{'temperature':14s} "
          f"{expected_calibration_error(held, scaled):7.4f} "
          f"{brier_score(held, scaled):7.4f}")
    return 0


def _fleet_client(args):
    """A :class:`FleetClient` from ``--url`` or the fleet state file."""
    from repro.net import FleetClient, load_fleet_state

    url = getattr(args, "url", "") or ""
    if not url:
        try:
            url = load_fleet_state(args.state)["url"]
        except FileNotFoundError:
            print(
                f"error: no fleet state file at {args.state}; start a "
                "fleet first ('phishinghook fleet start --config ...') "
                "or pass --url",
                file=sys.stderr,
            )
            return None
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return None
    return FleetClient(url)


def _fleet_serve(args) -> int:
    """Foreground fleet: verify, build, run until SIGTERM/SIGINT."""
    import pathlib
    import signal
    import time

    from repro.deploy import build_fleet
    from repro.net import save_fleet_state

    config, code = _launchable_config(args.config)
    if config is None:
        return code
    if config.fleet is None:
        print(
            f"error: {args.config} has no [fleet] section; "
            "'phishinghook monitor --config' serves single-process "
            "topologies",
            file=sys.stderr,
        )
        return 2
    manager = build_fleet(config)
    try:
        manager.start()
    except Exception as error:  # startup is all-or-nothing
        print(f"error: fleet failed to start: {error}", file=sys.stderr)
        return 1
    save_fleet_state(args.state, url=manager.url)
    print(
        f"fleet up: {manager.workers} worker(s) behind {manager.url} "
        f"(state file: {args.state})",
        flush=True,
    )
    interrupted = {"flag": False}

    def _on_signal(signum, frame):
        interrupted["flag"] = True

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    try:
        # POST /shutdown flips manager.stopped; signals flip the flag.
        while not (interrupted["flag"] or manager.stopped):
            time.sleep(0.2)
    finally:
        manager.stop()
        pathlib.Path(args.state).unlink(missing_ok=True)
    print("fleet stopped")
    return 0


def _fleet_start(args) -> int:
    """Daemonize ``fleet serve`` and wait for the fleet to be healthy."""
    import pathlib
    import subprocess
    import time

    from repro.net import FleetClient, load_fleet_state
    from repro.net.client import TransportError

    # Verify locally first: a doomed config fails here in milliseconds
    # with the full report instead of a "check the log" round-trip.
    config, code = _launchable_config(args.config)
    if config is None:
        return code
    if config.fleet is None:
        print(f"error: {args.config} has no [fleet] section",
              file=sys.stderr)
        return 2
    pathlib.Path(args.state).unlink(missing_ok=True)
    with open(args.log, "ab") as log:
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "fleet", "serve",
             "--config", args.config, "--state", args.state],
            stdout=log, stderr=subprocess.STDOUT,
            start_new_session=True,
        )
    deadline = time.monotonic() + args.timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            print(
                f"error: fleet process exited with code "
                f"{process.returncode} before becoming healthy "
                f"(log: {args.log})",
                file=sys.stderr,
            )
            return 1
        try:
            state = load_fleet_state(args.state)
            if FleetClient(state["url"], timeout=2.0).healthz().get("ok"):
                print(f"fleet up: {state['url']} "
                      f"(pid {state['pid']}, log {args.log})")
                return 0
        except (FileNotFoundError, ValueError, TransportError):
            pass
        time.sleep(0.2)
    print(
        f"error: fleet not healthy within {args.timeout:.0f}s "
        f"(log: {args.log})",
        file=sys.stderr,
    )
    return 1


def _cmd_fleet(args) -> int:
    import json

    from repro.net import FleetRpcError
    from repro.net.client import TransportError

    if args.fleet_command == "serve":
        return _fleet_serve(args)
    if args.fleet_command == "start":
        return _fleet_start(args)

    client = _fleet_client(args)
    if client is None:
        return 2

    if args.fleet_command == "status":
        try:
            status = client.status()
        except (FleetRpcError, TransportError) as error:
            print(f"error: coordinator at {client.base_url} unreachable: "
                  f"{error}", file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps(status, indent=2, sort_keys=True))
            return 0
        counters = status["counters"]
        latency = status["batch_latency_seconds"]
        health = ""
        if status.get("degraded"):
            health += f", {status['degraded']} degraded"
        if status.get("quarantined"):
            health += f", {status['quarantined']} QUARANTINED"
        print(f"coordinator {client.base_url}: "
              f"{status['alive']}/{len(status['workers'])} worker(s) "
              f"alive, overflow={status['overflow']}, "
              f"queue_depth={status['queue_depth']}"
              + health
              + (", draining" if status["draining"] else ""))
        print(f"batches {counters['batches']}  "
              f"scanned {counters['scanned']}  "
              f"flagged {counters['flagged']}  "
              f"shed {counters['shed']}  rerouted {counters['rerouted']}")
        print(f"feature handoff: {counters['shm_batches']} shm, "
              f"{counters['inline_batches']} inline")
        shared = status.get("shared_cache")
        if shared:
            print(f"shared feature cache: {shared['hits']} hits  "
                  f"{shared['misses']} misses  "
                  f"{shared['entries']}/{shared['slots']} slots "
                  f"({shared['resident_bytes']} bytes resident)  "
                  f"evictions {shared['evictions']}  "
                  f"pinned {shared['pinned_slots']}")
        if latency:
            print(f"batch latency p50 {latency['p50'] * 1e3:.2f}ms  "
                  f"p95 {latency['p95'] * 1e3:.2f}ms  "
                  f"p99 {latency['p99'] * 1e3:.2f}ms")
        for worker in status["workers"]:
            state = worker.get("state") or (
                "alive" if worker["alive"] else "dead")
            label = state.upper() if state in ("dead", "quarantined") else state
            extras = ""
            if worker.get("respawns"):
                extras += f" respawns={worker['respawns']}"
            if worker.get("degraded"):
                extras += " degraded"
            print(f"  worker {worker['index']} [{label}] "
                  f"pid={worker['pid']} inflight={worker['inflight']} "
                  f"completed={worker['completed']} "
                  f"failed={worker['failed']}" + extras)
        return 0

    if args.fleet_command == "scan":
        corpus = build_corpus(
            CorpusConfig(n_phishing=args.contracts // 2,
                         n_benign=args.contracts // 2, seed=args.seed)
        )
        phishing_records = corpus.phishing_records()
        if "random-phishing" in args.addresses and not phishing_records:
            print("error: corpus has no phishing records to sample "
                  "(raise --contracts)", file=sys.stderr)
            return 2
        next_phishing = itertools.cycle(phishing_records)
        addresses = [
            next(next_phishing).address if a == "random-phishing" else a
            for a in args.addresses
        ]
        codes = [corpus.chain.get_code(address) for address in addresses]
        try:
            results = client.scan(addresses, codes)
        except (FleetRpcError, TransportError) as error:
            print(f"error: scan via {client.base_url} failed: {error}",
                  file=sys.stderr)
            return 1
        for result in results:
            verdict = "PHISHING" if result["is_phishing"] else "benign"
            via = "cache" if result["from_cache"] else "model"
            print(f"{result['address']}: {verdict} "
                  f"(p={result['probability']:.3f}, "
                  f"shard={result['shard']}, via={via})")
        return 0

    if args.fleet_command == "stop":
        try:
            alive = client.healthz().get("alive_workers", "?")
        except TransportError:
            print(f"fleet at {client.base_url} is already down")
            return 0
        client.shutdown()
        print(f"fleet at {client.base_url} stopping "
              f"({alive} worker(s) draining)")
        return 0

    raise AssertionError(  # pragma: no cover - argparse enforces choices
        f"unknown fleet command {args.fleet_command!r}"
    )


def _cmd_store_serve(args) -> int:
    import signal
    import threading

    from repro.net import serve_store

    store = _store_from(args)
    server = serve_store(
        store.backend, args.host, args.port, writable=args.writable
    )
    host, port = server.server_address[:2]
    mode = "read-write" if args.writable else "read-only"
    print(f"serving store {store.backend.url} at http://{host}:{port} "
          f"({mode})", flush=True)

    def _on_signal(signum, frame):
        # shutdown() must not run on the serve_forever thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()
    print("store server stopped")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="phishinghook",
        description="PhishingHook: opcode-based phishing detection "
                    "(DSN 2025 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a reduced Table II evaluation")
    demo.add_argument("--contracts", type=int, default=200)
    demo.add_argument("--folds", type=int, default=3)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument(
        "--models", default="Random Forest,k-NN,Logistic Regression",
        help="comma-separated Table II model names",
    )
    demo.set_defaults(func=_cmd_demo)

    def add_artifact_options(parser):
        parser.add_argument(
            "--model-path", default="",
            help="serve from this artifact file (see 'phishinghook train')",
        )
        parser.add_argument(
            "--model-tag", default="",
            help="serve the store version behind this tag/version/prefix",
        )
        parser.add_argument(
            "--store", default="",
            help="model store path or URL (file://, memory://, "
                 "bucket://, http://; default: $PHOOK_MODEL_STORE or "
                 "./phook-models)",
        )
        parser.add_argument(
            "--train-on-the-fly", action="store_true",
            help="explicit fallback: refit the model in-process instead "
                 "of loading an artifact",
        )

    train = sub.add_parser(
        "train",
        help="fit one model offline and persist it as a versioned artifact",
    )
    train.add_argument("--model", default="Random Forest")
    train.add_argument("--contracts", type=int, default=200)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument(
        "--holdout", type=float, default=0.25,
        help="holdout fraction for the recorded metrics (0 = train on "
             "everything, no metrics)",
    )
    train.add_argument(
        "--out", default="",
        help="write the artifact to this file instead of the store",
    )
    train.add_argument(
        "--store", default="",
        help="model store path or URL (file://, memory://, bucket://, "
             "http://; default: $PHOOK_MODEL_STORE or ./phook-models)",
    )
    train.add_argument(
        "--tag", action="append", default=[],
        help="store tag(s) for the new version (default: latest; "
             "repeatable)",
    )
    train.set_defaults(func=_cmd_train)

    models = sub.add_parser(
        "models", help="inspect and manage the model artifact store"
    )
    models.add_argument(
        "--store", default="",
        help="model store path or URL (file://, memory://, bucket://, "
             "http://; default: $PHOOK_MODEL_STORE or ./phook-models)",
    )
    models_sub = models.add_subparsers(dest="models_command", required=True)
    models_list = models_sub.add_parser("list", help="list stored versions")
    models_list.add_argument("--json", action="store_true",
                             help="machine-readable output")
    models_export = models_sub.add_parser(
        "export", help="copy an artifact out of the store"
    )
    models_export.add_argument("ref", help="tag, version, or version prefix")
    models_export.add_argument("dest", help="destination file or directory")
    models_export.add_argument(
        "--layout", choices=("stored", "deflate"), default=None,
        help="repack on the way out: 'stored' for an mmap-ready file, "
             "'deflate' to shrink a stored artifact for the wire",
    )
    models_export.add_argument(
        "--zstd", action="store_true",
        help="wrap the exported file in a zstd frame (.zst)",
    )
    models_import = models_sub.add_parser(
        "import", help="verify an artifact file and add it to the store"
    )
    models_import.add_argument("source", help="artifact file to import")
    models_import.add_argument("--tag", action="append", default=[])
    models_tag = models_sub.add_parser("tag", help="point a tag at a version")
    models_tag.add_argument("name")
    models_tag.add_argument("ref", help="tag, version, or version prefix")
    models_sub.add_parser("gc", help="delete untagged versions")
    models.set_defaults(func=_cmd_models)

    rollout = sub.add_parser(
        "rollout",
        help="shadow-validate a candidate model against production",
    )
    rollout.add_argument(
        "--store", default="",
        help="model store path or URL (file://, memory://, bucket://, "
             "http://; default: $PHOOK_MODEL_STORE or ./phook-models)",
    )
    rollout_sub = rollout.add_subparsers(dest="rollout_command",
                                         required=True)
    rollout_start = rollout_sub.add_parser(
        "start",
        help="shadow-score the candidate on replayed stream traffic "
             "and apply the rollout policy",
    )
    rollout_start.add_argument(
        "--config", default="",
        help="declarative deployment file (TOML/JSON) with a [rollout] "
             "section; statically verified first — ERROR violations "
             "refuse to launch (overrides the topology flags below)",
    )
    rollout_start.add_argument(
        "--candidate", default="candidate",
        help="store tag/version of the model under validation",
    )
    rollout_start.add_argument(
        "--production", default="production",
        help="store tag serving production (repointed on promotion)",
    )
    rollout_start.add_argument("--contracts", type=_positive_int,
                               default=200)
    rollout_start.add_argument("--seed", type=int, default=0)
    rollout_start.add_argument("--shards", type=_positive_int, default=2,
                               help="sharded scan workers")
    rollout_start.add_argument("--batch-size", type=_positive_int,
                               default=16,
                               help="micro-batch flush threshold")
    rollout_start.add_argument("--threshold", type=float, default=0.5)
    rollout_start.add_argument(
        "--policy", default="parity",
        choices=("parity", "manual", "adaptive"),
        help="parity: promote/abort automatically on the thresholds "
             "below; adaptive: loss-averse learning-loop gate (promote "
             "unless production alerts are dropped); manual: only "
             "accumulate evidence, decide with 'rollout promote|abort'",
    )
    rollout_start.add_argument(
        "--min-events", type=_positive_int, default=100,
        help="evidence floor before the parity policy may decide",
    )
    rollout_start.add_argument(
        "--promote-agreement", type=float, default=0.98,
        help="verdict agreement rate required to promote",
    )
    rollout_start.add_argument(
        "--abort-agreement", type=float, default=0.90,
        help="agreement rate below which the candidate is aborted",
    )
    rollout_start.add_argument(
        "--max-divergence", type=float, default=0.05,
        help="maximum mean |p_prod - p_cand| allowed for promotion",
    )
    rollout_start.add_argument(
        "--max-lost-rate", type=_nonnegative_float, default=0.02,
        help="adaptive policy: highest tolerated fraction of shadow "
             "events where only production flagged",
    )
    rollout_status = rollout_sub.add_parser(
        "status", help="print the recorded rollout state"
    )
    rollout_status.add_argument("--json", action="store_true",
                                help="machine-readable output")
    rollout_sub.add_parser(
        "promote",
        help="manually repoint the production tag at the candidate",
    )
    rollout_sub.add_parser(
        "abort", help="manually end the rollout, production untouched"
    )
    rollout.set_defaults(func=_cmd_rollout)

    scan = sub.add_parser("scan", help="classify contract addresses")
    scan.add_argument(
        "addresses", nargs="+", metavar="address",
        help="0x… addresses, or 'random-phishing' (repeatable)",
    )
    scan.add_argument(
        "--batch", action="store_true",
        help="scan all addresses through the batched ScanService "
             "(deduped, feature-cached) and print cache statistics",
    )
    scan.add_argument("--model", default="Random Forest")
    scan.add_argument("--contracts", type=int, default=200)
    scan.add_argument("--seed", type=int, default=0)
    add_artifact_options(scan)
    scan.set_defaults(func=_cmd_scan)

    monitor = sub.add_parser(
        "monitor",
        help="replay a campaign through the streaming detection pipeline",
    )
    monitor.add_argument(
        "--config", default="",
        help="declarative deployment file (TOML/JSON); statically "
             "verified first — ERROR violations refuse to launch "
             "(overrides the topology flags below)",
    )
    monitor.add_argument("--contracts", type=_positive_int, default=200)
    monitor.add_argument("--seed", type=int, default=0)
    monitor.add_argument("--model", default="Random Forest")
    monitor.add_argument("--threshold", type=float, default=0.5)
    monitor.add_argument("--shards", type=_positive_int, default=2,
                         help="sharded scan workers")
    monitor.add_argument("--batch-size", type=_positive_int, default=16,
                         help="micro-batch flush threshold")
    monitor.add_argument("--queue", type=_positive_int, default=256,
                         help="bounded intake queue size")
    monitor.add_argument(
        "--policy", default="block",
        choices=("block", "drop_oldest", "drop_newest", "sample"),
        help="backpressure policy when the intake queue is full; a drop "
             "policy implies consumer-paced intake (micro-batches flush "
             "on the --deadline, so an overrun queue sheds load)",
    )
    monitor.add_argument("--deadline", type=_nonnegative_float,
                         default=0.25,
                         help="micro-batch flush deadline (seconds)")
    monitor.add_argument("--rate", type=_nonnegative_float, default=0.0,
                         help="replay rate in events/sec (0 = max speed)")
    monitor.add_argument("--jsonl", default="",
                         help="also append alerts to this JSONL file")
    add_artifact_options(monitor)
    monitor.set_defaults(func=_cmd_monitor)

    loop = sub.add_parser(
        "loop",
        help="run the continuous-learning loop: drift detection, "
             "warm-start retrain, shadow validation, promotion",
    )
    loop_sub = loop.add_subparsers(dest="loop_command", required=True)
    loop_start = loop_sub.add_parser(
        "start",
        help="replay a stationary baseline then a drifted campaign "
             "through a config-declared loop topology",
    )
    loop_start.add_argument(
        "--config", required=True,
        help="declarative deployment file (TOML/JSON) with a [loop] "
             "section; statically verified first — ERROR violations "
             "refuse to launch",
    )
    loop_start.add_argument(
        "--drift-contracts", type=_positive_int, default=0,
        help="deployments in the drifted continuation campaign "
             "(default: source.contracts)",
    )
    loop_start.add_argument(
        "--drift-seed", type=int, default=None,
        help="seed of the drifted campaign (default: source.seed + 1)",
    )
    loop_start.add_argument("--json", action="store_true",
                            help="print the final loop status as JSON")
    loop_status = loop_sub.add_parser(
        "status", help="print the last saved loop state from the store"
    )
    loop_status.add_argument("--store", default="",
                             help="model store URL or path")
    loop_status.add_argument("--json", action="store_true")
    loop_history = loop_sub.add_parser(
        "history",
        help="print the durable decision log (loop-history.jsonl)",
    )
    loop_history.add_argument("--store", default="",
                              help="model store URL or path")
    loop_history.add_argument("--tail", type=_positive_int, default=0,
                              help="only the last N entries")
    loop_history.add_argument("--json", action="store_true",
                              help="one canonical JSON entry per line")
    loop.set_defaults(func=_cmd_loop)

    check = sub.add_parser(
        "check-config",
        help="statically verify a deployment config against the "
             "dependency-violation rule catalog without starting anything",
    )
    check.add_argument(
        "config", help="deployment file to verify (TOML or JSON)"
    )
    check.add_argument("--json", action="store_true",
                       help="machine-readable report")
    check.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on WARN-severity violations too",
    )
    check.set_defaults(func=_cmd_check_config)

    fleet = sub.add_parser(
        "fleet",
        help="multi-process serving fleet behind an HTTP coordinator",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    def add_fleet_locator(parser):
        parser.add_argument(
            "--state", default="./phook-fleet.json",
            help="fleet state file (written by start/serve, read by "
                 "status/scan/stop)",
        )
        parser.add_argument(
            "--url", default="",
            help="coordinator base URL (overrides the state file)",
        )

    fleet_serve = fleet_sub.add_parser(
        "serve",
        help="run a fleet in the foreground until SIGTERM/Ctrl-C",
    )
    fleet_serve.add_argument(
        "--config", required=True,
        help="deployment file (TOML/JSON) with a [fleet] section; "
             "statically verified first — ERROR violations refuse to "
             "launch",
    )
    fleet_serve.add_argument(
        "--state", default="./phook-fleet.json",
        help="write the coordinator URL + pid here for status/scan/stop",
    )

    fleet_start = fleet_sub.add_parser(
        "start",
        help="launch a fleet in the background and wait until healthy",
    )
    fleet_start.add_argument(
        "--config", required=True,
        help="deployment file (TOML/JSON) with a [fleet] section; "
             "statically verified first — ERROR violations refuse to "
             "launch",
    )
    fleet_start.add_argument(
        "--state", default="./phook-fleet.json",
        help="write the coordinator URL + pid here for status/scan/stop",
    )
    fleet_start.add_argument(
        "--log", default="phook-fleet.log",
        help="append the daemonized fleet's output here",
    )
    fleet_start.add_argument(
        "--timeout", type=_nonnegative_float, default=90.0,
        help="seconds to wait for every worker's model cold-start",
    )

    fleet_status = fleet_sub.add_parser(
        "status", help="print a running fleet's workers and counters"
    )
    add_fleet_locator(fleet_status)
    fleet_status.add_argument("--json", action="store_true",
                              help="machine-readable output")

    fleet_scan = fleet_sub.add_parser(
        "scan", help="classify contract addresses through the fleet"
    )
    fleet_scan.add_argument(
        "addresses", nargs="+", metavar="address",
        help="0x… addresses, or 'random-phishing' (repeatable)",
    )
    fleet_scan.add_argument("--contracts", type=_positive_int, default=200)
    fleet_scan.add_argument("--seed", type=int, default=0)
    add_fleet_locator(fleet_scan)

    fleet_stop = fleet_sub.add_parser(
        "stop", help="drain and shut down a running fleet"
    )
    add_fleet_locator(fleet_stop)
    fleet.set_defaults(func=_cmd_fleet)

    store_serve = sub.add_parser(
        "store-serve",
        help="publish a model store over HTTP (http:// store backend)",
    )
    store_serve.add_argument(
        "--store", default="",
        help="model store path or URL (file://, memory://, bucket://, "
             "http://; default: $PHOOK_MODEL_STORE or ./phook-models)",
    )
    store_serve.add_argument("--host", default="127.0.0.1")
    store_serve.add_argument(
        "--port", type=int, default=8700,
        help="bind port (0 = ephemeral)",
    )
    store_serve.add_argument(
        "--writable", action="store_true",
        help="accept PUT/DELETE too (default: read-only, writes get 405)",
    )
    store_serve.set_defaults(func=_cmd_store_serve)

    disasm = sub.add_parser("disasm", help="disassemble hex bytecode to CSV")
    disasm.add_argument("bytecode", help="hex string, 0x prefix optional")
    disasm.set_defaults(func=_cmd_disasm)

    dataset = sub.add_parser("dataset", help="print Fig. 2 monthly counts")
    dataset.add_argument("--contracts", type=int, default=200)
    dataset.add_argument("--seed", type=int, default=0)
    dataset.set_defaults(func=_cmd_dataset)

    attack = sub.add_parser(
        "attack", help="benign-mimicry evasion sweep against Random Forest"
    )
    attack.add_argument("--contracts", type=int, default=200)
    attack.add_argument("--seed", type=int, default=0)
    attack.add_argument(
        "--strengths", default="0,0.5,1,2",
        help="comma-separated padding strengths (x contract length)",
    )
    attack.set_defaults(func=_cmd_attack)

    calibrate = sub.add_parser(
        "calibrate", help="probability calibration report for one model"
    )
    calibrate.add_argument("--model", default="Random Forest")
    calibrate.add_argument("--contracts", type=int, default=200)
    calibrate.add_argument("--seed", type=int, default=0)
    calibrate.set_defaults(func=_cmd_calibrate)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
