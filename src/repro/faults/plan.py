"""Deterministic, seedable fault injection for the serving stack.

Dependable-systems claims are only as good as the failures they were
tested against. This module gives the repo a *machine-checkable* failure
catalog the way the deploy rule engine gives it a machine-checkable
config catalog: a :class:`FaultPlan` is an explicit, serializable list
of :class:`FaultSpec` entries — kill worker 1 on its 3rd batch, return
HTTP 500 for the first 4 store GETs, stall the webhook sink for 2s —
installed once and fired from *fault points* compiled into the
production code paths (worker scan loop, HTTP client, store server,
alert sinks). No monkeypatching, no test-only subclasses: the chaos
suite exercises exactly the binaries production runs.

Determinism: triggers are **count-based** (``after`` skips the first N
matching hits, ``count`` bounds the total firings), so a seeded plan
replays bit-identically. The optional ``probability`` trigger draws
from the plan's own seeded :class:`random.Random` for soak-style runs;
the CI chaos suite uses counts only.

Cross-process propagation: :func:`install_plan` also writes the plan
into ``os.environ[FAULT_PLAN_ENV]``, and :func:`active_plan` falls back
to that variable — so fleet worker processes (forked *or* spawned after
installation) observe the same plan without any extra plumbing. Hit
counters are per-process: a respawned worker starts its own count,
which is what "this worker dies on its Nth batch" should mean.

The fast path costs one global read when no plan is installed; a
production process that never installs a plan pays nothing measurable.
"""

from __future__ import annotations

import contextlib
import json
import os
import random
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "FAULT_PLAN_ENV",
    "FaultSpec",
    "FaultPlan",
    "InjectedFault",
    "active_plan",
    "clear_plan",
    "fire",
    "install_plan",
]

#: Environment variable carrying the installed plan to child processes.
FAULT_PLAN_ENV = "PHOOK_FAULT_PLAN"

#: Fault sites compiled into the production code paths. Keys are what
#: ``fire(site, ...)`` is called with; the actions each site honours are
#: documented at the call site and in :class:`FaultSpec`.
SITES = (
    "worker.start",   # worker process cold start (action: error)
    "worker.scan",    # worker batch scoring (actions: kill, delay)
    "store.get",      # store-serve GET (actions: error, truncate, delay)
    "http.request",   # client, before sending (actions: drop, delay)
    "http.response",  # client, after receiving (actions: drop, corrupt,
                      # delay)
    "sink.emit",      # alert sink delivery (actions: stall, error)
)


class InjectedFault(ConnectionError):
    """An injected transport-level failure (``drop`` actions).

    Subclasses ``ConnectionError`` so the HTTP client wraps it in its
    usual :class:`~repro.net.client.TransportError` — callers exercise
    their real reroute/retry paths, not a special test path.
    """


@dataclass
class FaultSpec:
    """One injectable fault: where, what, and when.

    Args:
        site: One of :data:`SITES`.
        action: What happens when the spec fires — the site decides the
            mechanics (``kill`` → ``os._exit``, ``error`` → HTTP
            ``status`` / raised ``OSError``, ``truncate`` → half the
            body, ``drop`` → :class:`InjectedFault`, ``corrupt`` →
            flipped body bytes, ``delay``/``stall`` → ``sleep(delay)``,
            with ``stall`` also failing the delivery).
        match: Substring that must appear in the site's context string
            (URL, store key, sink name) for the spec to apply; empty
            matches everything at the site.
        worker: Restrict to one worker index (``-1`` = any).
        after: Skip the first ``after`` matching hits (fire on hit
            ``after + 1``).
        count: Fire at most ``count`` times (``-1`` = unbounded).
        delay: Seconds for ``delay``/``stall`` actions.
        status: HTTP status for ``error`` actions at HTTP sites.
        probability: When > 0, fire on a seeded coin flip instead of
            deterministically (soak runs; the chaos CI uses counts).
    """

    site: str
    action: str
    match: str = ""
    worker: int = -1
    after: int = 0
    count: int = -1
    delay: float = 0.0
    status: int = 500
    probability: float = 0.0

    # Per-process bookkeeping (not serialized).
    hits: int = field(default=0, compare=False)
    fired: int = field(default=0, compare=False)

    _FIELDS = ("site", "action", "match", "worker", "after", "count",
               "delay", "status", "probability")

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self._FIELDS}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(**{k: data[k] for k in cls._FIELDS if k in data})


class FaultPlan:
    """A seeded, serializable set of :class:`FaultSpec` entries."""

    def __init__(self, specs=(), *, seed: int = 0):
        self.specs = [
            spec if isinstance(spec, FaultSpec) else FaultSpec(**spec)
            for spec in specs
        ]
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()
        for spec in self.specs:
            if spec.site not in SITES:
                raise ValueError(
                    f"unknown fault site {spec.site!r} "
                    f"(known: {', '.join(SITES)})"
                )

    # ------------------------------------------------------------------ #
    # Matching
    # ------------------------------------------------------------------ #

    def fire(self, site: str, *, context: str = "",
             worker: int = -1) -> FaultSpec | None:
        """The first spec that triggers at this hit, if any.

        Bookkeeping (hit and fire counters, the seeded RNG) is locked so
        multi-threaded servers count deterministically.
        """
        with self._lock:
            for spec in self.specs:
                if spec.site != site:
                    continue
                if spec.match and spec.match not in context:
                    continue
                if spec.worker >= 0 and spec.worker != worker:
                    continue
                spec.hits += 1
                if spec.count >= 0 and spec.fired >= spec.count:
                    continue
                if spec.probability > 0.0:
                    if self._rng.random() >= spec.probability:
                        continue
                elif spec.hits <= spec.after:
                    continue
                spec.fired += 1
                return spec
        return None

    # ------------------------------------------------------------------ #
    # Serialization (environment propagation to worker processes)
    # ------------------------------------------------------------------ #

    def to_json(self) -> str:
        return json.dumps({
            "seed": self.seed,
            "specs": [spec.as_dict() for spec in self.specs],
        }, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        return cls(
            [FaultSpec.from_dict(s) for s in data.get("specs", [])],
            seed=int(data.get("seed", 0)),
        )

    @contextlib.contextmanager
    def installed(self):
        """``with plan.installed():`` — install for the block, then clear."""
        install_plan(self)
        try:
            yield self
        finally:
            clear_plan()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(seed={self.seed}, specs={len(self.specs)})"


# --------------------------------------------------------------------- #
# Global installation + the fault-point entry call
# --------------------------------------------------------------------- #

_PLAN: FaultPlan | None = None
#: Whether this process already looked at FAULT_PLAN_ENV (child
#: processes under spawn start with _PLAN=None but inherit the env).
_ENV_CHECKED = False
_INSTALL_LOCK = threading.Lock()


def install_plan(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` process-globally and export it to children."""
    global _PLAN, _ENV_CHECKED
    with _INSTALL_LOCK:
        _PLAN = plan
        _ENV_CHECKED = True
        os.environ[FAULT_PLAN_ENV] = plan.to_json()
    return plan


def clear_plan() -> None:
    """Remove the installed plan (and its environment export)."""
    global _PLAN, _ENV_CHECKED
    with _INSTALL_LOCK:
        _PLAN = None
        _ENV_CHECKED = True
        os.environ.pop(FAULT_PLAN_ENV, None)


def active_plan() -> FaultPlan | None:
    """The installed plan, loading from the environment once if needed."""
    global _PLAN, _ENV_CHECKED
    if _PLAN is not None or _ENV_CHECKED:
        return _PLAN
    with _INSTALL_LOCK:
        if _PLAN is None and not _ENV_CHECKED:
            text = os.environ.get(FAULT_PLAN_ENV)
            if text:
                try:
                    _PLAN = FaultPlan.from_json(text)
                except (ValueError, TypeError):
                    _PLAN = None
            _ENV_CHECKED = True
    return _PLAN


def fire(site: str, *, context: str = "", worker: int = -1,
         sleep=time.sleep) -> FaultSpec | None:
    """Fault-point entry: returns the triggered spec (or ``None``).

    ``delay``-type actions sleep here so every call site gets them for
    free; anything else is interpreted by the caller. The no-plan fast
    path is two global reads.
    """
    plan = _PLAN
    if plan is None:
        if _ENV_CHECKED:
            return None
        plan = active_plan()
        if plan is None:
            return None
    spec = plan.fire(site, context=context, worker=worker)
    if spec is not None and spec.delay > 0 and spec.action in (
            "delay", "stall"):
        sleep(spec.delay)
    return spec
