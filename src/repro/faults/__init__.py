"""Deterministic fault injection (``repro.faults``).

See :mod:`repro.faults.plan` for the model: a :class:`FaultPlan` is a
seeded, serializable list of :class:`FaultSpec` entries fired from
fault points compiled into the production code paths (worker scan loop,
HTTP client, store server, alert sinks). The chaos suite
(``tests/net/test_chaos.py``) and the ``chaos-smoke`` CI job drive the
resilience machinery — supervision, retry/breaker, degraded serving,
dead-letter spooling — through these plans and assert the alert-set
invariant after every injected failure.
"""

from repro.faults.plan import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_plan,
    clear_plan,
    fire,
    install_plan,
)

__all__ = [
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active_plan",
    "clear_plan",
    "fire",
    "install_plan",
]
