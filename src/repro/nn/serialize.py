"""Weight persistence for NN modules.

A production detector must be trainable offline and shippable to the
scanning endpoint (see ``examples/wallet_guard.py`` — training happens
ahead of monitoring). ``state_dict``/``load_state_dict`` follow the
PyTorch convention: a flat name → array mapping over the module tree,
saved as a compressed ``.npz``.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.nn.layers import Module, Parameter

__all__ = ["state_dict", "load_state_dict", "save_module", "load_module"]


def _walk(module: Module, prefix: str = ""):
    """Yield (name, parameter) pairs in deterministic traversal order."""
    for attribute, value in sorted(vars(module).items()):
        name = f"{prefix}{attribute}"
        if isinstance(value, Parameter):
            yield name, value
        elif isinstance(value, Module):
            yield from _walk(value, prefix=f"{name}.")
        elif isinstance(value, (list, tuple)):
            for index, item in enumerate(value):
                if isinstance(item, Module):
                    yield from _walk(item, prefix=f"{name}.{index}.")
                elif isinstance(item, Parameter):
                    yield f"{name}.{index}", item
        elif isinstance(value, dict):
            for key, item in sorted(value.items()):
                if isinstance(item, Module):
                    yield from _walk(item, prefix=f"{name}.{key}.")
                elif isinstance(item, Parameter):
                    yield f"{name}.{key}", item


def state_dict(module: Module) -> dict[str, np.ndarray]:
    """Flat name → weight-array mapping (copies, detached)."""
    return {name: parameter.data.copy() for name, parameter in _walk(module)}


def load_state_dict(module: Module, weights: dict[str, np.ndarray]) -> None:
    """Load weights in place.

    Raises:
        KeyError: On missing or unexpected parameter names.
        ValueError: On shape mismatches.
    """
    parameters = dict(_walk(module))
    missing = set(parameters) - set(weights)
    unexpected = set(weights) - set(parameters)
    if missing or unexpected:
        raise KeyError(
            f"state dict mismatch: missing={sorted(missing)} "
            f"unexpected={sorted(unexpected)}"
        )
    for name, parameter in parameters.items():
        value = np.asarray(weights[name])
        if value.shape != parameter.data.shape:
            raise ValueError(
                f"{name}: shape {value.shape} != expected "
                f"{parameter.data.shape}"
            )
        parameter.data = value.astype(parameter.data.dtype, copy=True)


def save_module(module: Module, path: str | pathlib.Path) -> pathlib.Path:
    """Persist a module's weights as compressed ``.npz``."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **state_dict(module))
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_module(module: Module, path: str | pathlib.Path) -> Module:
    """Load weights saved by :func:`save_module` into ``module``."""
    with np.load(pathlib.Path(path)) as archive:
        load_state_dict(module, dict(archive))
    return module
