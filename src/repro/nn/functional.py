"""Stateless differentiable functions: softmax, losses, dropout."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor, where

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "dropout",
    "masked_fill",
]


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = logits - np.max(logits.data, axis=axis, keepdims=True)
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    shifted = logits - np.max(logits.data, axis=axis, keepdims=True)
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy of ``(n, n_classes)`` logits vs int targets."""
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"expected (n, classes) logits, got {logits.shape}")
    log_probs = log_softmax(logits, axis=-1)
    picked = log_probs[np.arange(len(targets)), targets]
    return -picked.mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean BCE of raw logits vs {0,1} targets (stable log1p form)."""
    targets = np.asarray(targets, dtype=np.float64)
    # log(1+exp(-|z|)) + max(z,0) - z*y
    z = logits
    abs_term = where(z.data >= 0, z, -z)
    loss = (1.0 + (-abs_term).exp()).log() + where(z.data >= 0, z, z * 0.0) - z * targets
    return loss.mean()


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout; identity when not training or rate == 0."""
    if not training or rate <= 0.0:
        return x
    if rate >= 1.0:
        raise ValueError("dropout rate must be < 1")
    mask = (rng.random(x.shape) >= rate) / (1.0 - rate)
    return x * Tensor(mask)


def masked_fill(x: Tensor, mask: np.ndarray, value: float) -> Tensor:
    """Set positions where ``mask`` is True to ``value`` (e.g. -inf-ish)."""
    filler = Tensor(np.full(x.shape, value))
    return where(~np.asarray(mask, dtype=bool), x, filler)
