"""Core layers and the ``Module`` container protocol."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "Sequential",
    "ReLU",
    "GELU",
]


class Parameter(Tensor):
    """A tensor registered as trainable state."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class: recursive parameter collection and train/eval mode."""

    def __init__(self):
        self.training = True

    def parameters(self) -> list[Parameter]:
        found: list[Parameter] = []
        seen: set[int] = set()

        def visit(obj):
            if isinstance(obj, Parameter):
                if id(obj) not in seen:
                    seen.add(id(obj))
                    found.append(obj)
            elif isinstance(obj, Module):
                for value in vars(obj).values():
                    visit(value)
            elif isinstance(obj, (list, tuple)):
                for value in obj:
                    visit(value)
            elif isinstance(obj, dict):
                for value in obj.values():
                    visit(value)

        visit(self)
        return found

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in vars(self).values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)

    def n_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - interface
        raise NotImplementedError


def _kaiming(rng: np.random.Generator, fan_in: int, shape) -> np.ndarray:
    return rng.normal(scale=np.sqrt(2.0 / max(fan_in, 1)), size=shape)


class Linear(Module):
    """Affine map ``y = x W + b`` over the last axis."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(_kaiming(rng, in_features, (in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Integer-id → dense-vector lookup table."""

    def __init__(self, num_embeddings: int, dim: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(rng.normal(scale=0.02, size=(num_embeddings, dim)))

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.min() < 0 or ids.max() >= self.num_embeddings:
            raise ValueError(
                f"ids out of range [0, {self.num_embeddings}): "
                f"[{ids.min()}, {ids.max()}]"
            )
        return self.weight.take_rows(ids)


class LayerNorm(Module):
    """Normalize the last axis; learnable scale and shift."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered / (variance + self.eps).sqrt()
        return normalized * self.gamma + self.beta


class Dropout(Module):
    def __init__(self, rate: float = 0.1, seed: int = 0):
        super().__init__()
        self.rate = rate
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, self._rng, self.training)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.gelu()


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.modules = list(modules)

    def forward(self, x):
        for module in self.modules:
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self.modules)

    def __getitem__(self, index: int) -> Module:
        return self.modules[index]
