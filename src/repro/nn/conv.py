"""Convolution, batch normalization and pooling (NCHW layout).

``Conv2d`` uses im2col with a custom backward (col2im scatter), supports
stride, symmetric padding and grouped convolution — ``groups ==
in_channels`` gives the depthwise convolutions the ECA and EfficientNet
blocks need.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Module, Parameter
from repro.nn.tensor import Tensor

__all__ = ["Conv2d", "BatchNorm2d", "MaxPool2d", "AvgPool2d", "GlobalAvgPool2d"]


def _im2col(x: np.ndarray, kernel: int, stride: int):
    """(B, C, H, W) → patches (B, C·k·k, OH·OW), plus output dims."""
    batch, channels, height, width = x.shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    # Strided sliding windows: (B, C, OH, OW, k, k)
    strides = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(batch, channels, out_h, out_w, kernel, kernel),
        strides=(
            strides[0], strides[1],
            strides[2] * stride, strides[3] * stride,
            strides[2], strides[3],
        ),
        writeable=False,
    )
    # → (B, C·k·k, OH·OW)
    columns = windows.transpose(0, 1, 4, 5, 2, 3).reshape(
        batch, channels * kernel * kernel, out_h * out_w
    )
    return np.ascontiguousarray(columns), out_h, out_w


def _col2im(columns: np.ndarray, x_shape, kernel: int, stride: int) -> np.ndarray:
    """Adjoint of :func:`_im2col`: scatter-add patches back to image."""
    batch, channels, height, width = x_shape
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    reshaped = columns.reshape(batch, channels, kernel, kernel, out_h, out_w)
    image = np.zeros(x_shape)
    for ky in range(kernel):
        for kx in range(kernel):
            image[
                :, :,
                ky : ky + out_h * stride : stride,
                kx : kx + out_w * stride : stride,
            ] += reshaped[:, :, ky, kx]
    return image


class Conv2d(Module):
    """2-D convolution.

    Args:
        in_channels / out_channels: Channel counts.
        kernel_size: Square kernel side.
        stride: Spatial stride.
        padding: Symmetric zero padding.
        groups: Channel groups; ``groups == in_channels`` is depthwise.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if in_channels % groups or out_channels % groups:
            raise ValueError("channel counts must be divisible by groups")
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        fan_in = (in_channels // groups) * kernel_size * kernel_size
        self.weight = Parameter(
            rng.normal(
                scale=np.sqrt(2.0 / fan_in),
                size=(out_channels, in_channels // groups, kernel_size, kernel_size),
            )
        )
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"expected NCHW input, got shape {x.shape}")
        if self.padding:
            x = x.pad2d(self.padding)
        x_data = x.data
        batch = x_data.shape[0]
        k, stride, groups = self.kernel_size, self.stride, self.groups
        c_in_group = self.in_channels // groups
        c_out_group = self.out_channels // groups

        group_columns = []
        out_h = out_w = None
        for g in range(groups):
            part = x_data[:, g * c_in_group : (g + 1) * c_in_group]
            columns, out_h, out_w = _im2col(part, k, stride)
            group_columns.append(columns)

        weight = self.weight
        w_data = weight.data.reshape(self.out_channels, -1)
        outputs = np.empty((batch, self.out_channels, out_h * out_w))
        for g in range(groups):
            w_group = w_data[g * c_out_group : (g + 1) * c_out_group]
            outputs[:, g * c_out_group : (g + 1) * c_out_group] = (
                w_group @ group_columns[g]
            )
        out_data = outputs.reshape(batch, self.out_channels, out_h, out_w)
        if self.bias is not None:
            out_data = out_data + self.bias.data.reshape(1, -1, 1, 1)

        parents = [x, weight] + ([self.bias] if self.bias is not None else [])
        padded_shape = x_data.shape

        def backward(grad):
            grad_flat = grad.reshape(batch, self.out_channels, -1)
            if weight.requires_grad:
                grad_w = np.zeros_like(w_data)
                for g in range(groups):
                    grad_group = grad_flat[:, g * c_out_group : (g + 1) * c_out_group]
                    grad_w[g * c_out_group : (g + 1) * c_out_group] = np.einsum(
                        "bop,bip->oi", grad_group, group_columns[g]
                    )
                weight._accumulate(grad_w.reshape(weight.shape))
            if self.bias is not None and self.bias.requires_grad:
                self.bias._accumulate(grad.sum(axis=(0, 2, 3)))
            if x.requires_grad:
                grad_x = np.zeros(padded_shape)
                for g in range(groups):
                    w_group = w_data[g * c_out_group : (g + 1) * c_out_group]
                    grad_cols = np.einsum(
                        "oi,bop->bip",
                        w_group,
                        grad_flat[:, g * c_out_group : (g + 1) * c_out_group],
                    )
                    grad_x[:, g * c_in_group : (g + 1) * c_in_group] = _col2im(
                        grad_cols,
                        (batch, c_in_group) + padded_shape[2:],
                        k,
                        stride,
                    )
                x._accumulate(grad_x)

        return Tensor._from_op(out_data, tuple(parents), backward)


class BatchNorm2d(Module):
    """Per-channel batch normalization with running statistics."""

    def __init__(self, channels: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.channels = channels
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(channels))
        self.beta = Parameter(np.zeros(channels))
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mean = x.data.mean(axis=(0, 2, 3))
            var = x.data.var(axis=(0, 2, 3))
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            )
        else:
            mean, var = self.running_mean, self.running_var
        shape = (1, self.channels, 1, 1)
        centered = x - mean.reshape(shape)
        scaled = centered / np.sqrt(var + self.eps).reshape(shape)
        return scaled * self.gamma.reshape(shape) + self.beta.reshape(shape)


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        k, stride = self.kernel_size, self.stride
        columns, out_h, out_w = _im2col(x.data, k, stride)
        batch, __, positions = columns.shape
        channels = x.shape[1]
        windows = columns.reshape(batch, channels, k * k, positions)
        arg = windows.argmax(axis=2)
        out_data = np.take_along_axis(windows, arg[:, :, None, :], axis=2)[:, :, 0, :]
        x_shape = x.data.shape

        def backward(grad):
            if not x.requires_grad:
                return
            grad_windows = np.zeros((batch, channels, k * k, positions))
            np.put_along_axis(grad_windows, arg[:, :, None, :], grad.reshape(
                batch, channels, 1, positions), axis=2)
            x._accumulate(
                _col2im(
                    grad_windows.reshape(batch, channels * k * k, positions),
                    x_shape, k, stride,
                )
            )

        return Tensor._from_op(
            out_data.reshape(batch, channels, out_h, out_w), (x,), backward
        )


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        k, stride = self.kernel_size, self.stride
        columns, out_h, out_w = _im2col(x.data, k, stride)
        batch, __, positions = columns.shape
        channels = x.shape[1]
        windows = columns.reshape(batch, channels, k * k, positions)
        out_data = windows.mean(axis=2).reshape(batch, channels, out_h, out_w)
        x_shape = x.data.shape

        def backward(grad):
            if not x.requires_grad:
                return
            spread = np.repeat(
                grad.reshape(batch, channels, 1, positions) / (k * k), k * k, axis=2
            )
            x._accumulate(
                _col2im(
                    spread.reshape(batch, channels * k * k, positions),
                    x_shape, k, stride,
                )
            )

        return Tensor._from_op(out_data, (x,), backward)


class GlobalAvgPool2d(Module):
    """(B, C, H, W) → (B, C)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=(2, 3))
