"""Multi-head attention with causal masking and relative position bias.

Covers the three attention flavours the paper's models use: bidirectional
(ViT, T5 encoder, SCSGuard), causal (GPT-2) and T5-style bucketed relative
position bias in place of absolute position embeddings.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Linear, Module, Parameter
from repro.nn.tensor import Tensor

__all__ = ["MultiHeadAttention", "RelativePositionBias"]

_NEG_INF = -1e9


class RelativePositionBias(Module):
    """T5's bucketed relative position bias, one scalar per (bucket, head)."""

    def __init__(self, n_heads: int, n_buckets: int = 16, max_distance: int = 64,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.n_heads = n_heads
        self.n_buckets = n_buckets
        self.max_distance = max_distance
        self.weight = Parameter(rng.normal(scale=0.02, size=(n_buckets, n_heads)))

    def _bucket(self, relative: np.ndarray) -> np.ndarray:
        """Symmetric log-spaced bucketing of relative distances."""
        n = self.n_buckets // 2
        buckets = np.where(relative < 0, 0, n)
        magnitude = np.abs(relative)
        exact = n // 2
        is_small = magnitude < exact
        log_ratio = np.log(np.maximum(magnitude, 1) / exact) / np.log(
            self.max_distance / exact
        )
        large = exact + (log_ratio * (n - exact)).astype(np.int64)
        large = np.minimum(large, n - 1)
        return buckets + np.where(is_small, magnitude, large)

    def forward(self, length: int) -> Tensor:
        """Bias of shape ``(n_heads, length, length)``."""
        positions = np.arange(length)
        relative = positions[None, :] - positions[:, None]
        buckets = self._bucket(relative)
        bias = self.weight.take_rows(buckets.reshape(-1))
        return bias.reshape(length, length, self.n_heads).transpose(2, 0, 1)


class MultiHeadAttention(Module):
    """Scaled dot-product attention over (B, T, D) sequences.

    Args:
        dim: Model width (split across heads).
        n_heads: Number of attention heads.
        causal: Mask future positions (GPT-2 style).
        dropout: Attention-weight dropout rate.
    """

    def __init__(
        self,
        dim: int,
        n_heads: int,
        causal: bool = False,
        dropout: float = 0.0,
        seed: int = 0,
    ):
        super().__init__()
        if dim % n_heads:
            raise ValueError(f"dim {dim} not divisible by n_heads {n_heads}")
        rng = np.random.default_rng(seed)
        self.dim = dim
        self.n_heads = n_heads
        self.head_dim = dim // n_heads
        self.causal = causal
        self.dropout_rate = dropout
        self._rng = np.random.default_rng(seed + 1)
        self.q_proj = Linear(dim, dim, rng=rng)
        self.k_proj = Linear(dim, dim, rng=rng)
        self.v_proj = Linear(dim, dim, rng=rng)
        self.out_proj = Linear(dim, dim, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, length: int) -> Tensor:
        return x.reshape(batch, length, self.n_heads, self.head_dim).transpose(
            0, 2, 1, 3
        )

    def forward(
        self,
        x: Tensor,
        key_padding_mask: np.ndarray | None = None,
        position_bias: Tensor | None = None,
    ) -> Tensor:
        """Self-attention.

        Args:
            x: Input of shape ``(batch, length, dim)``.
            key_padding_mask: Bool array ``(batch, length)``; True marks PAD
                positions that must not be attended to.
            position_bias: Optional ``(n_heads, length, length)`` additive
                bias (from :class:`RelativePositionBias`).
        """
        batch, length, __ = x.shape
        q = self._split_heads(self.q_proj(x), batch, length)
        k = self._split_heads(self.k_proj(x), batch, length)
        v = self._split_heads(self.v_proj(x), batch, length)

        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(self.head_dim))
        if position_bias is not None:
            scores = scores + position_bias.reshape(
                1, self.n_heads, length, length
            )

        mask = np.zeros((batch, 1, length, length), dtype=bool)
        if self.causal:
            mask |= np.triu(np.ones((length, length), dtype=bool), k=1)
        if key_padding_mask is not None:
            mask |= np.asarray(key_padding_mask, dtype=bool)[:, None, None, :]
        if mask.any():
            scores = F.masked_fill(scores, np.broadcast_to(mask, scores.shape),
                                   _NEG_INF)

        weights = F.softmax(scores, axis=-1)
        weights = F.dropout(weights, self.dropout_rate, self._rng, self.training)
        context = weights @ v
        merged = context.transpose(0, 2, 1, 3).reshape(batch, length, self.dim)
        return self.out_proj(merged)
