"""A compact training loop for the deep models.

Handles mini-batching, gradient clipping, early stopping on training loss
plateaus and deterministic shuffling. Models expose
``loss(batch_inputs, batch_targets) -> Tensor`` and the trainer drives
optimization; this keeps each model class focused on its architecture.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.nn.optim import Adam, clip_grad_norm

__all__ = ["TrainingConfig", "Trainer"]


@dataclass
class TrainingConfig:
    """Knobs for one training run."""

    epochs: int = 10
    batch_size: int = 32
    lr: float = 1e-3
    weight_decay: float = 0.0
    clip_norm: float = 5.0
    seed: int = 0
    patience: int | None = None  # early stop after N epochs w/o improvement
    min_improvement: float = 1e-4
    verbose: bool = False


class Trainer:
    """Drive a model exposing ``parameters()`` and ``loss(X, y)``."""

    def __init__(self, model, config: TrainingConfig | None = None):
        self.model = model
        self.config = config or TrainingConfig()
        self.history: list[float] = []
        self.train_seconds = 0.0

    def fit(self, inputs, targets) -> "Trainer":
        config = self.config
        rng = np.random.default_rng(config.seed)
        optimizer = Adam(
            self.model.parameters(), lr=config.lr,
            weight_decay=config.weight_decay,
        )
        n = len(targets)
        indices = np.arange(n)
        best_loss = np.inf
        stale_epochs = 0
        started = time.perf_counter()
        self.model.train()

        for epoch in range(config.epochs):
            rng.shuffle(indices)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n, config.batch_size):
                rows = indices[start : start + config.batch_size]
                batch_inputs = self._take(inputs, rows)
                batch_targets = targets[rows]
                optimizer.zero_grad()
                loss = self.model.loss(batch_inputs, batch_targets)
                loss.backward()
                clip_grad_norm(self.model.parameters(), config.clip_norm)
                optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            epoch_loss /= max(batches, 1)
            self.history.append(epoch_loss)
            if config.verbose:
                print(f"epoch {epoch}: loss={epoch_loss:.4f}")
            if config.patience is not None:
                if epoch_loss < best_loss - config.min_improvement:
                    best_loss = epoch_loss
                    stale_epochs = 0
                else:
                    stale_epochs += 1
                    if stale_epochs > config.patience:
                        break
        self.train_seconds = time.perf_counter() - started
        self.model.eval()
        return self

    @staticmethod
    def _take(inputs, rows):
        if isinstance(inputs, np.ndarray):
            return inputs[rows]
        if isinstance(inputs, (list, tuple)):
            return [inputs[i] for i in rows]
        raise TypeError(f"unsupported input container {type(inputs).__name__}")
