"""The autograd ``Tensor``: numpy arrays with reverse-mode differentiation.

Design follows the classic define-by-run tape: each op produces a new
``Tensor`` holding a closure that accumulates gradients into its parents;
``backward()`` runs the closures in reverse topological order. Ops support
full numpy broadcasting — gradients are summed back over broadcast axes.
"""

from __future__ import annotations

import contextlib

import numpy as np

__all__ = ["Tensor", "concat", "where", "no_grad"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Disable graph construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value) -> np.ndarray:
    if isinstance(value, Tensor):
        raise TypeError("expected raw data, got Tensor")
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """A differentiable array."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False):
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _lift(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    @classmethod
    def _from_op(cls, data, parents, backward) -> "Tensor":
        out = cls(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------ #
    # Gradient accumulation
    # ------------------------------------------------------------------ #

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self, gradient: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor (default seed: ones)."""
        if not self.requires_grad:
            raise RuntimeError("tensor does not require grad")
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))
        seed = np.ones_like(self.data) if gradient is None else np.asarray(gradient)
        self._accumulate(seed)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #

    def __add__(self, other):
        other = self._lift(other)
        out_data = self.data + other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._from_op(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self):
        def backward(grad):
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._from_op(-self.data, (self,), backward)

    def __sub__(self, other):
        return self + (-self._lift(other))

    def __rsub__(self, other):
        return self._lift(other) + (-self)

    def __mul__(self, other):
        other = self._lift(other)
        out_data = self.data * other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._from_op(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._lift(other)
        out_data = self.data / other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / other.data**2, other.shape)
                )

        return Tensor._from_op(out_data, (self, other), backward)

    def __rtruediv__(self, other):
        return self._lift(other) / self

    def __pow__(self, exponent: float):
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._from_op(out_data, (self,), backward)

    def __matmul__(self, other):
        other = self._lift(other)
        out_data = self.data @ other.data

        def backward(grad):
            if self.requires_grad:
                grad_self = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(grad_self, self.shape))
            if other.requires_grad:
                grad_other = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(grad_other, other.shape))

        return Tensor._from_op(out_data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # Elementwise functions
    # ------------------------------------------------------------------ #

    def exp(self):
        out_data = np.exp(np.clip(self.data, -700, 700))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._from_op(out_data, (self,), backward)

    def log(self):
        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._from_op(np.log(self.data), (self,), backward)

    def sqrt(self):
        out_data = np.sqrt(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * 0.5 / np.maximum(out_data, 1e-300))

        return Tensor._from_op(out_data, (self,), backward)

    def tanh(self):
        out_data = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._from_op(out_data, (self,), backward)

    def sigmoid(self):
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60)))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._from_op(out_data, (self,), backward)

    def relu(self):
        mask = self.data > 0

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._from_op(self.data * mask, (self,), backward)

    def gelu(self):
        """GELU with the tanh approximation (as in GPT-2)."""
        x = self.data
        c = np.sqrt(2.0 / np.pi)
        inner = c * (x + 0.044715 * x**3)
        t = np.tanh(inner)
        out_data = 0.5 * x * (1.0 + t)

        def backward(grad):
            if self.requires_grad:
                d_inner = c * (1.0 + 3 * 0.044715 * x**2)
                derivative = 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t**2) * d_inner
                self._accumulate(grad * derivative)

        return Tensor._from_op(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions / shape ops
    # ------------------------------------------------------------------ #

    def sum(self, axis=None, keepdims: bool = False):
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            if axis is None:
                self._accumulate(np.broadcast_to(grad, self.shape).copy())
                return
            if not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(grad, self.shape).copy())

        return Tensor._from_op(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False):
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._from_op(out_data, (self,), backward)

    def transpose(self, *axes):
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._from_op(self.data.transpose(axes), (self,), backward)

    def swapaxes(self, a: int, b: int):
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, key):
        out_data = self.data[key]

        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, key, grad)
                self._accumulate(full)

        return Tensor._from_op(out_data, (self,), backward)

    def take_rows(self, indices: np.ndarray):
        """Embedding lookup: rows of a 2-D table by integer index array."""
        indices = np.asarray(indices)
        out_data = self.data[indices]

        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, indices.reshape(-1), grad.reshape(-1, self.shape[-1]))
                self._accumulate(full)

        return Tensor._from_op(out_data, (self,), backward)

    def pad2d(self, padding: int):
        """Zero-pad the last two axes symmetrically (NCHW images)."""
        if padding == 0:
            return self
        pad_width = [(0, 0)] * (self.ndim - 2) + [(padding, padding)] * 2
        out_data = np.pad(self.data, pad_width)
        slices = tuple(
            [slice(None)] * (self.ndim - 2)
            + [slice(padding, -padding)] * 2
        )

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad[slices])

        return Tensor._from_op(out_data, (self,), backward)


def concat(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an axis (differentiable)."""
    tensors = [Tensor._lift(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        for tensor, start, end in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, end)
                tensor._accumulate(grad[tuple(index)])

    return Tensor._from_op(out_data, tuple(tensors), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select; ``condition`` is a non-differentiable bool array."""
    a = Tensor._lift(a)
    b = Tensor._lift(b)
    condition = np.asarray(condition, dtype=bool)
    out_data = np.where(condition, a.data, b.data)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * condition, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * ~condition, b.shape))

    return Tensor._from_op(out_data, (a, b), backward)
