"""Pre-LN transformer blocks (shared by GPT-2, T5 and ViT heads)."""

from __future__ import annotations

import numpy as np

from repro.nn.attention import MultiHeadAttention
from repro.nn.layers import Dropout, GELU, LayerNorm, Linear, Module, Sequential
from repro.nn.tensor import Tensor

__all__ = ["TransformerBlock"]


class TransformerBlock(Module):
    """Pre-LayerNorm block: ``x + Attn(LN(x))`` then ``x + MLP(LN(x))``."""

    def __init__(
        self,
        dim: int,
        n_heads: int,
        mlp_ratio: float = 4.0,
        causal: bool = False,
        dropout: float = 0.0,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        hidden = int(dim * mlp_ratio)
        self.ln1 = LayerNorm(dim)
        self.attention = MultiHeadAttention(
            dim, n_heads, causal=causal, dropout=dropout, seed=seed
        )
        self.ln2 = LayerNorm(dim)
        self.mlp = Sequential(
            Linear(dim, hidden, rng=rng),
            GELU(),
            Linear(hidden, dim, rng=rng),
            Dropout(dropout, seed=seed + 7),
        )

    def forward(
        self,
        x: Tensor,
        key_padding_mask: np.ndarray | None = None,
        position_bias: Tensor | None = None,
    ) -> Tensor:
        x = x + self.attention(
            self.ln1(x),
            key_padding_mask=key_padding_mask,
            position_bias=position_bias,
        )
        return x + self.mlp(self.ln2(x))
