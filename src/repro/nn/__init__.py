"""A reverse-mode autograd neural-network framework on numpy.

Substitution S4/S5 in DESIGN.md: stands in for PyTorch 2.5. The framework
provides exactly what the paper's deep models need:

* :mod:`repro.nn.tensor` — the autograd ``Tensor`` (broadcasting ops,
  matmul, reductions, indexing) with topological-order backprop,
* :mod:`repro.nn.layers` — ``Module``, ``Linear``, ``Embedding``,
  ``LayerNorm``, ``Dropout``, ``Sequential``,
* :mod:`repro.nn.conv` — ``Conv2d`` (im2col, grouped/depthwise),
  ``BatchNorm2d``, pooling,
* :mod:`repro.nn.attention` — multi-head attention with causal masks and
  T5-style relative position bias,
* :mod:`repro.nn.transformer` — pre-LN transformer blocks,
* :mod:`repro.nn.recurrent` — the GRU used by SCSGuard,
* :mod:`repro.nn.optim` — SGD/Adam/AdamW + gradient clipping,
* :mod:`repro.nn.trainer` — a mini training loop with early stopping.

Gradients of every op are verified against central finite differences in
``tests/nn/test_autograd.py``.
"""

from repro.nn.tensor import Tensor, concat, no_grad, where
from repro.nn import functional
from repro.nn.layers import (
    Dropout,
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    Module,
    ReLU,
    Sequential,
)
from repro.nn.conv import AvgPool2d, BatchNorm2d, Conv2d, GlobalAvgPool2d, MaxPool2d
from repro.nn.attention import MultiHeadAttention, RelativePositionBias
from repro.nn.transformer import TransformerBlock
from repro.nn.recurrent import GRU
from repro.nn.optim import SGD, Adam, AdamW, clip_grad_norm
from repro.nn.trainer import Trainer, TrainingConfig

__all__ = [
    "Tensor",
    "concat",
    "no_grad",
    "where",
    "functional",
    "Module",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "Sequential",
    "ReLU",
    "GELU",
    "Conv2d",
    "BatchNorm2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "MultiHeadAttention",
    "RelativePositionBias",
    "TransformerBlock",
    "GRU",
    "SGD",
    "Adam",
    "AdamW",
    "clip_grad_norm",
    "Trainer",
    "TrainingConfig",
]
