"""Gated recurrent unit (GRU) — SCSGuard's sequence model."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor, concat

__all__ = ["GRU"]


class GRU(Module):
    """Single-layer GRU over (batch, time, features).

    Standard formulation:
        z_t = σ(W_z x_t + U_z h_{t-1}),
        r_t = σ(W_r x_t + U_r h_{t-1}),
        ĥ_t = tanh(W_h x_t + U_h (r_t ⊙ h_{t-1})),
        h_t = (1 − z_t) ⊙ h_{t-1} + z_t ⊙ ĥ_t.
    """

    def __init__(self, input_dim: int, hidden_dim: int, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.x_z = Linear(input_dim, hidden_dim, rng=rng)
        self.h_z = Linear(hidden_dim, hidden_dim, bias=False, rng=rng)
        self.x_r = Linear(input_dim, hidden_dim, rng=rng)
        self.h_r = Linear(hidden_dim, hidden_dim, bias=False, rng=rng)
        self.x_h = Linear(input_dim, hidden_dim, rng=rng)
        self.h_h = Linear(hidden_dim, hidden_dim, bias=False, rng=rng)

    def forward(
        self, x: Tensor, mask: np.ndarray | None = None
    ) -> tuple[Tensor, Tensor]:
        """Run the recurrence.

        Args:
            x: Input of shape ``(batch, time, input_dim)``.
            mask: Optional bool array ``(batch, time)``; True marks PAD
                steps whose updates are skipped (state carried through).

        Returns:
            ``(outputs, last_hidden)`` with shapes ``(batch, time, hidden)``
            and ``(batch, hidden)``.
        """
        batch, steps, __ = x.shape
        hidden = Tensor(np.zeros((batch, self.hidden_dim)))
        outputs = []
        for t in range(steps):
            x_t = x[:, t, :]
            z = (self.x_z(x_t) + self.h_z(hidden)).sigmoid()
            r = (self.x_r(x_t) + self.h_r(hidden)).sigmoid()
            candidate = (self.x_h(x_t) + self.h_h(hidden * r)).tanh()
            updated = hidden * (1.0 - z) + candidate * z
            if mask is not None:
                keep = Tensor(mask[:, t : t + 1].astype(np.float64))
                updated = hidden * keep + updated * (1.0 - keep)
            hidden = updated
            outputs.append(hidden.reshape(batch, 1, self.hidden_dim))
        return concat(outputs, axis=1), hidden
