"""Optimizers: SGD (momentum), Adam, AdamW; gradient clipping."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Parameter

__all__ = ["SGD", "Adam", "AdamW", "clip_grad_norm"]


def clip_grad_norm(parameters: list[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``."""
    total = 0.0
    for parameter in parameters:
        if parameter.grad is not None:
            total += float(np.sum(parameter.grad**2))
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for parameter in parameters:
            if parameter.grad is not None:
                parameter.grad *= scale
    return norm


class Optimizer:
    def __init__(self, parameters: list[Parameter]):
        self.parameters = list(parameters)

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class SGD(Optimizer):
    def __init__(self, parameters, lr: float = 0.01, momentum: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            velocity *= self.momentum
            velocity -= self.lr * parameter.grad
            parameter.data += velocity


class Adam(Optimizer):
    def __init__(
        self,
        parameters,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad**2
            parameter.data -= (
                self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            )


class AdamW(Adam):
    """Adam with decoupled weight decay."""

    def step(self) -> None:
        if self.weight_decay:
            for parameter in self.parameters:
                if parameter.grad is not None:
                    parameter.data -= self.lr * self.weight_decay * parameter.data
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = decay
