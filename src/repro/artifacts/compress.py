"""Optional zstd transport compression for artifact export/import.

zstd is strictly a *transport* wrapper: an exported ``.npz.zst`` is the
artifact's exact bytes through a zstd frame, so decompress-then-import
reproduces the original file and its content digest. The dependency is
optional by design — this repo must run on a bare numpy toolchain — so
every entry point gates on :func:`zstd_available` and raises
:class:`ZstdUnavailableError` with an actionable message instead of an
``ImportError`` at import time.

Backends probed, in order:

* ``compression.zstd`` — the Python 3.14+ standard library module,
* ``zstandard`` — the de-facto third-party binding.
"""

from __future__ import annotations

__all__ = [
    "ZSTD_MAGIC",
    "ZstdUnavailableError",
    "zstd_available",
    "zstd_compress",
    "zstd_decompress",
    "is_zstd",
]

#: First four bytes of every zstd frame (RFC 8878 §3.1.1).
ZSTD_MAGIC = b"\x28\xb5\x2f\xfd"


class ZstdUnavailableError(RuntimeError):
    """zstd was requested but no backend is importable."""

    def __init__(self, action: str):
        super().__init__(
            f"cannot {action}: no zstd backend available (needs Python "
            "3.14's compression.zstd or the 'zstandard' package); "
            "export/import without compression, or use the default "
            "deflate artifact layout"
        )


def _backend():
    try:
        from compression import zstd  # Python 3.14+ stdlib

        return "stdlib", zstd
    except ImportError:
        pass
    try:
        import zstandard

        return "zstandard", zstandard
    except ImportError:
        return None


def zstd_available() -> bool:
    """Whether a zstd backend can be imported in this interpreter."""
    return _backend() is not None


def zstd_compress(data: bytes, *, level: int = 3) -> bytes:
    backend = _backend()
    if backend is None:
        raise ZstdUnavailableError("compress artifact")
    kind, module = backend
    if kind == "stdlib":
        return module.compress(data, level)
    return module.ZstdCompressor(level=level).compress(data)


def zstd_decompress(data: bytes) -> bytes:
    backend = _backend()
    if backend is None:
        raise ZstdUnavailableError("decompress artifact")
    kind, module = backend
    if kind == "stdlib":
        return module.decompress(data)
    return module.ZstdDecompressor().decompress(data)


def is_zstd(data: bytes) -> bool:
    """Cheap frame sniff: does ``data`` start with the zstd magic?"""
    return data[:4] == ZSTD_MAGIC
