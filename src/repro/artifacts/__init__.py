"""Model artifact layer: train once, serve anywhere.

The paper's pipeline is train-once/score-forever; this package makes the
"once" real. A fitted detector becomes a single schema-versioned ``.npz``
artifact (arrays + JSON manifest with hyperparameters, dataset
fingerprint, metrics, and integrity digests), and a
:class:`~repro.artifacts.store.ModelStore` files artifacts under their
content digest with mutable tags (``production``, ``candidate``) — the
incremental-reuse discipline of the QBF-solving literature applied to
model state: every serving process starts from the same persisted bytes
instead of re-deriving them.

Where those bytes live is pluggable: the store's policy layer sits on a
:class:`~repro.artifacts.backends.StoreBackend` — the classic local
directory (``file://``, bit-compatible with pre-backend stores) or an
S3-style object bucket (``memory://`` / ``bucket://``, ETag-verified on
every read) — so sharded serving boxes resolve ``production`` without a
shared mount. See ``docs/model-store.md`` for the format and URL-scheme
reference, and :mod:`repro.rollout` for the shadow-validation discipline
that moves the ``production`` tag.

Entry points:

* :func:`save_artifact` / :func:`load_artifact` — one model ⇄ one file,
* :class:`ModelStore` / :meth:`ModelStore.from_url` — versions, tags,
  export/import, GC over any backend,
* ``ScanService.from_artifact`` / ``StreamScanner.from_artifact`` — cold
  starts from an artifact (see :mod:`repro.serve` / :mod:`repro.stream`).
"""

from repro.artifacts.backends import (
    DiskBucket,
    HttpStoreBackend,
    LocalFSBackend,
    MemoryBucket,
    ObjectStoreBackend,
    StoreBackend,
    backend_from_url,
)
from repro.artifacts.errors import (
    ArtifactError,
    CorruptArtifactError,
    FingerprintMismatchError,
    IntegrityError,
    SchemaVersionError,
    UnknownModelClassError,
    UnknownVersionError,
)
from repro.artifacts.compress import (
    ZstdUnavailableError,
    zstd_available,
)
from repro.artifacts.format import (
    ARTIFACT_FORMAT,
    READABLE_SCHEMAS,
    SCHEMA_VERSION,
    ArtifactInfo,
    artifact_digest,
    is_stored_layout,
    load_artifact,
    read_manifest,
    repack_artifact,
    save_artifact,
)
from repro.artifacts.store import ModelStore, default_store_root

__all__ = [
    "ArtifactError",
    "CorruptArtifactError",
    "IntegrityError",
    "SchemaVersionError",
    "FingerprintMismatchError",
    "UnknownModelClassError",
    "UnknownVersionError",
    "ARTIFACT_FORMAT",
    "SCHEMA_VERSION",
    "READABLE_SCHEMAS",
    "ArtifactInfo",
    "artifact_digest",
    "save_artifact",
    "load_artifact",
    "read_manifest",
    "repack_artifact",
    "is_stored_layout",
    "zstd_available",
    "ZstdUnavailableError",
    "ModelStore",
    "default_store_root",
    "StoreBackend",
    "LocalFSBackend",
    "ObjectStoreBackend",
    "HttpStoreBackend",
    "MemoryBucket",
    "DiskBucket",
    "backend_from_url",
]
