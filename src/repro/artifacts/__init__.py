"""Model artifact layer: train once, serve anywhere.

The paper's pipeline is train-once/score-forever; this package makes the
"once" real. A fitted detector becomes a single schema-versioned ``.npz``
artifact (arrays + JSON manifest with hyperparameters, dataset
fingerprint, metrics, and integrity digests), and a
:class:`~repro.artifacts.store.ModelStore` files artifacts under their
content digest with mutable tags (``production``, ``latest``) — the
incremental-reuse discipline of the QBF-solving literature applied to
model state: every serving process starts from the same persisted bytes
instead of re-deriving them.

Entry points:

* :func:`save_artifact` / :func:`load_artifact` — one model ⇄ one file,
* :class:`ModelStore` — versions, tags, export/import, GC,
* ``ScanService.from_artifact`` / ``StreamScanner.from_artifact`` — cold
  starts from an artifact (see :mod:`repro.serve` / :mod:`repro.stream`).
"""

from repro.artifacts.errors import (
    ArtifactError,
    CorruptArtifactError,
    FingerprintMismatchError,
    IntegrityError,
    SchemaVersionError,
    UnknownModelClassError,
    UnknownVersionError,
)
from repro.artifacts.format import (
    ARTIFACT_FORMAT,
    SCHEMA_VERSION,
    ArtifactInfo,
    artifact_digest,
    load_artifact,
    read_manifest,
    save_artifact,
)
from repro.artifacts.store import ModelStore, default_store_root

__all__ = [
    "ArtifactError",
    "CorruptArtifactError",
    "IntegrityError",
    "SchemaVersionError",
    "FingerprintMismatchError",
    "UnknownModelClassError",
    "UnknownVersionError",
    "ARTIFACT_FORMAT",
    "SCHEMA_VERSION",
    "ArtifactInfo",
    "artifact_digest",
    "save_artifact",
    "load_artifact",
    "read_manifest",
    "ModelStore",
    "default_store_root",
]
