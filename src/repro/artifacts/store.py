"""Content-addressed model store: versions, tags, export/import, GC.

Filesystem layout (git-object style, flat)::

    <root>/
      objects/<digest>.npz    # immutable artifact per version
      tags.json               # {"production": "<digest>", "latest": ...}

A *version* is the artifact's content digest (see
:func:`~repro.artifacts.format.artifact_digest`): saving a bit-identical
fitted model twice lands on the same object, so a store deduplicates
retrains for free. *Tags* are mutable names over versions — the rollout
discipline is "train → ``put(tags=("candidate",))`` → validate → ``tag
('production', version)``" with serving processes resolving
``production`` at (re)load time. Tag updates are atomic (write + rename),
so a reader never observes a half-written table.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import shutil
import tempfile

from repro.artifacts.errors import (
    CorruptArtifactError,
    IntegrityError,
    UnknownVersionError,
)
from repro.artifacts.format import (
    artifact_digest,
    load_artifact,
    read_manifest,
    save_artifact,
)

__all__ = ["ModelStore", "default_store_root"]

#: Environment override for every CLI entry point's store location.
STORE_ENV = "PHOOK_MODEL_STORE"
_DEFAULT_ROOT = "phook-models"
_MIN_PREFIX = 6


def default_store_root() -> pathlib.Path:
    """``$PHOOK_MODEL_STORE`` or ``./phook-models``."""
    return pathlib.Path(os.environ.get(STORE_ENV) or _DEFAULT_ROOT)


class ModelStore:
    """A directory of versioned, tagged model artifacts.

    Args:
        root: Store directory (created on first write).
    """

    def __init__(self, root: str | pathlib.Path | None = None):
        self.root = pathlib.Path(root) if root is not None else default_store_root()
        self.objects = self.root / "objects"
        self._tags_path = self.root / "tags.json"

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #

    def put(
        self,
        model,
        *,
        model_name: str | None = None,
        dataset_fingerprint: str | None = None,
        metrics: dict | None = None,
        extra: dict | None = None,
        tags: tuple[str, ...] = ("latest",),
    ) -> str:
        """Save a fitted model; returns its version (content digest).

        The artifact is written to a temporary file and renamed into
        ``objects/`` under its digest — concurrent writers of the same
        content converge on one object, and a crash never leaves a
        half-written version behind.
        """
        self.objects.mkdir(parents=True, exist_ok=True)
        handle, temp_name = tempfile.mkstemp(
            suffix=".npz", dir=self.objects, prefix=".tmp-"
        )
        os.close(handle)
        temp_path = pathlib.Path(temp_name)
        try:
            info = save_artifact(
                model,
                temp_path,
                model_name=model_name,
                dataset_fingerprint=dataset_fingerprint,
                metrics=metrics,
                extra=extra,
            )
            os.replace(temp_path, self._object_path(info.digest))
        finally:
            temp_path.unlink(missing_ok=True)
        for name in tags:
            self.tag(name, info.digest)
        return info.digest

    def tag(self, name: str, ref: str) -> str:
        """Point tag ``name`` at a version (or another tag); atomic.

        The read-modify-write of the tag table runs under an exclusive
        file lock, so concurrent writers (a trainer tagging ``candidate``
        while an operator retags ``production``) cannot lose each
        other's updates.
        """
        if not name or "/" in name or name.startswith("."):
            raise ValueError(f"invalid tag name {name!r}")
        version = self.resolve(ref)
        with self._tag_table_lock():
            tags = self.tags()
            tags[name] = version
            self._write_tags(tags)
        return version

    def untag(self, name: str) -> bool:
        """Remove a tag; returns whether it existed."""
        with self._tag_table_lock():
            tags = self.tags()
            existed = tags.pop(name, None) is not None
            if existed:
                self._write_tags(tags)
        return existed

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def tags(self) -> dict[str, str]:
        """Current tag table (name → version)."""
        try:
            with open(self._tags_path, encoding="utf-8") as handle:
                table = json.load(handle)
        except FileNotFoundError:
            return {}
        except (OSError, json.JSONDecodeError) as error:
            raise CorruptArtifactError(
                f"unreadable tag table {self._tags_path}: {error}"
            ) from error
        return {str(k): str(v) for k, v in table.items()}

    def versions(self) -> list[str]:
        """Every stored version digest (sorted)."""
        if not self.objects.is_dir():
            return []
        return sorted(
            path.stem
            for path in self.objects.glob("*.npz")
            if not path.name.startswith(".")
        )

    def resolve(self, ref: str) -> str:
        """Tag name, full digest, or unique digest prefix → version."""
        tags = self.tags()
        if ref in tags:
            return tags[ref]
        versions = self.versions()
        if ref in versions:
            return ref
        if len(ref) >= _MIN_PREFIX:
            matches = [v for v in versions if v.startswith(ref)]
            if len(matches) == 1:
                return matches[0]
            if len(matches) > 1:
                raise UnknownVersionError(
                    f"ambiguous version prefix {ref!r} "
                    f"({len(matches)} matches)"
                )
        raise UnknownVersionError(
            f"no tag or version matches {ref!r} in {self.root}"
        )

    def path_of(self, ref: str) -> pathlib.Path:
        """Filesystem path of the artifact behind a tag/version/prefix."""
        return self._object_path(self.resolve(ref))

    def load(self, ref: str, *, expected_fingerprint: str | None = None):
        """Load ``(model, manifest)`` for a tag/version/prefix."""
        return load_artifact(
            self.path_of(ref), expected_fingerprint=expected_fingerprint
        )

    def manifest(self, ref: str) -> dict:
        return read_manifest(self.path_of(ref))

    def list(self) -> list[dict]:
        """One JSON-ready row per stored version (newest first)."""
        by_version: dict[str, list[str]] = {}
        for name, version in self.tags().items():
            by_version.setdefault(version, []).append(name)
        rows = []
        for version in self.versions():
            path = self._object_path(version)
            manifest = read_manifest(path)
            rows.append(
                {
                    "version": version,
                    "model_name": manifest.get("model_name"),
                    "dataset_fingerprint": manifest.get("dataset_fingerprint"),
                    "metrics": manifest.get("metrics"),
                    "created_at": manifest.get("created_at"),
                    "size_bytes": path.stat().st_size,
                    "tags": sorted(by_version.get(version, [])),
                }
            )
        rows.sort(key=lambda row: row["created_at"] or 0, reverse=True)
        return rows

    # ------------------------------------------------------------------ #
    # Transport + GC
    # ------------------------------------------------------------------ #

    def export(self, ref: str, dest: str | pathlib.Path) -> pathlib.Path:
        """Copy one artifact out of the store (e.g. to ship to a box)."""
        source = self.path_of(ref)
        dest = pathlib.Path(dest)
        if dest.is_dir():
            dest = dest / source.name
        dest.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(source, dest)
        return dest

    def import_artifact(
        self, source: str | pathlib.Path, *, tags: tuple[str, ...] = ()
    ) -> str:
        """Verify an external artifact and file it under its digest.

        The manifest's declared digest is recomputed before anything is
        written; a tampered file is rejected, never stored.
        """
        source = pathlib.Path(source)
        manifest = read_manifest(source)
        digest = manifest.get("digest")
        if not digest or artifact_digest(manifest) != digest:
            raise IntegrityError(
                f"{source}: declared digest does not match manifest content"
            )
        # Full load exercises the per-array digests too (and proves the
        # model actually reconstructs) before the object is admitted.
        load_artifact(source)
        self.objects.mkdir(parents=True, exist_ok=True)
        # Same tmp + rename discipline as put(): a crash mid-copy must
        # never leave a truncated object under a valid digest name.
        handle, temp_name = tempfile.mkstemp(
            suffix=".npz", dir=self.objects, prefix=".tmp-"
        )
        os.close(handle)
        temp_path = pathlib.Path(temp_name)
        try:
            shutil.copyfile(source, temp_path)
            os.replace(temp_path, self._object_path(digest))
        finally:
            temp_path.unlink(missing_ok=True)
        for name in tags:
            self.tag(name, digest)
        return digest

    def gc(self) -> list[str]:
        """Delete untagged versions; returns what was removed."""
        keep = set(self.tags().values())
        removed = []
        for version in self.versions():
            if version not in keep:
                self._object_path(version).unlink()
                removed.append(version)
        return removed

    # ------------------------------------------------------------------ #

    def _object_path(self, version: str) -> pathlib.Path:
        return self.objects / f"{version}.npz"

    @contextlib.contextmanager
    def _tag_table_lock(self):
        """Exclusive advisory lock over the tag table (cross-process)."""
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.root / ".tags.lock", "a+") as handle:
            try:
                import fcntl
            except ImportError:  # non-POSIX: best-effort, no lock
                yield
                return
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    def _write_tags(self, tags: dict[str, str]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        handle, temp_name = tempfile.mkstemp(
            suffix=".json", dir=self.root, prefix=".tags-"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                json.dump(tags, stream, indent=2, sort_keys=True)
            os.replace(temp_name, self._tags_path)
        finally:
            pathlib.Path(temp_name).unlink(missing_ok=True)

    def __len__(self) -> int:
        return len(self.versions())

    def __repr__(self) -> str:
        return f"ModelStore(root={str(self.root)!r})"
