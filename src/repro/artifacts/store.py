"""Content-addressed model store: versions, tags, export/import, GC.

Logical layout (keys into a :class:`~repro.artifacts.backends.StoreBackend`)::

    objects/<digest>.npz    # immutable artifact per version
    tags.json               # {"production": "<digest>", "latest": ...}

A *version* is the artifact's content digest (see
:func:`~repro.artifacts.format.artifact_digest`): saving a bit-identical
fitted model twice lands on the same object, so a store deduplicates
retrains for free. *Tags* are mutable names over versions — the rollout
discipline is "train → ``put(tags=("candidate",))`` → shadow-validate
(:mod:`repro.rollout`) → ``tag('production', version)``" with serving
processes resolving ``production`` at (re)load time. Tag updates are
atomic, so a reader never observes a half-written table.

Where the keys live is the backend's business: the default
:class:`~repro.artifacts.backends.LocalFSBackend` keeps the original
directory layout bit-for-bit (pre-backend stores read unchanged), and
:meth:`ModelStore.from_url` opens the same store API over
``memory://`` / ``bucket://`` object-store emulations — sharded serving
boxes pull ``production`` without a shared mount. Object-backend reads
spool artifacts through a per-store local cache (immutable digest-named
files), so ``np.load`` always sees a real file and repeated loads of one
version fetch it once.

Thread-safety: tag read-modify-write cycles run under the backend's
:meth:`~repro.artifacts.backends.StoreBackend.lock` (a cross-process
``fcntl`` lock on local filesystems, an in-process mutex on object
buckets); object writes are atomic per key; concurrent readers never
need coordination because objects are immutable once written.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import tempfile

from repro.artifacts.backends import (
    LocalFSBackend,
    StoreBackend,
    backend_from_url,
)
from repro.artifacts.errors import (
    CorruptArtifactError,
    IntegrityError,
    UnknownVersionError,
)
from repro.artifacts.compress import (
    is_zstd,
    zstd_compress,
    zstd_decompress,
)
from repro.artifacts.format import (
    artifact_digest,
    is_stored_layout,
    load_artifact,
    read_manifest,
    repack_artifact,
    save_artifact,
)

__all__ = ["ModelStore", "default_store_root"]

#: Environment override for every CLI entry point's store location.
STORE_ENV = "PHOOK_MODEL_STORE"
_DEFAULT_ROOT = "phook-models"
_MIN_PREFIX = 6
_TAGS_KEY = "tags.json"
_OBJECT_PREFIX = "objects/"


def default_store_root() -> str:
    """``$PHOOK_MODEL_STORE`` or ``./phook-models`` (path or store URL)."""
    return os.environ.get(STORE_ENV) or _DEFAULT_ROOT


class ModelStore:
    """Versioned, tagged model artifacts over a pluggable backend.

    Args:
        root: Store directory (created on first write). Ignored when
            ``backend`` is given.
        backend: Any :class:`~repro.artifacts.backends.StoreBackend`;
            defaults to a :class:`LocalFSBackend` at ``root``.
        cache_dir: Persistent local spool directory for backends that
            are not path-addressable (``memory://`` / ``bucket://``).
            Without one, spooled artifacts land in a per-store temporary
            directory and every process cold start re-pulls them; with
            one, digest-named files survive across processes on the same
            host (objects are immutable, so a cache hit never needs
            revalidation). Ignored by path-addressable backends.

    ``ModelStore(path)`` keeps the historical behaviour exactly;
    :meth:`from_url` resolves ``file://`` / ``memory://`` / ``bucket://``
    locations (and bare paths) to the right backend.
    """

    def __init__(
        self,
        root: str | pathlib.Path | None = None,
        *,
        backend: StoreBackend | None = None,
        cache_dir: str | pathlib.Path | None = None,
    ):
        if backend is None:
            location = default_store_root() if root is None else root
            backend = backend_from_url(location)
        self.backend = backend
        # ``root`` stays a Path for local stores (messages, tooling);
        # object stores surface their URL instead.
        self.root = (
            backend.root if isinstance(backend, LocalFSBackend)
            else backend.url
        )
        self.cache_dir = pathlib.Path(cache_dir) if cache_dir else None
        self._spool_dir: tempfile.TemporaryDirectory | None = None
        #: True while the store is serving tag lookups from the local
        #: write-through cache because the backend is unreachable
        #: (degraded mode); cleared on the next successful read.
        self.degraded = False

    @classmethod
    def from_url(
        cls,
        url: str | os.PathLike | None = None,
        *,
        cache_dir: str | pathlib.Path | None = None,
    ) -> "ModelStore":
        """Open a store at a location string (path or backend URL)."""
        return cls(
            backend=backend_from_url(
                default_store_root() if url in (None, "") else url
            ),
            cache_dir=cache_dir,
        )

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #

    def put(
        self,
        model,
        *,
        model_name: str | None = None,
        dataset_fingerprint: str | None = None,
        metrics: dict | None = None,
        extra: dict | None = None,
        tags: tuple[str, ...] = ("latest",),
    ) -> str:
        """Save a fitted model; returns its version (content digest).

        The artifact is serialized to a scratch file and handed to the
        backend as one atomic blob install (``put_path(consume=True)``:
        a rename on the local backend, never a whole-blob RAM copy) —
        concurrent writers of the same content converge on one object,
        and a crash never leaves a half-written version visible.
        """
        with tempfile.TemporaryDirectory(prefix="phook-put-") as scratch:
            temp_path = pathlib.Path(scratch) / "artifact.npz"
            info = save_artifact(
                model,
                temp_path,
                model_name=model_name,
                dataset_fingerprint=dataset_fingerprint,
                metrics=metrics,
                extra=extra,
            )
            self.backend.put_path(
                self._object_key(info.digest), temp_path, consume=True
            )
        for name in tags:
            self.tag(name, info.digest)
        return info.digest

    def tag(self, name: str, ref: str) -> str:
        """Point tag ``name`` at a version (or another tag); atomic.

        The read-modify-write of the tag table runs under the backend's
        exclusive lock, so concurrent writers (a trainer tagging
        ``candidate`` while a rollout retags ``production``) cannot lose
        each other's updates.
        """
        if not name or "/" in name or name.startswith("."):
            raise ValueError(f"invalid tag name {name!r}")
        version = self.resolve(ref)
        with self.backend.lock():
            tags = self.tags()
            tags[name] = version
            self._write_tags(tags)
        return version

    def untag(self, name: str) -> bool:
        """Remove a tag; returns whether it existed."""
        with self.backend.lock():
            tags = self.tags()
            existed = tags.pop(name, None) is not None
            if existed:
                self._write_tags(tags)
        return existed

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def tags(self) -> dict[str, str]:
        """Current tag table (name → version).

        Degraded mode: with a ``cache_dir``, every successful read is
        written through to ``cache_dir/tags.json``, and a *transport*
        failure (``OSError`` — store unreachable, HTTP 5xx) falls back
        to that copy with ``self.degraded`` set, so a worker whose
        artifacts are already spooled keeps serving through a store
        outage. Damaged data (:class:`IntegrityError`, malformed JSON)
        never falls back — tampering must surface, not be papered over.
        """
        try:
            raw = self.backend.get(_TAGS_KEY)
        except KeyError:
            self.degraded = False
            return {}
        except IntegrityError as error:
            raise CorruptArtifactError(
                f"unreadable tag table in {self.backend.url}: {error}"
            ) from error
        except OSError as error:
            cached = self._cached_tags()
            if cached is not None:
                self.degraded = True
                return cached
            # Surface an unreadable tag table as the store-level typed
            # error every caller already handles.
            raise CorruptArtifactError(
                f"unreadable tag table in {self.backend.url}: {error}"
            ) from error
        try:
            table = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise CorruptArtifactError(
                f"unreadable tag table in {self.backend.url}: {error}"
            ) from error
        tags = {str(k): str(v) for k, v in table.items()}
        self.degraded = False
        self._cache_tags(tags)
        return tags

    def versions(self) -> list[str]:
        """Every stored version digest (sorted)."""
        versions = []
        for key in self.backend.list(_OBJECT_PREFIX):
            name = key[len(_OBJECT_PREFIX):]
            if name.endswith(".npz") and "/" not in name:
                versions.append(name[: -len(".npz")])
        return sorted(versions)

    def resolve(self, ref: str) -> str:
        """Tag name, full digest, or unique digest prefix → version."""
        tags = self.tags()
        if ref in tags:
            return tags[ref]
        versions = self.versions()
        if ref in versions:
            return ref
        if len(ref) >= _MIN_PREFIX:
            matches = [v for v in versions if v.startswith(ref)]
            if len(matches) == 1:
                return matches[0]
            if len(matches) > 1:
                raise UnknownVersionError(
                    f"ambiguous version prefix {ref!r} "
                    f"({len(matches)} matches)"
                )
        raise UnknownVersionError(
            f"no tag or version matches {ref!r} in {self.root}"
        )

    def _spool_root(self) -> pathlib.Path:
        """Where spooled and derived (stored-layout) artifacts live."""
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            return self.cache_dir
        if self._spool_dir is None:
            self._spool_dir = tempfile.TemporaryDirectory(
                prefix="phook-store-spool-"
            )
        return pathlib.Path(self._spool_dir.name)

    def path_of(self, ref: str) -> pathlib.Path:
        """Local filesystem path of the artifact behind a tag/version.

        Direct for path-addressable backends; object backends spool the
        blob (ETag-verified by the backend's ``get``) into a per-store
        cache of immutable digest-named files.
        """
        version = self.resolve(ref)
        key = self._object_key(version)
        direct = self.backend.local_path(key)
        if direct is not None:
            return direct
        spooled = self._spool_root() / f"{version}.npz"
        if not spooled.is_file():
            try:
                data = self.backend.get(key)
            except KeyError:
                raise UnknownVersionError(
                    f"version {version!r} vanished from {self.backend.url}"
                ) from None
            # Concurrent cold starts (N fleet workers sharing one
            # cache_dir) may all spool this version at once: each writes
            # a private mkstemp file and atomically renames it over the
            # digest-named target, so a reader can never observe a
            # half-written spool — last rename wins with identical bytes.
            handle, temp_name = tempfile.mkstemp(
                dir=spooled.parent, prefix=f".tmp-{version[:16]}-",
                suffix=".npz",
            )
            try:
                with os.fdopen(handle, "wb") as stream:
                    stream.write(data)
                os.replace(temp_name, spooled)
            finally:
                pathlib.Path(temp_name).unlink(missing_ok=True)
        return spooled

    def mmap_path_of(self, ref: str) -> pathlib.Path:
        """A stored-layout (uncompressed) artifact file for zero-copy maps.

        The primary spool keeps the backend's bytes verbatim (digest
        named, ETag-verified on fetch); mapping needs uncompressed zip
        members, so the store derives ``<digest>.stored.npz`` once per
        version via :func:`repack_artifact` — which re-verifies every
        array digest while copying, and installs the file with
        mkstemp + atomic rename so concurrent derivations converge and
        existing maps stay valid. Artifacts that are already fully
        stored (e.g. ``export --layout stored`` output re-imported, or
        a local store written with ``compression="stored"``) map
        directly with no derived copy.
        """
        source = self.path_of(ref)
        if is_stored_layout(source):
            return source
        derived = self._spool_root() / f"{self.resolve(ref)}.stored.npz"
        # Derived files are content-named like the spool itself: once a
        # version's stored copy exists it is immutable, so a hit needs
        # no revalidation.
        if not derived.is_file():
            repack_artifact(source, derived, compression="stored")
        return derived

    def load(
        self,
        ref: str,
        *,
        expected_fingerprint: str | None = None,
        mmap_mode: str | None = None,
    ):
        """Load ``(model, manifest)`` for a tag/version/prefix.

        ``mmap_mode="r"`` serves the model's arrays as read-only maps of
        a stored-layout spool file (derived on first use, see
        :meth:`mmap_path_of`): the cold start copies no array bytes and
        N processes loading one version share its page cache.
        """
        if mmap_mode is not None:
            return load_artifact(
                self.mmap_path_of(ref),
                expected_fingerprint=expected_fingerprint,
                mmap_mode=mmap_mode,
            )
        return load_artifact(
            self.path_of(ref), expected_fingerprint=expected_fingerprint
        )

    def manifest(self, ref: str) -> dict:
        return read_manifest(self.path_of(ref))

    def list(self) -> list[dict]:
        """One JSON-ready row per stored version (newest first)."""
        by_version: dict[str, list[str]] = {}
        for name, version in self.tags().items():
            by_version.setdefault(version, []).append(name)
        rows = []
        for version in self.versions():
            manifest = read_manifest(self.path_of(version))
            rows.append(
                {
                    "version": version,
                    "model_name": manifest.get("model_name"),
                    "dataset_fingerprint": manifest.get("dataset_fingerprint"),
                    "metrics": manifest.get("metrics"),
                    "created_at": manifest.get("created_at"),
                    "size_bytes": self.backend.size(self._object_key(version)),
                    "tags": sorted(by_version.get(version, [])),
                }
            )
        rows.sort(key=lambda row: row["created_at"] or 0, reverse=True)
        return rows

    # ------------------------------------------------------------------ #
    # Transport + GC
    # ------------------------------------------------------------------ #

    def export(
        self,
        ref: str,
        dest: str | pathlib.Path,
        *,
        layout: str | None = None,
        compress: str | None = None,
    ) -> pathlib.Path:
        """Copy one artifact out of the store (e.g. to ship to a box).

        ``layout`` repacks the zip on the way out (``"stored"`` for a
        file the destination box can mmap directly, ``"deflate"`` to
        re-compress a stored artifact for the wire); ``compress="zstd"``
        additionally wraps the file in a zstd frame (``.zst`` suffix
        appended when ``dest`` is a directory). Neither changes the
        content digest :meth:`import_artifact` recovers.
        """
        if layout not in (None, "stored", "deflate"):
            raise ValueError(
                f"unknown export layout {layout!r}; "
                "choose 'stored' or 'deflate'"
            )
        if compress not in (None, "zstd"):
            raise ValueError(
                f"unknown export compression {compress!r}; choose 'zstd'"
            )
        source = self.path_of(ref)
        dest = pathlib.Path(dest)
        if dest.is_dir():
            name = source.name
            if compress == "zstd":
                name += ".zst"
            dest = dest / name
        dest.parent.mkdir(parents=True, exist_ok=True)
        with tempfile.TemporaryDirectory(prefix="phook-export-") as scratch:
            staged = source
            if layout is not None:
                staged = pathlib.Path(scratch) / "layout.npz"
                repack_artifact(source, staged, compression=layout)
            if compress == "zstd":
                dest.write_bytes(zstd_compress(staged.read_bytes()))
            else:
                shutil.copyfile(staged, dest)
        return dest

    def import_artifact(
        self, source: str | pathlib.Path, *, tags: tuple[str, ...] = ()
    ) -> str:
        """Verify an external artifact and file it under its digest.

        The manifest's declared digest is recomputed before anything is
        written; a tampered file is rejected, never stored. A
        zstd-wrapped export (``.zst``, detected by frame magic, not
        suffix) is transparently unwrapped first.
        """
        source = pathlib.Path(source)
        with tempfile.TemporaryDirectory(prefix="phook-import-") as scratch:
            with source.open("rb") as stream:
                head = stream.read(4)
            if is_zstd(head):
                plain = pathlib.Path(scratch) / "artifact.npz"
                plain.write_bytes(zstd_decompress(source.read_bytes()))
                source = plain
            manifest = read_manifest(source)
            digest = manifest.get("digest")
            if not digest or artifact_digest(manifest) != digest:
                raise IntegrityError(
                    f"{source}: declared digest does not match manifest "
                    "content"
                )
            # Full load exercises the per-array digests too (and proves
            # the model actually reconstructs) before it is admitted.
            load_artifact(source)
            # consume=False: the caller's file must survive the import.
            self.backend.put_path(self._object_key(digest), source)
        for name in tags:
            self.tag(name, digest)
        return digest

    def gc(self) -> list[str]:
        """Delete untagged versions; returns what was removed."""
        keep = set(self.tags().values())
        removed = []
        for version in self.versions():
            if version not in keep:
                self.backend.delete(self._object_key(version))
                removed.append(version)
        return removed

    # ------------------------------------------------------------------ #

    @staticmethod
    def _object_key(version: str) -> str:
        return f"{_OBJECT_PREFIX}{version}.npz"

    def _tags_cache_path(self) -> pathlib.Path | None:
        if self.cache_dir is None:
            return None
        # Only object backends spool; a path-addressable store *is* its
        # own durable copy and caching its tag table would just shadow it.
        if self.backend.local_path(_TAGS_KEY) is not None:
            return None
        return self.cache_dir / _TAGS_KEY

    def _cache_tags(self, tags: dict[str, str]) -> None:
        target = self._tags_cache_path()
        if target is None:
            return
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            handle, temp_name = tempfile.mkstemp(
                dir=self.cache_dir, prefix=".tmp-tags-", suffix=".json"
            )
            try:
                with os.fdopen(handle, "w", encoding="utf-8") as stream:
                    json.dump(tags, stream, indent=2, sort_keys=True)
                os.replace(temp_name, target)
            finally:
                pathlib.Path(temp_name).unlink(missing_ok=True)
        except OSError:
            # Best-effort: a failed cache write must not fail the read.
            pass

    def _cached_tags(self) -> dict[str, str] | None:
        target = self._tags_cache_path()
        if target is None:
            return None
        try:
            table = json.loads(target.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        return {str(k): str(v) for k, v in table.items()}

    def _write_tags(self, tags: dict[str, str]) -> None:
        self.backend.put(
            _TAGS_KEY,
            json.dumps(tags, indent=2, sort_keys=True).encode("utf-8"),
        )

    def __len__(self) -> int:
        return len(self.versions())

    def __repr__(self) -> str:
        return f"ModelStore(root={str(self.root)!r})"
