"""The on-disk artifact format: one ``.npz`` of arrays + JSON manifest.

An artifact is a single ``.npz`` holding

* ``__manifest__`` — a UTF-8 JSON document (stored as a ``uint8`` array)
  carrying the schema version, model class + constructor parameters, the
  encoded state structure, the training-dataset fingerprint, evaluation
  metrics, and a SHA-256 digest per payload array,
* ``a0 … aN`` — the model's fitted arrays (tree node tables, stacked
  :class:`~repro.ml.flat.FlatEnsemble` arrays, NN weights, …).

Schema 2 adds **shared-array storage**: payload arrays are deduplicated
by content at save time, so ensemble children referencing identical
arrays (a warm-started forest's unchanged trees, repeated class tables)
store one copy that every state-tree reference points at. Schema 1
artifacts still load byte-for-byte — the decoder has always resolved
arbitrary index references.

The zip layout is a *transport* property, chosen per file and invisible
to the content address: ``compression="deflate"`` (the default,
``np.savez_compressed`` behaviour) minimises bytes on the wire, while
``compression="stored"`` writes uncompressed members that
``load_artifact(..., mmap_mode="r")`` maps straight off disk — a cold
start that copies no node-array bytes at all. :func:`repack_artifact`
converts between the two without changing the digest.

The **artifact digest** — the content address a
:class:`~repro.artifacts.store.ModelStore` files versions under — is the
SHA-256 of the canonical manifest JSON *minus* volatile metadata
(``created_at``, ``digest`` itself), so saving the same fitted model
twice yields the same version while any change to parameters, state, or
payload changes it.

Loading never trusts the file: zip/JSON damage raises
:class:`CorruptArtifactError`, per-array digest mismatches raise
:class:`IntegrityError`, a foreign schema raises
:class:`SchemaVersionError`, and a caller-supplied expected dataset
fingerprint raises :class:`FingerprintMismatchError` on divergence —
garbage never becomes a model.

Invariants consumers rely on: a written artifact is immutable (stores
and backends file it under its digest and never rewrite it); ``save →
load`` is bit-identical for every registry model's ``predict_proba``
(asserted in CI, cross-process); and :func:`save_artifact` /
:func:`load_artifact` share no module state, so concurrent saves/loads
of different paths need no coordination. The transport layers above —
:class:`~repro.artifacts.store.ModelStore` and its backends — add
content addressing and ETag checks on top of, never instead of, the
per-array digests here.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import struct
import tempfile
import time
import zipfile
import zlib
from dataclasses import dataclass

import numpy as np

from repro.artifacts.errors import (
    CorruptArtifactError,
    FingerprintMismatchError,
    IntegrityError,
    SchemaVersionError,
)
from repro.artifacts.state import capture, decode, encode, restore

__all__ = [
    "SCHEMA_VERSION",
    "READABLE_SCHEMAS",
    "ARTIFACT_FORMAT",
    "ArtifactInfo",
    "save_artifact",
    "load_artifact",
    "read_manifest",
    "artifact_digest",
    "repack_artifact",
    "is_stored_layout",
]

SCHEMA_VERSION = 2
#: Schemas this build can load. Schema 1 predates shared-array storage;
#: its artifacts decode identically because array references were
#: already resolved by index.
READABLE_SCHEMAS = frozenset({1, 2})
ARTIFACT_FORMAT = "phishinghook-model-artifact"

_MANIFEST_KEY = "__manifest__"
#: Manifest fields excluded from the content address.
_VOLATILE = ("created_at", "digest")
#: ``compression=`` knob → zipfile method for the ``.npz`` members.
_ZIP_METHODS = {
    "deflate": zipfile.ZIP_DEFLATED,
    "stored": zipfile.ZIP_STORED,
}
#: Fixed portion of a zip local file header (PKZIP appnote 4.3.7).
_LOCAL_HEADER = struct.Struct("<IHHHHHIIIHH")


@dataclass(frozen=True)
class ArtifactInfo:
    """Result of one save: where it landed and what it hashes to."""

    path: pathlib.Path
    digest: str
    manifest: dict


def _array_digest(array: np.ndarray) -> str:
    array = np.ascontiguousarray(array)
    hasher = hashlib.sha256()
    hasher.update(array.dtype.str.encode())
    hasher.update(repr(array.shape).encode())
    hasher.update(array.tobytes())
    return hasher.hexdigest()


def _jsonable(node):
    """Plain-JSON copy of caller metadata (numpy scalars → python)."""
    if isinstance(node, dict):
        return {str(key): _jsonable(value) for key, value in node.items()}
    if isinstance(node, (list, tuple)):
        return [_jsonable(item) for item in node]
    if isinstance(node, (bool, str)) or node is None:
        return node
    if isinstance(node, (int, np.integer)):
        return int(node)
    if isinstance(node, (float, np.floating)):
        return float(node)
    return str(node)


def _canonical(manifest: dict) -> bytes:
    slim = {k: v for k, v in manifest.items() if k not in _VOLATILE}
    return json.dumps(
        slim, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")


def artifact_digest(manifest: dict) -> str:
    """Content address of an artifact (volatile metadata excluded)."""
    return hashlib.sha256(_canonical(manifest)).hexdigest()


def _share_arrays(structure, arrays: list[np.ndarray]):
    """Schema-2 shared-array storage: store identical arrays once.

    Returns ``(structure, unique_arrays)`` where every ``__ndarray__`` /
    ``__bytes__`` reference in ``structure`` points into the deduplicated
    list. Content identity is the same dtype+shape+bytes digest the
    manifest records, so two references share a slot only when the
    loader would rebuild indistinguishable arrays from either.
    """
    remap: dict[int, int] = {}
    seen: dict[str, int] = {}
    unique: list[np.ndarray] = []
    for index, array in enumerate(arrays):
        digest = _array_digest(array)
        if digest in seen:
            remap[index] = seen[digest]
        else:
            seen[digest] = remap[index] = len(unique)
            unique.append(array)
    if len(unique) == len(arrays):
        return structure, arrays
    return _remap_refs(structure, remap), unique


def _remap_refs(node, remap: dict[int, int]):
    if isinstance(node, list):
        return [_remap_refs(item, remap) for item in node]
    if isinstance(node, dict):
        if "__ndarray__" in node:
            return {"__ndarray__": remap[node["__ndarray__"]]}
        if "__bytes__" in node:
            return {"__bytes__": remap[node["__bytes__"]]}
        return {key: _remap_refs(value, remap) for key, value in node.items()}
    return node


def save_artifact(
    model,
    path: str | pathlib.Path,
    *,
    model_name: str | None = None,
    dataset_fingerprint: str | None = None,
    metrics: dict | None = None,
    extra: dict | None = None,
    compression: str = "deflate",
) -> ArtifactInfo:
    """Persist one fitted model as a schema-versioned artifact file.

    ``compression`` picks the zip layout: ``"deflate"`` (default, the
    historical ``np.savez_compressed`` behaviour) or ``"stored"``
    (uncompressed members, mappable via ``load_artifact(mmap_mode)``).
    The layout never enters the content digest — the same model saves to
    the same version either way.
    """
    if compression not in _ZIP_METHODS:
        raise ValueError(
            f"unknown artifact compression {compression!r}; "
            f"choose one of {sorted(_ZIP_METHODS)}"
        )
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    captured = capture(model)
    arrays: list[np.ndarray] = []
    structure = {
        "class": captured["class"],
        "params": encode(captured["params"], arrays),
        "state": encode(captured["state"], arrays),
    }
    if SCHEMA_VERSION >= 2:
        structure, arrays = _share_arrays(structure, arrays)
    names = [f"a{index}" for index in range(len(arrays))]
    manifest = {
        "format": ARTIFACT_FORMAT,
        "schema_version": SCHEMA_VERSION,
        "model_name": model_name or getattr(model, "name", type(model).__name__),
        "model": structure,
        "dataset_fingerprint": dataset_fingerprint,
        "metrics": _jsonable(metrics) if metrics else None,
        "extra": _jsonable(extra) if extra else None,
        "arrays": {
            name: {
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "sha256": _array_digest(array),
            }
            for name, array in zip(names, arrays)
        },
        "created_at": time.time(),
    }
    manifest["digest"] = artifact_digest(manifest)
    payload = {
        _MANIFEST_KEY: np.frombuffer(
            json.dumps(manifest, ensure_ascii=False).encode("utf-8"),
            dtype=np.uint8,
        )
    }
    payload.update(dict(zip(names, arrays)))
    # Write through an explicit, already-open handle: np.savez and
    # np.savez_compressed append ".npz" to any *string or Path*
    # destination that lacks the suffix, but use a file object as-is —
    # so the artifact lands at exactly ``path`` whether or not it ends
    # in ".npz" (behaviour pinned by tests/artifacts/test_format.py).
    with open(path, "wb") as handle:
        if compression == "stored":
            np.savez(handle, **payload)
        else:
            np.savez_compressed(handle, **payload)
    return ArtifactInfo(path=path, digest=manifest["digest"], manifest=manifest)


def _open_archive(path: pathlib.Path) -> np.lib.npyio.NpzFile:
    try:
        return np.load(path, allow_pickle=False)
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, OSError, ValueError, EOFError) as error:
        raise CorruptArtifactError(
            f"{path} is not a readable artifact: {error}"
        ) from error


def _read_member(archive, path, name) -> np.ndarray:
    try:
        return archive[name]
    except KeyError as error:
        raise CorruptArtifactError(
            f"{path} is missing artifact member {name!r}"
        ) from error
    except (zipfile.BadZipFile, zlib.error, OSError, ValueError, EOFError) as error:
        raise CorruptArtifactError(
            f"{path}: artifact member {name!r} is unreadable: {error}"
        ) from error


def _parse_manifest(archive, path: pathlib.Path) -> dict:
    raw = _read_member(archive, path, _MANIFEST_KEY)
    try:
        manifest = json.loads(bytes(raw.tobytes()).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CorruptArtifactError(
            f"{path} carries an unparseable manifest: {error}"
        ) from error
    if not isinstance(manifest, dict) or manifest.get("format") != ARTIFACT_FORMAT:
        raise CorruptArtifactError(
            f"{path} is not a {ARTIFACT_FORMAT} file"
        )
    version = manifest.get("schema_version")
    if version not in READABLE_SCHEMAS:
        raise SchemaVersionError(
            f"{path} uses artifact schema {version!r}; this build reads "
            f"schemas {sorted(READABLE_SCHEMAS)}"
        )
    return manifest


def read_manifest(path: str | pathlib.Path) -> dict:
    """Manifest only — no payload verification, no model construction."""
    path = pathlib.Path(path)
    with _open_archive(path) as archive:
        return _parse_manifest(archive, path)


def _verified_arrays(archive, path, declared) -> dict[int, np.ndarray]:
    """Read every payload array, enforcing its manifest SHA-256."""
    arrays: dict[int, np.ndarray] = {}
    for name, meta in declared.items():
        _check_array_name(path, name)
        array = _read_member(archive, path, name)
        if _array_digest(array) != meta.get("sha256"):
            raise IntegrityError(
                f"{path}: array {name!r} fails its SHA-256 check "
                "(artifact altered after save)"
            )
        arrays[int(name[1:])] = array
    return arrays


def _check_array_name(path, name: str) -> None:
    if not (name.startswith("a") and name[1:].isdigit()):
        raise CorruptArtifactError(
            f"{path}: manifest declares malformed array name {name!r}"
        )


def _map_stored_member(
    path: pathlib.Path, info: zipfile.ZipInfo, mmap_mode: str
) -> np.ndarray:
    """Map one uncompressed ``.npy`` zip member without copying it.

    ``np.load`` ignores ``mmap_mode`` for zip archives, so this parses
    the member's local file header (its name/extra lengths may differ
    from the central directory's) to find the embedded ``.npy``, reads
    that header, and maps the raw array bytes in place.
    """
    with open(path, "rb") as stream:
        stream.seek(info.header_offset)
        header = stream.read(_LOCAL_HEADER.size)
        if len(header) != _LOCAL_HEADER.size or header[:4] != b"PK\x03\x04":
            raise CorruptArtifactError(
                f"{path}: damaged local header for member {info.filename!r}"
            )
        name_len, extra_len = _LOCAL_HEADER.unpack(header)[9:11]
        stream.seek(info.header_offset + _LOCAL_HEADER.size
                    + name_len + extra_len)
        try:
            version = np.lib.format.read_magic(stream)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(
                    stream
                )
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(
                    stream
                )
            else:
                raise ValueError(f"npy format version {version}")
        except ValueError as error:
            raise CorruptArtifactError(
                f"{path}: member {info.filename!r} is not a mappable npy "
                f"array: {error}"
            ) from error
        offset = stream.tell()
    if dtype.hasobject:
        raise CorruptArtifactError(
            f"{path}: member {info.filename!r} holds objects, refusing"
        )
    if int(np.prod(shape)) == 0:
        return np.empty(shape, dtype=dtype)
    return np.memmap(
        path, dtype=dtype, mode=mmap_mode, offset=offset, shape=shape,
        order="F" if fortran else "C",
    )


def _mapped_arrays(
    archive, path: pathlib.Path, declared, mmap_mode: str
) -> dict[int, np.ndarray]:
    """Zero-copy array views for stored members; copy-read the rest.

    Per-array SHA-256 checks are deliberately skipped here — hashing
    would page every byte in and erase the zero-copy win. Mapped loads
    are meant for files whose integrity was established when they were
    written: store spools are ETag-verified on fetch and
    :func:`repack_artifact` re-verifies every array while deriving a
    stored-layout copy. The default (non-mmap) load path keeps full
    verification.
    """
    arrays: dict[int, np.ndarray] = {}
    with zipfile.ZipFile(path) as zf:
        members = {info.filename: info for info in zf.infolist()}
        for name in declared:
            _check_array_name(path, name)
            info = members.get(f"{name}.npy")
            if info is not None and info.compress_type == zipfile.ZIP_STORED:
                arrays[int(name[1:])] = _map_stored_member(
                    path, info, mmap_mode
                )
            else:
                # Deflated member: decompress-copy. The call still works
                # on compressed artifacts, it just stops being zero-copy.
                arrays[int(name[1:])] = _read_member(archive, path, name)
    return arrays


def is_stored_layout(path: str | pathlib.Path) -> bool:
    """True when every member of the artifact zip is uncompressed.

    Such files are fully mappable: ``load_artifact(mmap_mode="r")``
    creates no array copies at all.
    """
    try:
        with zipfile.ZipFile(path) as zf:
            return all(
                info.compress_type == zipfile.ZIP_STORED
                for info in zf.infolist()
            )
    except (zipfile.BadZipFile, OSError):
        return False


def repack_artifact(
    source: str | pathlib.Path,
    dest: str | pathlib.Path,
    *,
    compression: str = "stored",
) -> pathlib.Path:
    """Rewrite an artifact under a different zip layout; same content.

    Member bytes are copied verbatim (the ``.npy`` serialisation never
    changes), so the digest — and therefore the store version — is
    unchanged. Every payload array is re-verified against its manifest
    SHA-256 while the bytes are in hand; this creation-time check is
    what lets ``load_artifact(mmap_mode="r")`` skip per-array hashing
    on the derived file. The write is mkstemp + atomic rename into
    ``dest``'s directory: concurrent derivations of one version
    converge, and maps of a previously derived file stay valid because
    rename never touches the old inode.
    """
    if compression not in _ZIP_METHODS:
        raise ValueError(
            f"unknown artifact compression {compression!r}; "
            f"choose one of {sorted(_ZIP_METHODS)}"
        )
    source = pathlib.Path(source)
    dest = pathlib.Path(dest)
    with _open_archive(source) as archive:
        manifest = _parse_manifest(archive, source)
        declared = manifest.get("arrays")
        if not isinstance(declared, dict):
            raise CorruptArtifactError(
                f"{source}: manifest lacks array table"
            )
        _verified_arrays(archive, source, declared)
    dest.parent.mkdir(parents=True, exist_ok=True)
    method = _ZIP_METHODS[compression]
    handle, temp_name = tempfile.mkstemp(
        dir=dest.parent, prefix=f".tmp-{dest.stem[:16]}-", suffix=".npz"
    )
    try:
        with os.fdopen(handle, "wb") as stream:
            with zipfile.ZipFile(source) as src, zipfile.ZipFile(
                stream, "w", method
            ) as out:
                for info in src.infolist():
                    out.writestr(
                        info.filename,
                        src.read(info.filename),
                        compress_type=method,
                    )
        os.replace(temp_name, dest)
    finally:
        pathlib.Path(temp_name).unlink(missing_ok=True)
    return dest


def load_artifact(
    path: str | pathlib.Path,
    *,
    expected_fingerprint: str | None = None,
    mmap_mode: str | None = None,
):
    """Verify and rebuild the fitted model an artifact holds.

    Args:
        path: Artifact file written by :func:`save_artifact`.
        expected_fingerprint: When given, the manifest's
            ``dataset_fingerprint`` must match exactly.
        mmap_mode: ``None`` (default) reads and fully verifies every
            array. ``"r"`` memory-maps uncompressed members read-only
            straight off the file — a stored-layout artifact loads
            without copying node arrays, and the pages stay shared
            between every process mapping the same file. Mapped loads
            skip per-array SHA-256 checks (see :func:`repack_artifact`
            for where verification happens instead); manifest-digest
            and fingerprint checks still run.

    Returns:
        ``(model, manifest)`` — the manifest includes the verified
        content ``digest``.

    Raises:
        CorruptArtifactError: Unreadable zip/JSON or missing members.
        IntegrityError: Any payload or manifest digest mismatch.
        SchemaVersionError: Artifact written under another schema.
        FingerprintMismatchError: Dataset fingerprint divergence.
        UnknownModelClassError: Manifest names a non-``repro`` class.
    """
    if mmap_mode not in (None, "r"):
        raise ValueError(
            "artifact maps are read-only: mmap_mode must be None or 'r'"
        )
    path = pathlib.Path(path)
    with _open_archive(path) as archive:
        manifest = _parse_manifest(archive, path)
        declared = manifest.get("arrays")
        if not isinstance(declared, dict):
            raise CorruptArtifactError(f"{path}: manifest lacks array table")
        if mmap_mode is None:
            arrays = _verified_arrays(archive, path, declared)
        else:
            arrays = _mapped_arrays(archive, path, declared, mmap_mode)
        if artifact_digest(manifest) != manifest.get("digest"):
            raise IntegrityError(
                f"{path}: manifest digest mismatch (artifact altered "
                "after save)"
            )
        if expected_fingerprint is not None:
            actual = manifest.get("dataset_fingerprint")
            if actual != expected_fingerprint:
                raise FingerprintMismatchError(
                    f"{path} was trained on dataset {actual!r}, caller "
                    f"requires {expected_fingerprint!r}"
                )
        structure = manifest.get("model")
        if not isinstance(structure, dict):
            raise CorruptArtifactError(f"{path}: manifest lacks model entry")
        model = restore(
            {
                "class": structure.get("class"),
                "params": decode(structure.get("params"), arrays),
                "state": decode(structure.get("state"), arrays),
            }
        )
    return model, manifest
