"""The on-disk artifact format: one ``.npz`` of arrays + JSON manifest.

An artifact is a single compressed ``.npz`` holding

* ``__manifest__`` — a UTF-8 JSON document (stored as a ``uint8`` array)
  carrying the schema version, model class + constructor parameters, the
  encoded state structure, the training-dataset fingerprint, evaluation
  metrics, and a SHA-256 digest per payload array,
* ``a0 … aN`` — the model's fitted arrays (tree node tables, stacked
  :class:`~repro.ml.flat.FlatEnsemble` arrays, NN weights, …).

The **artifact digest** — the content address a
:class:`~repro.artifacts.store.ModelStore` files versions under — is the
SHA-256 of the canonical manifest JSON *minus* volatile metadata
(``created_at``, ``digest`` itself), so saving the same fitted model
twice yields the same version while any change to parameters, state, or
payload changes it.

Loading never trusts the file: zip/JSON damage raises
:class:`CorruptArtifactError`, per-array digest mismatches raise
:class:`IntegrityError`, a foreign schema raises
:class:`SchemaVersionError`, and a caller-supplied expected dataset
fingerprint raises :class:`FingerprintMismatchError` on divergence —
garbage never becomes a model.

Invariants consumers rely on: a written artifact is immutable (stores
and backends file it under its digest and never rewrite it); ``save →
load`` is bit-identical for every registry model's ``predict_proba``
(asserted in CI, cross-process); and :func:`save_artifact` /
:func:`load_artifact` share no module state, so concurrent saves/loads
of different paths need no coordination. The transport layers above —
:class:`~repro.artifacts.store.ModelStore` and its backends — add
content addressing and ETag checks on top of, never instead of, the
per-array digests here.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import time
import zipfile
import zlib
from dataclasses import dataclass

import numpy as np

from repro.artifacts.errors import (
    CorruptArtifactError,
    FingerprintMismatchError,
    IntegrityError,
    SchemaVersionError,
)
from repro.artifacts.state import capture, decode, encode, restore

__all__ = [
    "SCHEMA_VERSION",
    "ARTIFACT_FORMAT",
    "ArtifactInfo",
    "save_artifact",
    "load_artifact",
    "read_manifest",
    "artifact_digest",
]

SCHEMA_VERSION = 1
ARTIFACT_FORMAT = "phishinghook-model-artifact"

_MANIFEST_KEY = "__manifest__"
#: Manifest fields excluded from the content address.
_VOLATILE = ("created_at", "digest")


@dataclass(frozen=True)
class ArtifactInfo:
    """Result of one save: where it landed and what it hashes to."""

    path: pathlib.Path
    digest: str
    manifest: dict


def _array_digest(array: np.ndarray) -> str:
    array = np.ascontiguousarray(array)
    hasher = hashlib.sha256()
    hasher.update(array.dtype.str.encode())
    hasher.update(repr(array.shape).encode())
    hasher.update(array.tobytes())
    return hasher.hexdigest()


def _jsonable(node):
    """Plain-JSON copy of caller metadata (numpy scalars → python)."""
    if isinstance(node, dict):
        return {str(key): _jsonable(value) for key, value in node.items()}
    if isinstance(node, (list, tuple)):
        return [_jsonable(item) for item in node]
    if isinstance(node, (bool, str)) or node is None:
        return node
    if isinstance(node, (int, np.integer)):
        return int(node)
    if isinstance(node, (float, np.floating)):
        return float(node)
    return str(node)


def _canonical(manifest: dict) -> bytes:
    slim = {k: v for k, v in manifest.items() if k not in _VOLATILE}
    return json.dumps(
        slim, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")


def artifact_digest(manifest: dict) -> str:
    """Content address of an artifact (volatile metadata excluded)."""
    return hashlib.sha256(_canonical(manifest)).hexdigest()


def save_artifact(
    model,
    path: str | pathlib.Path,
    *,
    model_name: str | None = None,
    dataset_fingerprint: str | None = None,
    metrics: dict | None = None,
    extra: dict | None = None,
) -> ArtifactInfo:
    """Persist one fitted model as a schema-versioned artifact file."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    captured = capture(model)
    arrays: list[np.ndarray] = []
    structure = {
        "class": captured["class"],
        "params": encode(captured["params"], arrays),
        "state": encode(captured["state"], arrays),
    }
    names = [f"a{index}" for index in range(len(arrays))]
    manifest = {
        "format": ARTIFACT_FORMAT,
        "schema_version": SCHEMA_VERSION,
        "model_name": model_name or getattr(model, "name", type(model).__name__),
        "model": structure,
        "dataset_fingerprint": dataset_fingerprint,
        "metrics": _jsonable(metrics) if metrics else None,
        "extra": _jsonable(extra) if extra else None,
        "arrays": {
            name: {
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "sha256": _array_digest(array),
            }
            for name, array in zip(names, arrays)
        },
        "created_at": time.time(),
    }
    manifest["digest"] = artifact_digest(manifest)
    payload = {
        _MANIFEST_KEY: np.frombuffer(
            json.dumps(manifest, ensure_ascii=False).encode("utf-8"),
            dtype=np.uint8,
        )
    }
    payload.update(dict(zip(names, arrays)))
    # Write through an explicit handle so the artifact lands exactly at
    # ``path`` (np.savez appends ".npz" to bare string paths).
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **payload)
    return ArtifactInfo(path=path, digest=manifest["digest"], manifest=manifest)


def _open_archive(path: pathlib.Path) -> np.lib.npyio.NpzFile:
    try:
        return np.load(path, allow_pickle=False)
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, OSError, ValueError, EOFError) as error:
        raise CorruptArtifactError(
            f"{path} is not a readable artifact: {error}"
        ) from error


def _read_member(archive, path, name) -> np.ndarray:
    try:
        return archive[name]
    except KeyError as error:
        raise CorruptArtifactError(
            f"{path} is missing artifact member {name!r}"
        ) from error
    except (zipfile.BadZipFile, zlib.error, OSError, ValueError, EOFError) as error:
        raise CorruptArtifactError(
            f"{path}: artifact member {name!r} is unreadable: {error}"
        ) from error


def _parse_manifest(archive, path: pathlib.Path) -> dict:
    raw = _read_member(archive, path, _MANIFEST_KEY)
    try:
        manifest = json.loads(bytes(raw.tobytes()).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CorruptArtifactError(
            f"{path} carries an unparseable manifest: {error}"
        ) from error
    if not isinstance(manifest, dict) or manifest.get("format") != ARTIFACT_FORMAT:
        raise CorruptArtifactError(
            f"{path} is not a {ARTIFACT_FORMAT} file"
        )
    version = manifest.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SchemaVersionError(
            f"{path} uses artifact schema {version!r}; this build reads "
            f"schema {SCHEMA_VERSION}"
        )
    return manifest


def read_manifest(path: str | pathlib.Path) -> dict:
    """Manifest only — no payload verification, no model construction."""
    path = pathlib.Path(path)
    with _open_archive(path) as archive:
        return _parse_manifest(archive, path)


def load_artifact(
    path: str | pathlib.Path,
    *,
    expected_fingerprint: str | None = None,
):
    """Verify and rebuild the fitted model an artifact holds.

    Args:
        path: Artifact file written by :func:`save_artifact`.
        expected_fingerprint: When given, the manifest's
            ``dataset_fingerprint`` must match exactly.

    Returns:
        ``(model, manifest)`` — the manifest includes the verified
        content ``digest``.

    Raises:
        CorruptArtifactError: Unreadable zip/JSON or missing members.
        IntegrityError: Any payload or manifest digest mismatch.
        SchemaVersionError: Artifact written under another schema.
        FingerprintMismatchError: Dataset fingerprint divergence.
        UnknownModelClassError: Manifest names a non-``repro`` class.
    """
    path = pathlib.Path(path)
    with _open_archive(path) as archive:
        manifest = _parse_manifest(archive, path)
        declared = manifest.get("arrays")
        if not isinstance(declared, dict):
            raise CorruptArtifactError(f"{path}: manifest lacks array table")
        arrays: dict[int, np.ndarray] = {}
        for name, meta in declared.items():
            if not (name.startswith("a") and name[1:].isdigit()):
                raise CorruptArtifactError(
                    f"{path}: manifest declares malformed array name {name!r}"
                )
            array = _read_member(archive, path, name)
            if _array_digest(array) != meta.get("sha256"):
                raise IntegrityError(
                    f"{path}: array {name!r} fails its SHA-256 check "
                    "(artifact altered after save)"
                )
            arrays[int(name[1:])] = array
        if artifact_digest(manifest) != manifest.get("digest"):
            raise IntegrityError(
                f"{path}: manifest digest mismatch (artifact altered "
                "after save)"
            )
        if expected_fingerprint is not None:
            actual = manifest.get("dataset_fingerprint")
            if actual != expected_fingerprint:
                raise FingerprintMismatchError(
                    f"{path} was trained on dataset {actual!r}, caller "
                    f"requires {expected_fingerprint!r}"
                )
        structure = manifest.get("model")
        if not isinstance(structure, dict):
            raise CorruptArtifactError(f"{path}: manifest lacks model entry")
        model = restore(
            {
                "class": structure.get("class"),
                "params": decode(structure.get("params"), arrays),
                "state": decode(structure.get("state"), arrays),
            }
        )
    return model, manifest
