"""Pluggable storage backends for the :class:`~repro.artifacts.store.ModelStore`.

A :class:`ModelStore` is a *policy* layer — content-addressed versions,
mutable tags, verify-on-import — and this module is its *mechanism*
layer: a tiny blob API (:class:`StoreBackend`) that maps store keys
(``objects/<digest>.npz``, ``tags.json``) to bytes somewhere. Serving
boxes without a shared mount point a store at an object-store URL and
pull ``production`` like any other blob.

Backends:

* :class:`LocalFSBackend` — the original directory layout, bit-for-bit:
  a store written by the pre-backend ``ModelStore`` reads (and writes)
  unchanged. Writes are tmp + rename atomic; the tag-table lock is a
  cross-process ``fcntl`` advisory lock.
* :class:`ObjectStoreBackend` — an S3-style bucket: flat keys,
  list/get/put/delete, and an ETag per object (the SHA-256 of its
  content, recorded at put time and re-checked on every get, so a blob
  altered behind the store's back raises
  :class:`~repro.artifacts.errors.IntegrityError` instead of becoming a
  model). Two bucket emulations back it: :class:`MemoryBucket`
  (process-wide, named — ``memory://name``) and :class:`DiskBucket`
  (a directory of blobs + ``.etag`` sidecars — ``bucket://path``).

* :class:`HttpStoreBackend` — a store served over HTTP by
  ``phishinghook store-serve`` (:func:`repro.net.store_http.serve_store`):
  the pull path for fleet worker processes with no shared mount. Every
  ``get`` re-verifies the response body against the ``ETag`` header, so
  a truncated or corrupted transfer raises
  :class:`~repro.artifacts.errors.IntegrityError` before any bytes reach
  the artifact loader.

URL scheme (:func:`backend_from_url`):

======================  =================================================
``/path`` / ``file://``  :class:`LocalFSBackend` (classic store directory)
``memory://name``        shared in-process bucket (tests, demos)
``bucket://path``        on-disk bucket emulation (S3 layout stand-in)
``http(s)://host:port``  remote store endpoint (``store-serve``)
======================  =================================================
"""

from __future__ import annotations

import abc
import contextlib
import hashlib
import os
import pathlib
import shutil
import tempfile
import threading

from repro.artifacts.errors import IntegrityError

__all__ = [
    "StoreBackend",
    "LocalFSBackend",
    "ObjectStoreBackend",
    "HttpStoreBackend",
    "MemoryBucket",
    "DiskBucket",
    "backend_from_url",
]


def _content_etag(data: bytes) -> str:
    """ETag of a blob — SHA-256 hex, the strong-digest flavour."""
    return hashlib.sha256(data).hexdigest()


def _file_etag(path: pathlib.Path) -> str:
    """Streamed SHA-256 of a file (no whole-blob RAM buffering)."""
    hasher = hashlib.sha256()
    with open(path, "rb") as stream:
        for chunk in iter(lambda: stream.read(1 << 20), b""):
            hasher.update(chunk)
    return hasher.hexdigest()


def _contained_path(root: pathlib.Path, key: str, what: str) -> pathlib.Path:
    """Resolve ``root/key`` and refuse anything escaping ``root``.

    Keys are normally store-internal names, but tag values feed into
    object keys, so a tampered tag table must not become a path
    traversal. ``is_relative_to`` (not a string-prefix test) is what
    keeps ``/data/store-other`` outside ``/data/store``.
    """
    path = (root / key).resolve()
    if not path.is_relative_to(root.resolve()):
        raise ValueError(f"key {key!r} escapes the {what} root")
    return path


class StoreBackend(abc.ABC):
    """Key → blob storage under a :class:`ModelStore`.

    Keys are relative POSIX-style paths (``objects/<digest>.npz``,
    ``tags.json``). Implementations must make :meth:`put` atomic per key
    (readers never observe a partial blob) and :meth:`get` raise
    ``KeyError`` for missing keys — the store translates that into its
    own typed errors.
    """

    #: URL scheme this backend answers to (for repr/messages).
    scheme = "?"

    @property
    @abc.abstractmethod
    def url(self) -> str:
        """Canonical URL of this backend (round-trips through
        :func:`backend_from_url`)."""

    @abc.abstractmethod
    def get(self, key: str) -> bytes:
        """Blob content; raises ``KeyError`` when absent."""

    @abc.abstractmethod
    def put(self, key: str, data: bytes) -> str:
        """Store a blob atomically; returns its ETag."""

    @abc.abstractmethod
    def delete(self, key: str) -> bool:
        """Remove a blob; returns whether it existed."""

    @abc.abstractmethod
    def list(self, prefix: str = "") -> list[str]:
        """Sorted keys under ``prefix``."""

    @abc.abstractmethod
    def etag(self, key: str) -> str | None:
        """Recorded ETag, or ``None`` when the key is absent."""

    def exists(self, key: str) -> bool:
        return self.etag(key) is not None

    def size(self, key: str) -> int:
        """Blob size in bytes; raises ``KeyError`` when absent."""
        return len(self.get(key))

    def put_path(self, key: str, source: str | os.PathLike,
                 *, consume: bool = False) -> str:
        """Store the contents of a local file atomically; returns its ETag.

        ``consume=True`` grants the backend permission to *move* (and
        thereby destroy) ``source`` — the zero-copy path for callers
        handing over a scratch file they own. The default implementation
        reads the file and delegates to :meth:`put`; ``source`` is never
        mutated unless ``consume`` is set and the backend chooses to
        move it.
        """
        return self.put(key, pathlib.Path(source).read_bytes())

    def local_path(self, key: str) -> pathlib.Path | None:
        """Filesystem path of a blob, when the backend is path-addressable.

        ``None`` for object backends — the store then spools the blob to
        a local cache file before handing it to ``np.load``.
        """
        return None

    @contextlib.contextmanager
    def lock(self):
        """Mutual exclusion for tag-table read-modify-write cycles.

        Implementations must scope the lock to the *storage*, not the
        backend instance: two backends opened at the same location have
        to exclude each other. :class:`LocalFSBackend` uses a
        cross-process ``fcntl`` file lock; :class:`ObjectStoreBackend`
        uses a mutex owned by (and shared through) the bucket.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.url!r})"


class LocalFSBackend(StoreBackend):
    """The classic store directory, unchanged on disk.

    Keys map straight to paths under ``root``, so ``objects/<d>.npz`` and
    ``tags.json`` land exactly where the pre-backend ``ModelStore`` put
    them — old stores read and write with zero migration. ETags are
    computed from content on demand (the filesystem is trusted storage;
    artifact payloads carry their own per-array digests on top).
    """

    scheme = "file"

    def __init__(self, root: str | os.PathLike):
        self.root = pathlib.Path(root)

    @property
    def url(self) -> str:
        return f"file://{self.root}"

    def _path(self, key: str) -> pathlib.Path:
        return _contained_path(self.root, key, "store")

    def get(self, key: str) -> bytes:
        try:
            return self._path(key).read_bytes()
        except FileNotFoundError:
            raise KeyError(key) from None

    def put(self, key: str, data: bytes) -> str:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=path.suffix
        )
        try:
            with os.fdopen(handle, "wb") as stream:
                stream.write(data)
            os.replace(temp_name, path)
        finally:
            pathlib.Path(temp_name).unlink(missing_ok=True)
        return _content_etag(data)

    def put_path(self, key: str, source: str | os.PathLike,
                 *, consume: bool = False) -> str:
        """Single-write blob install: rename a consumed source into
        place when possible, else stream-copy via a same-directory temp
        file — never the whole blob through RAM."""
        source = pathlib.Path(source)
        etag = _file_etag(source)
        dest = self._path(key)
        dest.parent.mkdir(parents=True, exist_ok=True)
        if consume:
            try:
                os.replace(source, dest)
                return etag
            except OSError:  # cross-device: fall through to the copy
                pass
        handle, temp_name = tempfile.mkstemp(
            dir=dest.parent, prefix=".tmp-", suffix=dest.suffix
        )
        os.close(handle)
        try:
            shutil.copyfile(source, temp_name)
            os.replace(temp_name, dest)
        finally:
            pathlib.Path(temp_name).unlink(missing_ok=True)
        return etag

    def delete(self, key: str) -> bool:
        try:
            self._path(key).unlink()
            return True
        except FileNotFoundError:
            return False

    def list(self, prefix: str = "") -> list[str]:
        base = self.root
        if not base.is_dir():
            return []
        keys = []
        for path in base.rglob("*"):
            if not path.is_file() or path.name.startswith("."):
                continue
            key = path.relative_to(base).as_posix()
            if key.startswith(prefix):
                keys.append(key)
        return sorted(keys)

    def etag(self, key: str) -> str | None:
        try:
            return _content_etag(self.get(key))
        except KeyError:
            return None

    def size(self, key: str) -> int:
        try:
            return self._path(key).stat().st_size
        except FileNotFoundError:
            raise KeyError(key) from None

    def local_path(self, key: str) -> pathlib.Path | None:
        path = self._path(key)
        return path if path.is_file() else None

    @contextlib.contextmanager
    def lock(self):
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.root / ".tags.lock", "a+") as handle:
            try:
                import fcntl
            except ImportError:  # non-POSIX: best-effort, no lock
                yield
                return
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)


# --------------------------------------------------------------------- #
# S3-style bucket emulation
# --------------------------------------------------------------------- #


class MemoryBucket:
    """In-process named bucket: ``{key: (data, etag)}`` behind a lock.

    Buckets are shared process-wide by name (``MemoryBucket.named``), so
    two stores opened at ``memory://ci`` see the same objects — the
    in-process stand-in for a region-shared object store.
    """

    _registry: dict[str, "MemoryBucket"] = {}
    _registry_lock = threading.Lock()

    def __init__(self, name: str = ""):
        self.name = name
        self._objects: dict[str, tuple[bytes, str]] = {}
        self._mutex = threading.Lock()
        #: Tag-table mutual exclusion for every store over this bucket —
        #: owned by the bucket (shared state), not any one backend.
        #: Reentrant so bucket operations under the held lock don't
        #: deadlock against ``_mutex``-free callers.
        self.tag_mutex = threading.RLock()

    @contextlib.contextmanager
    def tag_lock(self):
        """Tag-table critical section. In-process suffices: a memory
        bucket cannot outlive (or be shared beyond) the process."""
        with self.tag_mutex:
            yield

    @classmethod
    def named(cls, name: str) -> "MemoryBucket":
        with cls._registry_lock:
            bucket = cls._registry.get(name)
            if bucket is None:
                bucket = cls._registry[name] = cls(name)
            return bucket

    @classmethod
    def drop(cls, name: str) -> bool:
        """Forget a named bucket (tests); returns whether it existed."""
        with cls._registry_lock:
            return cls._registry.pop(name, None) is not None

    def put_object(self, key: str, data: bytes) -> str:
        etag = _content_etag(data)
        with self._mutex:
            self._objects[key] = (bytes(data), etag)
        return etag

    def get_object(self, key: str) -> tuple[bytes, str]:
        with self._mutex:
            if key not in self._objects:
                raise KeyError(key)
            return self._objects[key]

    def delete_object(self, key: str) -> bool:
        with self._mutex:
            return self._objects.pop(key, None) is not None

    def list_objects(self, prefix: str = "") -> list[str]:
        with self._mutex:
            return sorted(k for k in self._objects if k.startswith(prefix))

    def head_object(self, key: str) -> str | None:
        with self._mutex:
            entry = self._objects.get(key)
            return entry[1] if entry else None

    def object_size(self, key: str) -> int:
        with self._mutex:
            if key not in self._objects:
                raise KeyError(key)
            return len(self._objects[key][0])


class DiskBucket:
    """On-disk bucket emulation: one blob file per key + ``.etag`` sidecar.

    The layout is deliberately *not* the LocalFS store layout — it models
    shipping artifacts to a foreign object store (keys become files, the
    recorded ETag travels in a sidecar), and the sidecar is what makes
    tamper detection possible without re-trusting the blob itself.

    Both files are written atomically (temp + rename) and every
    operation runs under a mutex *shared by all DiskBucket instances at
    the same path* (mutexes are registered per resolved root), so
    in-process readers never observe a blob/sidecar pair mid-update.
    A process crash exactly between the two renames can still strand a
    new blob under the old ETag — a limitation of emulating an atomic
    object PUT with two files; a real object store has no such window.
    """

    _mutexes: dict[str, threading.RLock] = {}
    _mutexes_guard = threading.Lock()

    def __init__(self, root: str | os.PathLike):
        self.root = pathlib.Path(root)
        key = str(self.root.resolve())
        with DiskBucket._mutexes_guard:
            mutex = DiskBucket._mutexes.get(key)
            if mutex is None:
                mutex = DiskBucket._mutexes[key] = threading.RLock()
        # One reentrant lock per bucket *path* serves both per-operation
        # consistency and the in-process half of the tag-table critical
        # section (the cross-process half is the flock in tag_lock()).
        self._mutex = mutex
        self.tag_mutex = mutex

    @contextlib.contextmanager
    def tag_lock(self):
        """Tag-table critical section, cross-process like the bucket.

        The shared in-process ``RLock`` serializes threads; an advisory
        ``fcntl`` lock on ``.tags.lock`` serializes *processes* — the
        documented CLI flow runs a trainer and a rollout against the
        same ``bucket://`` path from separate invocations.
        """
        with self.tag_mutex:
            self.root.mkdir(parents=True, exist_ok=True)
            with open(self.root / ".tags.lock", "a+") as handle:
                try:
                    import fcntl
                except ImportError:  # non-POSIX: in-process lock only
                    yield
                    return
                fcntl.flock(handle, fcntl.LOCK_EX)
                try:
                    yield
                finally:
                    fcntl.flock(handle, fcntl.LOCK_UN)

    def _blob(self, key: str) -> pathlib.Path:
        return _contained_path(self.root, key, "bucket")

    def _sidecar(self, key: str) -> pathlib.Path:
        blob = self._blob(key)
        return blob.with_name(blob.name + ".etag")

    @staticmethod
    def _atomic_write(path: pathlib.Path, data: bytes) -> None:
        handle, temp_name = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(handle, "wb") as stream:
                stream.write(data)
            os.replace(temp_name, path)
        finally:
            pathlib.Path(temp_name).unlink(missing_ok=True)

    def put_object(self, key: str, data: bytes) -> str:
        etag = _content_etag(data)
        blob = self._blob(key)
        with self._mutex:
            blob.parent.mkdir(parents=True, exist_ok=True)
            self._atomic_write(blob, data)
            self._atomic_write(self._sidecar(key), etag.encode("utf-8"))
        return etag

    def get_object(self, key: str) -> tuple[bytes, str]:
        with self._mutex:
            try:
                data = self._blob(key).read_bytes()
            except FileNotFoundError:
                raise KeyError(key) from None
            try:
                etag = self._sidecar(key).read_text(encoding="utf-8").strip()
            except FileNotFoundError:
                # A blob without its recorded ETag is unverifiable; the
                # digest must never be regenerated from the (possibly
                # tampered) data itself — that would make verify-on-get
                # vacuous.
                raise IntegrityError(
                    f"bucket://{self.root}/{key}: ETag sidecar is "
                    "missing; object cannot be verified"
                ) from None
        return data, etag

    def delete_object(self, key: str) -> bool:
        with self._mutex:
            existed = False
            try:
                self._blob(key).unlink()
                existed = True
            except FileNotFoundError:
                pass
            self._sidecar(key).unlink(missing_ok=True)
            return existed

    def list_objects(self, prefix: str = "") -> list[str]:
        with self._mutex:
            if not self.root.is_dir():
                return []
            keys = []
            for path in self.root.rglob("*"):
                if (not path.is_file() or path.name.startswith(".")
                        or path.name.endswith(".etag")):
                    continue
                key = path.relative_to(self.root).as_posix()
                if key.startswith(prefix):
                    keys.append(key)
            return sorted(keys)

    def head_object(self, key: str) -> str | None:
        with self._mutex:
            sidecar = self._sidecar(key)
            if not self._blob(key).is_file():
                return None
            if sidecar.is_file():
                return sidecar.read_text(encoding="utf-8").strip()
            raise IntegrityError(
                f"bucket://{self.root}/{key}: ETag sidecar is missing; "
                "object cannot be verified"
            )

    def object_size(self, key: str) -> int:
        with self._mutex:
            try:
                return self._blob(key).stat().st_size
            except FileNotFoundError:
                raise KeyError(key) from None


class ObjectStoreBackend(StoreBackend):
    """S3-style backend over a bucket emulation.

    Every :meth:`get` recomputes the blob's digest against the ETag the
    bucket recorded at put time — the check a real client does against
    the ``ETag`` response header — so silent corruption (or tampering)
    in the bucket surfaces as
    :class:`~repro.artifacts.errors.IntegrityError` at read time, before
    any bytes reach the artifact loader.
    """

    def __init__(self, bucket: MemoryBucket | DiskBucket):
        self.bucket = bucket
        if isinstance(bucket, MemoryBucket):
            self.scheme = "memory"
            self._url = f"memory://{bucket.name}"
        else:
            self.scheme = "bucket"
            self._url = f"bucket://{bucket.root}"

    @property
    def url(self) -> str:
        return self._url

    def get(self, key: str) -> bytes:
        data, etag = self.bucket.get_object(key)
        if _content_etag(data) != etag:
            raise IntegrityError(
                f"{self.url}/{key}: content digest does not match its "
                f"ETag (object altered in the bucket)"
            )
        return data

    def put(self, key: str, data: bytes) -> str:
        return self.bucket.put_object(key, data)

    def delete(self, key: str) -> bool:
        return self.bucket.delete_object(key)

    def list(self, prefix: str = "") -> list[str]:
        return self.bucket.list_objects(prefix)

    def etag(self, key: str) -> str | None:
        return self.bucket.head_object(key)

    def size(self, key: str) -> int:
        # A HEAD-style stat, not a full (re-verified) GET.
        return self.bucket.object_size(key)

    @contextlib.contextmanager
    def lock(self):
        # The lock belongs to the bucket, so every store opened over the
        # same bucket — same registry entry, same path, or (for disk
        # buckets) another process — excludes the others' tag
        # read-modify-write cycles.
        with self.bucket.tag_lock():
            yield


class HttpStoreBackend(StoreBackend):
    """A store served over HTTP (``phishinghook store-serve``).

    The client half of :func:`repro.net.store_http.serve_store`: keys
    map to URL paths, the list operation is ``GET /?prefix=``, and the
    server answers every blob with an ``ETag`` header (content SHA-256).
    :meth:`get` re-verifies the received bytes against that header —
    exactly the check :class:`ObjectStoreBackend` does against its
    bucket — so a corrupt proxy, truncated body, or tampered mirror
    raises :class:`~repro.artifacts.errors.IntegrityError` at read time.

    ``local_path`` stays ``None``: artifacts pulled over HTTP spool
    through the store's ``cache_dir`` into immutable digest-named files
    (and the spool itself is multi-process safe; see
    :meth:`~repro.artifacts.store.ModelStore.path_of`).

    The server refuses writes unless started ``--writable``; this
    surfaces here as ``PermissionError`` rather than a silent no-op.

    Transient failures — transport errors and HTTP 5xx — are retried
    with jittered exponential backoff (``retry``, a
    :class:`repro.net.retry.RetryPolicy`; pass ``attempts=1`` to
    disable), so a store mirror restarting mid-pull costs a retry, not
    a failed cold start. Integrity failures are **never** retried:
    tampered bytes are a fact to surface, not a flake.
    """

    scheme = "http"

    def __init__(self, base_url: str, *, timeout: float = 30.0,
                 retry=None):
        self._url = base_url.rstrip("/")
        self.scheme = self._url.partition("://")[0] or "http"
        self.timeout = timeout
        if retry is None:
            from repro.net.retry import RetryPolicy

            retry = RetryPolicy(attempts=3, base_delay=0.1, max_delay=2.0)
        self.retry = retry
        # HTTP stores are read-mostly by design (workers pull, nobody
        # here races a tag read-modify-write against another *writer on
        # this host*); the lock still serializes this process's cycles.
        self._lock = threading.RLock()

    @property
    def url(self) -> str:
        return self._url

    class _ServerError(Exception):
        """Internal: an HTTP >= 500 response, retried then unwrapped."""

        def __init__(self, response):
            super().__init__(f"HTTP {response.status}")
            self.response = response

    def _fetch(self, method: str, url: str, *, body: bytes = None):
        """One retried exchange; 5xx responses count as retryable."""
        from repro.net.client import TransportError, http_request

        def attempt():
            response = http_request(
                method, url, body=body, timeout=self.timeout
            )
            if response.status >= 500:
                raise self._ServerError(response)
            return response

        try:
            return self.retry.call(
                attempt,
                should_retry=lambda exc: isinstance(
                    exc, (TransportError, self._ServerError)
                ),
            )
        except self._ServerError as error:
            # Out of retries: hand the 5xx back so each caller raises
            # its usual status-specific OSError.
            return error.response

    def _request(self, method: str, key: str, *, body: bytes = None):
        from urllib.parse import quote

        return self._fetch(
            method, f"{self._url}/{quote(key, safe='/')}", body=body
        )

    def get(self, key: str) -> bytes:
        response = self._request("GET", key)
        if response.status == 404:
            raise KeyError(key)
        if not response.ok:
            raise OSError(
                f"GET {self._url}/{key}: HTTP {response.status}"
            )
        etag = response.headers.get("etag")
        if not etag or _content_etag(response.body) != etag:
            raise IntegrityError(
                f"{self._url}/{key}: response body does not match its "
                f"ETag (corrupt transfer or tampered mirror)"
            )
        return response.body

    def put(self, key: str, data: bytes) -> str:
        response = self._request("PUT", key, body=data)
        if response.status == 405:
            raise PermissionError(
                f"{self._url} is served read-only (start store-serve "
                f"with --writable to accept puts)"
            )
        if not response.ok:
            raise OSError(
                f"PUT {self._url}/{key}: HTTP {response.status}"
            )
        return response.json()["etag"]

    def delete(self, key: str) -> bool:
        response = self._request("DELETE", key)
        if response.status == 405:
            raise PermissionError(f"{self._url} is served read-only")
        if not response.ok:
            raise OSError(
                f"DELETE {self._url}/{key}: HTTP {response.status}"
            )
        return bool(response.json().get("deleted"))

    def list(self, prefix: str = "") -> list[str]:
        from urllib.parse import quote

        response = self._fetch(
            "GET", f"{self._url}/?prefix={quote(prefix)}"
        )
        if not response.ok:
            raise OSError(
                f"LIST {self._url}: HTTP {response.status}"
            )
        return list(response.json()["keys"])

    def etag(self, key: str) -> str | None:
        response = self._request("HEAD", key)
        if response.status == 404:
            return None
        if not response.ok:
            raise OSError(
                f"HEAD {self._url}/{key}: HTTP {response.status}"
            )
        return response.headers.get("etag")

    def size(self, key: str) -> int:
        response = self._request("HEAD", key)
        if response.status == 404:
            raise KeyError(key)
        if not response.ok:
            raise OSError(
                f"HEAD {self._url}/{key}: HTTP {response.status}"
            )
        return int(response.headers.get("content-length", "0"))

    @contextlib.contextmanager
    def lock(self):
        with self._lock:
            yield


# --------------------------------------------------------------------- #


def backend_from_url(url: str | os.PathLike) -> StoreBackend:
    """Resolve a store location string to a backend.

    ``file://path`` (or a bare path) → :class:`LocalFSBackend`;
    ``memory://name`` → a process-shared :class:`MemoryBucket`;
    ``bucket://path`` → an on-disk :class:`DiskBucket`;
    ``http(s)://host:port`` → :class:`HttpStoreBackend`. Anything else
    raises :class:`~repro.artifacts.errors.CorruptArtifactError`'s
    sibling ``ValueError`` — unknown schemes must fail loudly, not fall
    back to a surprise local directory.
    """
    text = os.fspath(url)
    if "://" not in text:
        return LocalFSBackend(text)
    scheme, _, rest = text.partition("://")
    scheme = scheme.lower()
    if scheme == "file":
        return LocalFSBackend(rest or ".")
    if scheme == "memory":
        if not rest:
            raise ValueError("memory:// store URLs need a bucket name")
        return ObjectStoreBackend(MemoryBucket.named(rest))
    if scheme == "bucket":
        if not rest:
            raise ValueError("bucket:// store URLs need a directory path")
        return ObjectStoreBackend(DiskBucket(rest))
    if scheme in ("http", "https"):
        if not rest:
            raise ValueError("http(s):// store URLs need a host")
        return HttpStoreBackend(text)
    raise ValueError(
        f"unknown store scheme {scheme!r} in {text!r} "
        "(supported: file://, memory://, bucket://, http://, https://)"
    )
