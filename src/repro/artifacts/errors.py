"""Typed failure modes of the artifact layer.

Every loader error path raises one of these — a serving process must be
able to distinguish "the file is damaged" (page the operator, keep the
old model) from "this artifact was built for different data" (refuse the
rollout) without string-matching messages. Nothing in this module ever
lets a damaged artifact load as a model.
"""

from __future__ import annotations

__all__ = [
    "ArtifactError",
    "CorruptArtifactError",
    "IntegrityError",
    "SchemaVersionError",
    "FingerprintMismatchError",
    "UnknownModelClassError",
    "UnknownVersionError",
]


class ArtifactError(Exception):
    """Base class for every artifact-layer failure."""


class CorruptArtifactError(ArtifactError):
    """The file is not a readable artifact (truncated, not a zip, bad
    JSON manifest, missing members, wrong format marker)."""


class IntegrityError(CorruptArtifactError):
    """The file parses but a content digest does not match — the payload
    was altered after save."""


class SchemaVersionError(ArtifactError):
    """The artifact was written under an incompatible schema version."""


class FingerprintMismatchError(ArtifactError):
    """The artifact's dataset fingerprint differs from the one the
    caller requires (trained on different data)."""


class UnknownModelClassError(ArtifactError):
    """The manifest names a model class that cannot be resolved inside
    the ``repro`` package."""


class UnknownVersionError(ArtifactError, KeyError):
    """A store lookup (tag, version, or prefix) matched nothing — or a
    prefix matched more than one version."""
