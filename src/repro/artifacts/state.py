"""State-tree encoding: fitted models ⇄ (JSON structure, array list).

A model's persisted form is a *state tree*: nested dicts and lists whose
leaves are numpy arrays, ``bytes``, or JSON scalars — what
``state_dict()`` returns across the ml / features / models layers. This
module turns such trees into a JSON-safe structure plus a flat list of
arrays (the ``.npz`` payload), and back. No pickle anywhere: the only
things that execute at load time are constructors of classes resolved
inside the ``repro`` package.

Leaves that are not JSON-native are tagged:

* ``{"__ndarray__": i}`` — the ``i``-th entry of the array list,
* ``{"__bytes__": i}`` — raw bytes, stored as a ``uint8`` array,
* ``{"__tuple__": [...]}`` — tuples (restored as tuples, so
  ``get_params()`` round-trips exactly),
* ``{"__pairs__": [[k, v], ...]}`` — dicts with non-string keys,
* ``{"__model__": {...}}`` — a nested fitted model (ensemble children),
  captured recursively via :func:`capture`.
"""

from __future__ import annotations

import importlib

import numpy as np

from repro.artifacts.errors import CorruptArtifactError, UnknownModelClassError
from repro.ml.base import init_param_names

__all__ = ["capture", "restore", "encode", "decode", "init_params"]

_TAGS = ("__ndarray__", "__bytes__", "__tuple__", "__pairs__", "__model__")


def _is_model(obj) -> bool:
    """A persistable model: has the state protocol and a real class."""
    return (
        not isinstance(obj, type)
        and callable(getattr(obj, "state_dict", None))
        and callable(getattr(obj, "load_state", None))
    )


def init_params(model) -> dict:
    """Constructor arguments recovered from same-named attributes.

    Every persistable class in the framework follows the sklearn
    convention: ``__init__`` keyword arguments are stored under the same
    attribute names. Capture uses the same introspection as
    ``get_params`` (:func:`repro.ml.base.init_param_names`), applied
    uniformly so composite detectors (whose ``get_params`` may add
    derived entries like ``clf__*``) still reconstruct from pure
    constructor arguments.
    """
    return {
        name: getattr(model, name)
        for name in init_param_names(type(model))
    }


def capture(model) -> dict:
    """One fitted model as ``{"class", "params", "state"}`` (raw tree).

    ``params`` are the constructor arguments, ``state`` the fitted
    ``state_dict()``. Nested models inside either (ensemble children)
    stay as live objects here; :func:`encode` captures them recursively.
    """
    cls = type(model)
    return {
        "class": f"{cls.__module__}:{cls.__qualname__}",
        "params": init_params(model),
        "state": model.state_dict(),
    }


def _resolve_class(spec: str) -> type:
    module_name, _, class_name = spec.partition(":")
    if not module_name.startswith("repro.") or "." in class_name:
        raise UnknownModelClassError(
            f"refusing to resolve model class {spec!r} outside repro.*"
        )
    try:
        module = importlib.import_module(module_name)
        cls = getattr(module, class_name)
    except (ImportError, AttributeError) as error:
        raise UnknownModelClassError(
            f"cannot resolve model class {spec!r}: {error}"
        ) from error
    if not isinstance(cls, type):
        raise UnknownModelClassError(f"{spec!r} is not a class")
    return cls


def restore(captured: dict):
    """Rebuild the fitted model a :func:`capture` tree describes."""
    try:
        spec = captured["class"]
        params = captured["params"]
        state = captured["state"]
    except (TypeError, KeyError) as error:
        raise CorruptArtifactError(
            f"malformed model capture: missing {error}"
        ) from error
    model = _resolve_class(spec)(**params)
    model.load_state(state)
    return model


# --------------------------------------------------------------------- #
# Tree encoding
# --------------------------------------------------------------------- #


def encode(node, arrays: list):
    """Raw state tree → JSON-safe structure, appending arrays in order."""
    if node is None or isinstance(node, (bool, str)):
        return node
    if isinstance(node, (int, np.integer)):
        return int(node)
    if isinstance(node, (float, np.floating)):
        return float(node)
    if isinstance(node, np.ndarray):
        arrays.append(node)
        return {"__ndarray__": len(arrays) - 1}
    if isinstance(node, (bytes, bytearray)):
        arrays.append(np.frombuffer(bytes(node), dtype=np.uint8))
        return {"__bytes__": len(arrays) - 1}
    if isinstance(node, tuple):
        return {"__tuple__": [encode(item, arrays) for item in node]}
    if isinstance(node, list):
        return [encode(item, arrays) for item in node]
    if isinstance(node, dict):
        if all(isinstance(key, str) for key in node) and not any(
            key in _TAGS for key in node
        ):
            return {key: encode(value, arrays) for key, value in node.items()}
        return {
            "__pairs__": [
                [encode(key, arrays), encode(value, arrays)]
                for key, value in node.items()
            ]
        }
    if _is_model(node):
        captured = capture(node)
        return {
            "__model__": {
                "class": captured["class"],
                "params": encode(captured["params"], arrays),
                "state": encode(captured["state"], arrays),
            }
        }
    raise TypeError(
        f"state trees cannot hold {type(node).__name__!r} values"
    )


def decode(node, arrays: dict):
    """Inverse of :func:`encode`; ``arrays`` maps index → ndarray."""
    if node is None or isinstance(node, (bool, int, float, str)):
        return node
    if isinstance(node, list):
        return [decode(item, arrays) for item in node]
    if isinstance(node, dict):
        if "__ndarray__" in node:
            return _fetch(arrays, node["__ndarray__"])
        if "__bytes__" in node:
            return _fetch(arrays, node["__bytes__"]).tobytes()
        if "__tuple__" in node:
            return tuple(decode(item, arrays) for item in node["__tuple__"])
        if "__pairs__" in node:
            return {
                _hashable(decode(key, arrays)): decode(value, arrays)
                for key, value in node["__pairs__"]
            }
        if "__model__" in node:
            inner = node["__model__"]
            return restore(
                {
                    "class": inner.get("class"),
                    "params": decode(inner.get("params"), arrays),
                    "state": decode(inner.get("state"), arrays),
                }
            )
        return {key: decode(value, arrays) for key, value in node.items()}
    raise CorruptArtifactError(
        f"unexpected node of type {type(node).__name__!r} in structure"
    )


def _fetch(arrays: dict, index):
    try:
        return arrays[int(index)]
    except (KeyError, TypeError, ValueError) as error:
        raise CorruptArtifactError(
            f"structure references missing array {index!r}"
        ) from error


def _hashable(key):
    return tuple(key) if isinstance(key, list) else key
